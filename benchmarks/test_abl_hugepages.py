"""Ablation: transparent huge pages.

The paper's testbed (CentOS 5.5, kernel 2.6.34) predates THP, so every
Figure 8/11 page-walk rate is a 4 KB-page number — and the TLB-hungry
workloads (Naive Bayes' probability tables, the services' heaps,
HPCC-RandomAccess) pay for it.  This ablation re-runs them with 2 MB
pages: the TLB reach grows 512x and the walk rates collapse, quantifying
the §IV-C/§IV-D implication that translation pressure, not raw cache
capacity, is a first-order fixable cost for datacenter workloads.
"""

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import hugepage_machine, scaled_machine

WORKLOADS = ["Naive Bayes", "Data Serving", "HPCC-RandomAccess", "K-means"]


def test_hugepages(benchmark):
    suite = DCBench.default()
    native = scaled_machine(8)
    huge = hugepage_machine(native, page_bytes=2 * 1024 * 1024 // 8)  # scaled 2 MB

    def harness():
        rows = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            small = characterize(entry, instructions=120_000, machine=native)
            big = characterize(entry, instructions=120_000, machine=huge)
            rows[name] = (
                small.metrics.dtlb_walks_pki,
                big.metrics.dtlb_walks_pki,
                small.metrics.ipc,
                big.metrics.ipc,
            )
        return rows

    rows = run_once(benchmark, harness)
    print()
    print("Ablation: 4 KB vs 2 MB pages")
    print(f"{'workload':<18s}{'walks/Ki 4K':>12s}{'walks/Ki 2M':>12s}"
          f"{'IPC 4K':>8s}{'IPC 2M':>8s}")
    for name, (w4, w2, i4, i2) in rows.items():
        print(f"{name:<18s}{w4:>12.2f}{w2:>12.2f}{i4:>8.2f}{i2:>8.2f}")

    for name, (w4, w2, i4, i2) in rows.items():
        # Huge pages can only reduce walk rates...
        assert w2 <= w4 + 0.01, name
        # ... and never cost IPC.
        assert i2 >= i4 * 0.98, name
    # The TLB-hungry workloads see their walks nearly eliminated.
    for name in ("Naive Bayes", "Data Serving", "HPCC-RandomAccess"):
        w4, w2, _, _ = rows[name]
        assert w2 < w4 * 0.2, name
    # ... and the most walk-bound workload gains measurable IPC (its
    # remaining cost is cache misses + DRAM bandwidth, which huge pages
    # cannot fix).
    ra_4k_ipc, ra_2m_ipc = rows["HPCC-RandomAccess"][2], rows["HPCC-RandomAccess"][3]
    assert ra_2m_ipc > ra_4k_ipc * 1.02
