"""Unit and property tests for the set-associative cache models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.caches import Cache, CacheHierarchy, build_data_hierarchy
from repro.uarch.config import CacheConfig, XEON_E5645


def small_cache(size=1024, assoc=2, line=64, latency=4) -> Cache:
    return Cache(CacheConfig("T", size, assoc, line, hit_latency=latency))


class TestCacheBasics:
    def test_first_access_misses(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.misses == 1 and c.hits == 0

    def test_second_access_hits(self):
        c = small_cache()
        c.access(0)
        assert c.access(0) is True
        assert c.hits == 1

    def test_same_line_different_offset_hits(self):
        c = small_cache()
        c.access(64)
        assert c.access(65) is True
        assert c.access(127) is True

    def test_adjacent_lines_are_distinct(self):
        c = small_cache()
        c.access(0)
        assert c.access(64) is False

    def test_lru_eviction_order(self):
        # 2-way cache: three lines mapping to the same set evict the LRU.
        c = small_cache(size=1024, assoc=2, line=64)  # 8 sets
        stride = 8 * 64  # same set
        c.access(0)
        c.access(stride)
        c.access(0)  # 0 is now MRU
        c.access(2 * stride)  # evicts `stride`
        assert c.access(0) is True
        assert c.access(stride) is False

    def test_eviction_counter(self):
        c = small_cache(size=1024, assoc=2, line=64)
        stride = 8 * 64
        for i in range(3):
            c.access(i * stride)
        assert c.evictions == 1

    def test_probe_does_not_touch_counters(self):
        c = small_cache()
        c.access(0)
        hits, misses = c.hits, c.misses
        assert c.probe(0) is True
        assert c.probe(4096) is False
        assert (c.hits, c.misses) == (hits, misses)

    def test_fill_installs_without_counting(self):
        c = small_cache()
        c.fill(0)
        assert c.misses == 0
        assert c.access(0) is True

    def test_fill_existing_is_noop(self):
        c = small_cache()
        c.fill(0)
        c.fill(0)
        assert c.evictions == 0

    def test_miss_ratio(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        assert c.miss_ratio() == pytest.approx(0.5)

    def test_miss_ratio_empty(self):
        assert small_cache().miss_ratio() == 0.0

    def test_reset_counters(self):
        c = small_cache()
        c.access(0)
        c.reset_counters()
        assert c.hits == 0 and c.misses == 0
        # contents are preserved
        assert c.access(0) is True

    def test_working_set_within_capacity_all_hits_after_warm(self):
        c = small_cache(size=4096, assoc=4, line=64)
        lines = [i * 64 for i in range(64)]  # exactly capacity
        for addr in lines:
            c.access(addr)
        c.reset_counters()
        for addr in lines:
            c.access(addr)
        assert c.misses == 0

    def test_working_set_beyond_capacity_thrashes(self):
        c = small_cache(size=1024, assoc=2, line=64)
        lines = [i * 64 for i in range(64)]  # 4x capacity, sequential
        for _ in range(3):
            for addr in lines:
                c.access(addr)
        assert c.miss_ratio() > 0.9


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = small_cache(size=512, assoc=2, line=64)
        for addr in addrs:
            c.access(addr)
        for ways in c._sets:
            assert len(ways) <= c.ways

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
        assert c.hits + c.misses == len(addrs)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
            assert c.access(addr) is True

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_bigger_associativity_never_more_misses_sequentialless(self, addrs, assoc_pow):
        """LRU caches of growing associativity (same capacity in sets*ways
        scaled) — a fully-associative-ward move can't hurt for these sizes."""
        small = Cache(CacheConfig("s", 64 * 16, 1, 64))
        big = Cache(CacheConfig("b", 64 * 16, 16, 64))
        for addr in addrs:
            small.access(addr)
            big.access(addr)
        assert big.misses <= small.misses + len(addrs) // 4  # allow slack for conflict luck


class TestHierarchy:
    def make(self, prefetch=False) -> CacheHierarchy:
        l1 = small_cache(1024, 2, 64, latency=4)
        l2 = Cache(CacheConfig("L2", 4096, 4, 64, hit_latency=10))
        l3 = Cache(CacheConfig("L3", 16384, 8, 64, hit_latency=30))
        return CacheHierarchy(l1, l2, l3, memory_latency=100, prefetch=prefetch)

    def test_cold_miss_costs_full_path(self):
        h = self.make()
        assert h.access(0) == 4 + 10 + 30 + 100

    def test_l1_hit_latency(self):
        h = self.make()
        h.access(0)
        assert h.access(0) == 4

    def test_l2_hit_latency(self):
        h = self.make()
        h.access(0)
        # Evict from tiny L1 but keep in L2.
        for i in range(1, 40):
            h.access(i * 64)
        latency = h.access(0)
        assert latency in (4, 14)  # L1 hit only if it survived; L2 hit otherwise
        assert latency == 14 or h.l1.probe(0)

    def test_dram_transfer_counted_once_per_cold_line(self):
        h = self.make()
        h.access(0)
        h.access(8)  # same line
        assert h.dram_transfers == 1

    def test_prefetch_pulls_next_line(self):
        h = self.make(prefetch=True)
        h.access(0)  # miss, prefetches line 1 into L2
        assert h.l2.probe(64) is True
        assert h.prefetch_fills == 1

    def test_prefetch_counts_dram_traffic(self):
        h = self.make(prefetch=True)
        h.access(0)
        # demand line 0 + prefetched line 1
        assert h.dram_transfers == 2

    def test_prefetch_from_l3_is_not_dram_traffic(self):
        h = self.make(prefetch=True)
        h.access(64)  # brings line 1 into all levels, prefetches line 2
        before = h.dram_transfers
        h.access(0)  # miss; prefetch of line 1 finds it already in L2
        assert h.dram_transfers == before + 1  # only the demand line

    def test_no_prefetch_when_disabled(self):
        h = self.make(prefetch=False)
        h.access(0)
        assert h.l2.probe(64) is False

    def test_reset_counters(self):
        h = self.make(prefetch=True)
        h.access(0)
        h.reset_counters()
        assert h.dram_transfers == 0
        assert h.l1.accesses == 0

    def test_build_data_hierarchy_uses_machine_config(self):
        h = build_data_hierarchy(XEON_E5645)
        assert h.l1.config.size_bytes == 32 * 1024
        assert h.l3.config.size_bytes == 12 * 1024 * 1024
        assert h.memory_latency == XEON_E5645.memory_latency

    def test_sequential_stream_mostly_l2_hits_with_prefetch(self):
        h = self.make(prefetch=True)
        for i in range(200):
            h.access(i * 64)
        # Every demand access beyond the first should find its line
        # prefetched into L2 (next-line prefetcher keeps up with a
        # pure sequential stream).
        assert h.l2.misses <= 2
