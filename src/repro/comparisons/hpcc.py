"""HPCC 1.4 proxies — seven programs, each really computing its kernel.

Footnote 1 of the paper: "HPL solves linear equations.  STREAM is a simple
synthetic benchmark, streaming access memory.  RandomAccess updates
(remote) memory randomly.  DGEMM performs matrix multiplications.  FFT
performs discrete fourier transform.  COMM is a set of tests to measure
latency and bandwidth of the interconnection system."  PTRANS transposes
a distributed matrix.

Profiles: HPCC programs are small native binaries (KB-scale instruction
footprints, near-zero kernel time except RandomAccess's ~31 %, extremely
regular loop control) whose *data* behaviour spans the locality spectrum —
which is exactly why the paper uses them as the contrast group.
"""

from __future__ import annotations

import cmath
import math
from typing import Any

import numpy as np

from repro.comparisons.base import ComparisonRun, ComparisonWorkload, register
from repro.uarch.trace import MemoryRegion

#: Shared profile bits for the HPCC family: tiny hot binaries, countable
#: loops, no managed runtime.
_HPCC_BASE: dict[str, Any] = {
    "code_footprint": 24 * 1024,
    "hot_code_fraction": 0.4,
    "hot_code_weight": 0.95,
    "call_fraction": 0.04,
    "indirect_fraction": 0.0,
    "mean_block_len": 14.0,
    "loop_branch_fraction": 0.9,
    "mean_trip_count": 96.0,
    "branch_regularity": 0.998,
    "kernel_fraction": 0.01,
    "kernel_episode_len": 150,
    "kernel_code_footprint": 64 * 1024,
    "partial_register_ratio": 0.02,
}


def _hpcc_profile(**overrides: Any) -> dict[str, Any]:
    params = dict(_HPCC_BASE)
    params.update(overrides)
    return params


@register
class Hpl(ComparisonWorkload):
    """HPL: dense LU factorisation with partial pivoting + solve."""

    name = "HPCC-HPL"
    suite = "HPCC"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        n = max(8, int(96 * scale))
        rng = np.random.default_rng(11)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        lu = a.copy()
        piv = np.arange(n)
        for k in range(n - 1):
            pivot = k + int(np.argmax(np.abs(lu[k:, k])))
            if pivot != k:
                lu[[k, pivot]] = lu[[pivot, k]]
                piv[[k, pivot]] = piv[[pivot, k]]
            lu[k + 1:, k] /= lu[k, k]
            lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
        # forward/back substitution
        y = b[piv].copy()
        for i in range(1, n):
            y[i] -= lu[i, :i] @ y[:i]
        x = y.copy()
        for i in range(n - 1, -1, -1):
            x[i] = (y[i] - lu[i, i + 1:] @ x[i + 1:]) / lu[i, i]
        residual = float(np.linalg.norm(a @ x - b) / (np.linalg.norm(a) * np.linalg.norm(x)))
        flops = 2.0 / 3.0 * n**3
        return ComparisonRun(self.name, x, {"residual": residual, "flops": flops, "n": n})

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            # blocked GEMM-dominated update: FP-dense, cache-tiled
            load_fraction=0.30, store_fraction=0.09, fp_fraction=0.36, mul_fraction=0.02,
            regions=(
                MemoryRegion("panel", 96 << 10, 1.0, "sequential"),
                MemoryRegion("trailing", 96 << 10, 1.0, "sequential"),
            ),
            # FMA chains bound IPC near the paper's ~1.2
            dep_mean=5.0, dep_density=0.55,
        )


@register
class Dgemm(ComparisonWorkload):
    """DGEMM: blocked C += A·B, verified against numpy."""

    name = "HPCC-DGEMM"
    suite = "HPCC"

    BLOCK = 16

    def run(self, scale: float = 1.0) -> ComparisonRun:
        n = max(self.BLOCK, int(64 * scale) // self.BLOCK * self.BLOCK)
        rng = np.random.default_rng(12)
        a = rng.standard_normal((n, n))
        b_mat = rng.standard_normal((n, n))
        c = np.zeros((n, n))
        nb = self.BLOCK
        for i0 in range(0, n, nb):
            for k0 in range(0, n, nb):
                a_blk = a[i0:i0 + nb, k0:k0 + nb]
                for j0 in range(0, n, nb):
                    c[i0:i0 + nb, j0:j0 + nb] += a_blk @ b_mat[k0:k0 + nb, j0:j0 + nb]
        error = float(np.max(np.abs(c - a @ b_mat)))
        return ComparisonRun(self.name, c, {"max_error": error, "flops": 2.0 * n**3, "n": n})

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.28, store_fraction=0.08, fp_fraction=0.40, mul_fraction=0.02,
            regions=(
                MemoryRegion("a-block", 64 << 10, 1.0, "sequential"),
                MemoryRegion("b-block", 64 << 10, 1.0, "strided", stride=64),
                MemoryRegion("c-block", 64 << 10, 0.5, "sequential"),
            ),
            dep_mean=6.0, dep_density=0.45,
        )


@register
class Stream(ComparisonWorkload):
    """STREAM: copy/scale/add/triad over arrays far beyond cache."""

    name = "HPCC-STREAM"
    suite = "HPCC"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        n = max(1000, int(200_000 * scale))
        a = np.arange(n, dtype=np.float64)
        b = 2.0 * np.ones(n)
        c = np.zeros(n)
        c[:] = a                      # copy
        b[:] = 3.0 * c                # scale
        c[:] = a + b                  # add
        a[:] = b + 4.0 * c            # triad
        checksum = float(a.sum())
        expected = float(np.sum(3.0 * np.arange(n) + 4.0 * (np.arange(n) + 3.0 * np.arange(n))))
        return ComparisonRun(
            self.name, None,
            {"checksum_error": abs(checksum - expected) / max(1.0, abs(expected)),
             "bytes_moved": float(10 * 8 * n), "n": n},
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.34, store_fraction=0.17, fp_fraction=0.22,
            regions=(
                MemoryRegion("a", 256 << 20, 1.0, "sequential"),
                MemoryRegion("b", 256 << 20, 1.0, "sequential"),
                MemoryRegion("c", 256 << 20, 1.0, "sequential"),
            ),
            # pure streaming: perfect ILP, bandwidth-bound (paper IPC < 0.5)
            dep_mean=8.0, dep_density=0.4,
        )


@register
class Ptrans(ComparisonWorkload):
    """PTRANS: A = A^T + B — the all-to-all transpose."""

    name = "HPCC-PTRANS"
    suite = "HPCC"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        n = max(8, int(128 * scale))
        rng = np.random.default_rng(13)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        original = a.copy()
        result = np.empty_like(a)
        for i in range(n):           # explicit transposed walk
            for j in range(n):
                result[i, j] = original[j, i] + b[i, j]
        error = float(np.max(np.abs(result - (original.T + b))))
        return ComparisonRun(self.name, result, {"max_error": error, "n": n})

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.34, store_fraction=0.16, fp_fraction=0.10,
            regions=(
                # column-order walk: large stride defeats line reuse and TLB
                MemoryRegion("a-cols", 8 << 20, 0.1, "strided", stride=2048),
                MemoryRegion("b-rows", 64 << 20, 0.5, "sequential"),
            ),
            dep_mean=6.0, dep_density=0.45,
        )


@register
class RandomAccess(ComparisonWorkload):
    """RandomAccess: GUPS — XOR updates at LCG-random table indices."""

    name = "HPCC-RandomAccess"
    suite = "HPCC"

    POLY = 0x0000000000000007

    def run(self, scale: float = 1.0) -> ComparisonRun:
        log2_size = max(8, int(14 * scale))
        size = 1 << log2_size
        table = list(range(size))
        ran = 1
        updates = 4 * size
        for _ in range(updates):
            ran = ((ran << 1) ^ (self.POLY if ran & (1 << 63) else 0)) & (1 << 64) - 1
            idx = ran & (size - 1)
            table[idx] ^= ran
        # verification: replaying the updates must restore the table
        ran = 1
        for _ in range(updates):
            ran = ((ran << 1) ^ (self.POLY if ran & (1 << 63) else 0)) & (1 << 64) - 1
            table[ran & (size - 1)] ^= ran
        errors = sum(1 for i, v in enumerate(table) if v != i)
        return ComparisonRun(self.name, None, {"errors": errors, "updates": updates, "size": size})

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.26, store_fraction=0.13,
            regions=(
                # the GUPS table: uniform single-word random access — the
                # pathological TLB/cache case.  The weight is small because
                # each update is surrounded by RNG + MPI-bucketing code
                # (tens of instructions per table touch).
                MemoryRegion("gups-table", 64 << 20, 0.08, "random", burst=1),
                MemoryRegion("update-buffer", 512 << 10, 1.0, "sequential"),
            ),
            # §IV-A: ~31 % kernel instructions (copy_user_generic_string
            # from the MPI buffer exchanges)
            kernel_fraction=0.31,
            kernel_episode_len=250,
            kernel_buffer_bytes=4 << 20,
            dep_mean=7.0, dep_density=0.45,
        )


@register
class Fft(ComparisonWorkload):
    """FFT: iterative radix-2 Cooley-Tukey, verified against numpy.fft."""

    name = "HPCC-FFT"
    suite = "HPCC"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        log_n = max(4, int(10 * scale))
        n = 1 << log_n
        rng = np.random.default_rng(14)
        data = [complex(x, y) for x, y in rng.standard_normal((n, 2))]
        # bit-reversal permutation
        out = list(data)
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                out[i], out[j] = out[j], out[i]
        # butterflies
        length = 2
        while length <= n:
            ang = -2.0 * math.pi / length
            wlen = cmath.exp(1j * ang)
            for i in range(0, n, length):
                w = 1.0 + 0.0j
                for k in range(i, i + length // 2):
                    u = out[k]
                    v = out[k + length // 2] * w
                    out[k] = u + v
                    out[k + length // 2] = u - v
                    w *= wlen
            length <<= 1
        reference = np.fft.fft(np.array(data))
        error = float(np.max(np.abs(np.array(out) - reference)) / np.max(np.abs(reference)))
        return ComparisonRun(self.name, out, {"relative_error": error, "n": n})

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.30, store_fraction=0.14, fp_fraction=0.30, mul_fraction=0.02,
            regions=(
                # blocked passes are sequential within cache-sized tiles;
                # the bit-reversal permutation is the scattered part
                MemoryRegion("fft-data", 4 << 20, 0.4, "sequential"),
                MemoryRegion("bit-reversal", 2 << 20, 0.06, "random", burst=1),
                MemoryRegion("twiddles", 1 << 20, 0.3, "sequential"),
            ),
            dep_mean=4.0, dep_density=0.6,
        )


@register
class Comm(ComparisonWorkload):
    """COMM (b_eff): ping-pong latency and ring bandwidth on the cluster
    network model — the interconnect test the footnote describes."""

    name = "HPCC-COMM"
    suite = "HPCC"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        from repro.cluster.network import Network, Nic
        from repro.perf.procfs import ProcFs

        nodes = [Nic(ProcFs(f"n{i}")) for i in range(4)]
        net = Network(latency_s=0.0002)
        # ping-pong: 1-byte round trips
        now = 0.0
        rounds = max(1, int(50 * scale))
        for _ in range(rounds):
            now = net.transfer(now, nodes[0], nodes[1], 1)
            now = net.transfer(now, nodes[1], nodes[0], 1)
        latency = now / (2 * rounds)
        # ring bandwidth: 1 MB messages around the ring
        start = now
        message = 1 << 20
        for i, _ in enumerate(nodes):
            now = net.transfer(now, nodes[i], nodes[(i + 1) % len(nodes)], message)
        bandwidth = len(nodes) * message / (now - start)
        return ComparisonRun(
            self.name, None, {"latency_s": latency, "ring_bandwidth_Bps": bandwidth}
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _hpcc_profile(
            load_fraction=0.28, store_fraction=0.16,
            regions=(
                MemoryRegion("send-buffers", 16 << 20, 1.0, "sequential"),
                MemoryRegion("recv-buffers", 16 << 20, 1.0, "sequential"),
            ),
            # message-passing spends most time in the network stack
            kernel_fraction=0.20,
            kernel_episode_len=300,
            kernel_buffer_bytes=4 << 20,
            dep_mean=4.0, dep_density=0.55,
        )
