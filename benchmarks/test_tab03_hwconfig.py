"""Table III: details of the hardware configuration the simulator models."""

from conftest import run_once

from repro.core.report import render_table3
from repro.uarch.config import XEON_E5645


def test_table3(benchmark):
    rows = run_once(benchmark, XEON_E5645.describe)
    print()
    print(render_table3())

    assert rows["CPU Type"] == "Intel Xeon E5645"
    assert rows["# Cores"] == "6 cores@2.4G"
    assert rows["# threads"] == "12 threads"
    assert rows["# Sockets"] == "2"
    assert rows["ITLB"] == "4-way set associative, 64 entries"
    assert rows["DTLB"] == "4-way set associative, 64 entries"
    assert rows["L2 TLB"] == "4-way associative, 512 entries"
    assert rows["L1 DCache"] == "32KB, 8-way associative, 64 byte/line"
    assert rows["L1 ICache"] == "32KB, 4-way associative, 64 byte/line"
    assert rows["L2 Cache"] == "256 KB, 8-way associative, 64 byte/line"
    assert rows["L3 Cache"] == "12 MB, 16-way associative, 64 byte/line"
    assert rows["Memory"] == "32 GB , DDR3"
