"""MPI implementations of three DCBench workloads.

Each program partitions the same synthetic input the MapReduce version
uses, iterates with in-memory state and collectives instead of per-job
HDFS materialisation, and returns both the result and the runtime's
elapsed time + communication stats.  Results are asserted equal to the
MapReduce twins in the tests, so the programming-model comparison is
about *execution*, not algorithms.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass
from typing import Any

from repro.mapreduce.partitioner import _stable_hash
from repro.mpi.runtime import MpiRuntime
from repro.workloads.kmeans import nearest_centroid, squared_distance


@dataclass
class MpiRun:
    """Result of one MPI program execution."""

    output: Any
    elapsed_s: float
    iterations: int
    stats_messages: int
    stats_bytes: int


def _partition(records: list, num_ranks: int) -> list[list]:
    return [records[rank::num_ranks] for rank in range(num_ranks)]


# ---------------------------------------------------------------------------
# K-means
# ---------------------------------------------------------------------------


def mpi_kmeans(
    runtime: MpiRuntime,
    points: list[tuple[int, tuple[float, ...]]],
    k: int,
    max_iterations: int = 10,
    tolerance: float = 1e-3,
    cost_per_point: float = 1.2e-5,
) -> MpiRun:
    """Lloyd's algorithm with allreduce of per-cluster partial sums."""
    if k <= 0:
        raise ValueError("k must be positive")
    shards = _partition(points, runtime.num_ranks)
    centroids = [point for _, point in points[:k]]
    dims = len(centroids[0])
    iterations = 0
    for _ in range(max_iterations):
        current = centroids

        def local_sums(rank: int):
            sums = [[0.0] * dims for _ in range(k)]
            counts = [0] * k
            for _pid, point in shards[rank]:
                cid = nearest_centroid(point, current)
                counts[cid] += 1
                for d in range(dims):
                    sums[cid][d] += point[d]
            return sums, counts

        partials = runtime.compute(
            local_sums, cost=lambda rank: len(shards[rank]) * cost_per_point
        )

        def combine(a, b):
            sums_a, counts_a = a
            sums_b, counts_b = b
            return (
                [[x + y for x, y in zip(ra, rb)] for ra, rb in zip(sums_a, sums_b)],
                [x + y for x, y in zip(counts_a, counts_b)],
            )

        sums, counts = runtime.allreduce(partials, combine)
        new_centroids = [
            tuple(s / c for s in row) if c else centroids[cid]
            for cid, (row, c) in enumerate(zip(sums, counts))
        ]
        shift = max(
            math.sqrt(squared_distance(a, b)) for a, b in zip(centroids, new_centroids)
        )
        centroids = new_centroids
        iterations += 1
        if shift < tolerance:
            break
    return MpiRun(
        output=centroids,
        elapsed_s=runtime.elapsed(),
        iterations=iterations,
        stats_messages=runtime.stats.messages,
        stats_bytes=runtime.stats.bytes_sent,
    )


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------


def mpi_pagerank(
    runtime: MpiRuntime,
    graph: list[tuple[int, tuple[int, ...]]],
    iterations: int = 8,
    damping: float = 0.85,
    cost_per_edge: float = 5e-7,
) -> MpiRun:
    """Power iteration with an alltoall of rank contributions.

    Pages are partitioned by id; each iteration every rank computes the
    contributions its pages send, exchanges them alltoall, and applies
    the damping update to its own pages.  Dangling mass is summed by an
    allreduce, as in the MapReduce twin.
    """
    n = len(graph)
    num_ranks = runtime.num_ranks
    shards = _partition(graph, num_ranks)
    owner = {page: idx % num_ranks for idx, (page, _) in enumerate(graph)}
    ranks_vec = {page: 1.0 / n for page, _ in graph}

    for _ in range(iterations):
        current = dict(ranks_vec)

        def local_contribs(rank: int):
            outgoing: list[dict[int, float]] = [
                collections.defaultdict(float) for _ in range(num_ranks)
            ]
            dangling = 0.0
            for page, links in shards[rank]:
                value = current[page]
                if links:
                    share = value / len(links)
                    for target in links:
                        outgoing[owner[target]][target] += share
                else:
                    dangling += value
            return [dict(d) for d in outgoing], dangling

        results = runtime.compute(
            local_contribs,
            cost=lambda rank: sum(len(links) for _, links in shards[rank]) * cost_per_edge,
        )
        send = [out for out, _ in results]
        danglings = [d for _, d in results]
        total_dangling = runtime.allreduce(danglings, lambda a, b: a + b)
        received = runtime.alltoall(send)

        base = (1.0 - damping) / n + damping * total_dangling / n
        new_vec = {}
        for rank in range(num_ranks):
            incoming = collections.defaultdict(float)
            for sender in range(num_ranks):
                for page, value in received[rank][sender].items():
                    incoming[page] += value
            for page, _links in shards[rank]:
                new_vec[page] = base + damping * incoming.get(page, 0.0)
        total = sum(new_vec.values())
        ranks_vec = {page: value / total for page, value in new_vec.items()}

    return MpiRun(
        output=ranks_vec,
        elapsed_s=runtime.elapsed(),
        iterations=iterations,
        stats_messages=runtime.stats.messages,
        stats_bytes=runtime.stats.bytes_sent,
    )


# ---------------------------------------------------------------------------
# WordCount
# ---------------------------------------------------------------------------


def mpi_wordcount(
    runtime: MpiRuntime,
    documents: list[tuple[str, str]],
    cost_per_doc: float = 4e-6,
) -> MpiRun:
    """Local counting + hash-partitioned alltoall + final merge."""
    num_ranks = runtime.num_ranks
    shards = _partition(documents, num_ranks)

    def local_count(rank: int):
        counts: collections.Counter = collections.Counter()
        for _doc_id, text in shards[rank]:
            counts.update(text.split())
        buckets: list[dict[str, int]] = [{} for _ in range(num_ranks)]
        for word, count in counts.items():
            # Salt-free hash: bucket sizes (and thus timing) reproduce
            # across processes, unlike Python's randomised str hash.
            buckets[_stable_hash(word) % num_ranks][word] = count
        return buckets

    partials = runtime.compute(
        local_count, cost=lambda rank: len(shards[rank]) * cost_per_doc
    )
    received = runtime.alltoall(partials)
    merged: dict[str, int] = {}

    def merge_bucket(rank: int):
        bucket: dict[str, int] = {}
        for sender in range(num_ranks):
            for word, count in received[rank][sender].items():
                bucket[word] = bucket.get(word, 0) + count
        return bucket

    buckets = runtime.compute(
        merge_bucket,
        cost=lambda rank: sum(len(received[rank][s]) for s in range(num_ranks)) * 5e-7,
    )
    gathered = runtime.gather(buckets, root=0)
    for bucket in gathered:
        merged.update(bucket)
    return MpiRun(
        output=merged,
        elapsed_s=runtime.elapsed(),
        iterations=1,
        stats_messages=runtime.stats.messages,
        stats_bytes=runtime.stats.bytes_sent,
    )
