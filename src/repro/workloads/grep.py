"""Grep — Table I row 3 (Hadoop example).

Extracts matching strings from text and counts the occurrences of each
match (the two-phase Hadoop grep example collapsed into one map+reduce
job).  Grep streams its input through a tiny matcher with almost no
state, giving it the highest IPC and the smallest data working set of the
basic operations.
"""

from __future__ import annotations

import re
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register

#: Default pattern: words starting with a common prefix (non-trivial match
#: rate on the Zipf corpus).
DEFAULT_PATTERN = r"\b[a-z]*ab[a-z]*\b"


def _make_grep_map(pattern: str):
    compiled = re.compile(pattern)

    def grep_map(key, text):
        for match in compiled.findall(text):
            yield match, 1

    return grep_map


def _count_reduce(match, counts):
    yield match, sum(counts)


@register
class GrepWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="Grep",
        input_description="154 GB documents",
        input_gb_low=154,
        retired_instructions_1e9=1499,
        source="Hadoop example",
        scenarios=(
            ("search engine", "Log analysis"),
            ("social network", "Web information extraction"),
            ("electronic commerce", "Fuzzy search"),
        ),
        table1_row=3,
    )

    BASE_DOCS = 1200

    def __init__(self, pattern: str = DEFAULT_PATTERN):
        self.pattern = pattern

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        docs = datagen.generate_documents(max(1, int(self.BASE_DOCS * scale)), seed=14)
        job = MapReduceJob(
            _make_grep_map(self.pattern),
            _count_reduce,
            JobConf(
                name="grep",
                num_reduces=8,
                # Scanning is cheap per byte; output is tiny.
                map_cost_per_record=1.5e-6,
                map_cost_per_byte=2e-8,
                reduce_cost_per_record=5e-7,
            ),
            combiner=_count_reduce,
        )
        result = engine.execute(job, docs, cluster=cluster, input_name="grep-input")
        return self._merge_results(
            self.info.name,
            [result],
            dict(result.output),
            documents=len(docs),
            pattern=self.pattern,
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # A scanner: loads dominate, almost no stores (matches are rare).
            "load_fraction": 0.30,
            "store_fraction": 0.05,
            "fp_fraction": 0.0,
            "regions": (
                MemoryRegion("corpus", 128 << 20, 0.2, "sequential"),
                # DFA/automaton tables: small and cache-resident.
                MemoryRegion("dfa-tables", 256 << 10, 0.5, "random", burst=2,
                             hot_fraction=0.25, hot_weight=0.9),
            ),
            # Output is a tiny fraction of input: little I/O beyond reading.
            "kernel_fraction": 0.03,
            # The DFA transition loop is extremely regular; mismatching
            # characters follow the dominant no-match edge.
            "branch_regularity": 0.975,
            "taken_bias": 0.6,
            "mean_block_len": 5.5,
            # Independent per-character transitions pipeline well.
            "dep_mean": 4.5,
            "dep_density": 0.6,
        }
