"""Unit and property tests for TLBs and the page walker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.config import TlbConfig
from repro.uarch.tlb import PageWalker, Tlb, TlbHierarchy


def small_tlb(entries=8, assoc=2) -> Tlb:
    return Tlb(TlbConfig("T", entries, assoc))


def make_hierarchy(l1_entries=4, l2_entries=16, walk=30):
    walker = PageWalker(walk)
    l2 = small_tlb(l2_entries, 4)
    return TlbHierarchy(small_tlb(l1_entries, 2), l2, walker), walker


class TestTlb:
    def test_first_access_misses(self):
        t = small_tlb()
        assert t.access(0) is False
        assert t.misses == 1

    def test_same_page_hits(self):
        t = small_tlb()
        t.access(0)
        assert t.access(4095) is True

    def test_next_page_misses(self):
        t = small_tlb()
        t.access(0)
        assert t.access(4096) is False

    def test_lru_within_set(self):
        t = small_tlb(entries=4, assoc=2)  # 2 sets
        page = 4096
        set_stride = 2 * page  # same set
        t.access(0)
        t.access(set_stride)
        t.access(0)
        t.access(2 * set_stride)  # evicts set_stride
        assert t.access(0) is True
        assert t.access(set_stride) is False

    def test_miss_ratio(self):
        t = small_tlb()
        t.access(0)
        t.access(0)
        t.access(0)
        assert t.miss_ratio() == pytest.approx(1 / 3)

    def test_reset_preserves_contents(self):
        t = small_tlb()
        t.access(0)
        t.reset_counters()
        assert t.access(0) is True
        assert t.hits == 1 and t.misses == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, addrs):
        t = small_tlb(entries=8, assoc=2)
        for addr in addrs:
            t.access(addr)
        for ways in t._sets:
            assert len(ways) <= t.ways

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_accounting_consistent(self, addrs):
        t = small_tlb()
        for addr in addrs:
            t.access(addr)
        assert t.hits + t.misses == len(addrs)


class TestPageWalker:
    def test_walk_returns_latency_and_counts(self):
        w = PageWalker(30)
        assert w.walk() == 30
        assert w.walk() == 30
        assert w.completed_walks == 2

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            PageWalker(-1)

    def test_reset(self):
        w = PageWalker(10)
        w.walk()
        w.reset_counters()
        assert w.completed_walks == 0


class TestTlbHierarchy:
    def test_l1_hit_is_free(self):
        h, _ = make_hierarchy()
        h.translate(0)
        assert h.translate(100) == 0

    def test_cold_miss_walks(self):
        h, walker = make_hierarchy(walk=30)
        assert h.translate(0) == 30
        assert walker.completed_walks == 1
        assert h.completed_walks == 1

    def test_l2_hit_is_cheap_refill(self):
        h, walker = make_hierarchy(l1_entries=2, l2_entries=64)
        pages = [i * 4096 for i in range(8)]
        for p in pages:
            h.translate(p)
        walks_before = walker.completed_walks
        # All 8 pages fit the L2 TLB but not the 2-entry L1.
        latency = h.translate(pages[0])
        assert latency == 7
        assert walker.completed_walks == walks_before

    def test_completed_walks_per_side(self):
        """The paper counts walks caused by each side's L1 TLB separately."""
        walker = PageWalker(30)
        l2 = small_tlb(64, 4)
        iside = TlbHierarchy(small_tlb(4, 2), l2, walker)
        dside = TlbHierarchy(small_tlb(4, 2), l2, walker)
        iside.translate(0)
        dside.translate(1 << 30)
        dside.translate(2 << 30)
        assert iside.completed_walks == 1
        assert dside.completed_walks == 2
        assert walker.completed_walks == 3

    def test_shared_l2_tlb_visible_to_both_sides(self):
        walker = PageWalker(30)
        l2 = small_tlb(64, 4)
        iside = TlbHierarchy(small_tlb(2, 2), l2, walker)
        dside = TlbHierarchy(small_tlb(2, 2), l2, walker)
        iside.translate(0)
        # Data side misses its L1 TLB but hits the shared L2 TLB.
        assert dside.translate(0) == 7
        assert dside.completed_walks == 0

    def test_reset_counters(self):
        h, _ = make_hierarchy()
        h.translate(0)
        h.reset_counters()
        assert h.completed_walks == 0
