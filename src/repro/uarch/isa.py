"""Abstract micro-operation model.

The simulator is trace driven: workloads are lowered to streams of
:class:`MicroOp` objects, the RISC-like internal operations that a Westmere
decoder would emit.  A micro-op carries everything the timing model needs —
its class, program counter, memory address (for loads/stores), branch
outcome and target (for branches), data-dependency distances, and whether
it executes in kernel mode (ring 0).
"""

from __future__ import annotations

from enum import IntEnum


class OpClass(IntEnum):
    """Execution class of a micro-op.

    The class selects the execution latency and the issue port pressure in
    the back end, and decides which buffers the op occupies (loads go to the
    load buffer, stores to the store buffer).
    """

    ALU = 0      #: single-cycle integer op
    MUL = 1      #: integer multiply
    DIV = 2      #: integer/FP divide (long latency, unpipelined)
    FP = 3       #: pipelined floating-point op (add/mul)
    LOAD = 4     #: memory read
    STORE = 5    #: memory write
    BRANCH = 6   #: conditional or indirect branch
    NOP = 7      #: no-op / fence placeholder


#: Ops that access data memory.
MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE})

#: Default execution latencies per op class (cycles), Westmere-like.
#: LOAD latency here is the address-generation part only; the data-cache
#: access time is added by the memory hierarchy.
DEFAULT_LATENCY = {
    OpClass.ALU: 1,
    OpClass.MUL: 3,
    OpClass.DIV: 22,
    OpClass.FP: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}


class MicroOp:
    """One dynamic micro-op in a trace.

    Attributes:
        op: the :class:`OpClass`.
        pc: byte address of the instruction (used by L1I/ITLB/branch units).
        addr: data address for LOAD/STORE, else 0.
        taken: branch outcome for BRANCH, else False.
        target: branch target pc for BRANCH, else 0.
        dep1: distance (in dynamic micro-ops) back to the first source
            operand's producer, or 0 for no register dependency.
        dep2: distance to the second producer, or 0.
        kernel: True when the op executes in kernel mode.
    """

    __slots__ = ("op", "pc", "addr", "taken", "target", "dep1", "dep2", "kernel")

    def __init__(
        self,
        op: OpClass,
        pc: int,
        addr: int = 0,
        taken: bool = False,
        target: int = 0,
        dep1: int = 0,
        dep2: int = 0,
        kernel: bool = False,
    ) -> None:
        self.op = op
        self.pc = pc
        self.addr = addr
        self.taken = taken
        self.target = target
        self.dep1 = dep1
        self.dep2 = dep2
        self.kernel = kernel

    def is_memory(self) -> bool:
        """Return True when the op reads or writes data memory."""
        return self.op == OpClass.LOAD or self.op == OpClass.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_memory():
            extra = f" addr={self.addr:#x}"
        elif self.op == OpClass.BRANCH:
            extra = f" taken={self.taken} target={self.target:#x}"
        mode = " K" if self.kernel else ""
        return f"<MicroOp {self.op.name} pc={self.pc:#x}{extra}{mode}>"
