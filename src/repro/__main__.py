"""Command-line interface: ``python -m repro <command>``.

Sub-commands mirror how the paper's artefacts are used:

* ``list``               — show the DCBench suite (groups, Table I info)
* ``tables``             — print Tables I, II and III
* ``run <workload>``     — execute a workload on a simulated cluster,
                            optionally under fault injection
                            (``--faults``, ``--crash-node``, ``--seed``,
                            ``--corruption-rate``, ``--link-loss``,
                            ``--partition``, ``--scrub``, ``--racks``,
                            ``--rack-fail``, ``--tor-fail``)
* ``characterize [...]`` — Figures 3–12 metrics for named workloads
                            (or the whole suite) with optional CSV/JSON
* ``speedup``            — the Figure 2 scaling study
* ``domains``            — the Figure 1 domain shares
* ``profile <workload>`` — sampled flat profile of the instruction stream
* ``colocate <w> <w>..`` — co-locate workloads on one socket (shared LLC)
* ``mix``                — a multi-tenant day of traffic: seeded heavy-tailed
                            trace through the FIFO/Fair/Capacity scheduler
                            (``--scheduler``, ``--jobs``, ``--rate``,
                            ``--engine``, ``--no-mix-cache``,
                            ``--crash-node``, ``--partition``, ``--racks``,
                            ``--rack-fail``, ``--tor-fail``, ``--colocate``)
* ``bench-cluster``      — time the reference vs fast cluster engines on a
                            pinned mix matrix plus a day-long scale trace;
                            writes ``BENCH_cluster.json`` and fails unless
                            every row is bit-identical
* ``serve``              — open-loop service traffic through a frontend with
                            graceful degradation (``--rate``, ``--pattern``,
                            ``--deadline``, ``--shed-rate``, ``--limp``,
                            ``--unprotected``, ``--compare``)
* ``record``             — run a mix and serialize it as a WfCommons-style
                            instance JSON (``--trace``, ``--output``)
* ``fit-recipe``         — fit a workload recipe (mix, sizes, arrivals,
                            repetitiveness) from an instance or trace JSON
* ``gen-trace``          — regenerate a synthetic trace of any length from a
                            fitted recipe (``--jobs``, ``--seed``); replay it
                            with ``mix --trace FILE``
* ``rep-bench``          — Redbench-style repetition benchmark: per-bucket
                            materialization-cache payoff
                            (``--buckets``, ``--no-result-cache``)
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.suite import DCBench


def _rate(text: str) -> float:
    """argparse type: a probability in [0, 1] (NaN-proof)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not 0.0 <= value <= 1.0:  # NaN fails every comparison
        raise argparse.ArgumentTypeError(f"must be a rate in [0, 1], got {text}")
    return value


def _link_rate(text: str) -> float:
    """argparse type: a per-segment loss probability in [0, 1) (NaN-proof)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not 0.0 <= value < 1.0:  # NaN fails every comparison
        raise argparse.ArgumentTypeError(f"must be a rate in [0, 1), got {text}")
    return value


def _partition(text: str) -> tuple[str, float, float]:
    """argparse type: a network partition spec ``NODE:START:DURATION``."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected NODE:START:DURATION, got {text!r}"
        )
    node, start_text, duration_text = parts
    if not node:
        raise argparse.ArgumentTypeError("partition node name must not be empty")
    try:
        start = float(start_text)
        duration = float(duration_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"START and DURATION must be numbers, got {text!r}"
        ) from None
    if not (start >= 0.0 and math.isfinite(start)):
        raise argparse.ArgumentTypeError(
            f"partition START must be finite and non-negative, got {start_text}"
        )
    if not (duration > 0.0 and math.isfinite(duration)):
        raise argparse.ArgumentTypeError(
            f"partition DURATION must be finite and positive, got {duration_text}"
        )
    return (node, start, duration)


def _rack_fail(text: str) -> tuple[str, float]:
    """argparse type: a rack power-outage spec ``RACK:TIME``."""
    parts = text.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(f"expected RACK:TIME, got {text!r}")
    rack, time_text = parts
    if not rack:
        raise argparse.ArgumentTypeError("outage rack name must not be empty")
    try:
        time = float(time_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"TIME must be a number, got {text!r}"
        ) from None
    if not (time >= 0.0 and math.isfinite(time)):
        raise argparse.ArgumentTypeError(
            f"outage TIME must be finite and non-negative, got {time_text}"
        )
    return (rack, time)


def _tor_fail(text: str) -> tuple[str, float, float]:
    """argparse type: a ToR-switch failure spec ``RACK:START:DURATION``."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected RACK:START:DURATION, got {text!r}"
        )
    rack, start_text, duration_text = parts
    if not rack:
        raise argparse.ArgumentTypeError("ToR-failure rack name must not be empty")
    try:
        start = float(start_text)
        duration = float(duration_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"START and DURATION must be numbers, got {text!r}"
        ) from None
    if not (start >= 0.0 and math.isfinite(start)):
        raise argparse.ArgumentTypeError(
            f"ToR-failure START must be finite and non-negative, got {start_text}"
        )
    if not (duration > 0.0 and math.isfinite(duration)):
        raise argparse.ArgumentTypeError(
            f"ToR-failure DURATION must be finite and positive, got {duration_text}"
        )
    return (rack, start, duration)


def _seconds(text: str) -> float:
    """argparse type: a finite, non-negative simulated time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not (value >= 0.0 and math.isfinite(value)):
        raise argparse.ArgumentTypeError(
            f"must be a finite non-negative number of seconds, got {text}"
        )
    return value


def _positive_rate(text: str) -> float:
    """argparse type: a finite, strictly positive rate (NaN-proof)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not (value > 0.0 and math.isfinite(value)):
        raise argparse.ArgumentTypeError(
            f"must be a finite positive rate, got {text}"
        )
    return value


def _count(text: str) -> int:
    """argparse type: a positive integer count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a count") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a count >= 1, got {text}")
    return value


def _retry_budget(text: str) -> int:
    """argparse type: a retry budget in [0, 16]."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a retry count") from None
    if not 0 <= value <= 16:
        raise argparse.ArgumentTypeError(
            f"retry budget must be in [0, 16], got {text}"
        )
    return value


def _limp(text: str) -> tuple[int, float]:
    """argparse type: a limping-server spec ``INDEX:FACTOR``."""
    parts = text.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(f"expected INDEX:FACTOR, got {text!r}")
    index_text, factor_text = parts
    try:
        index = int(index_text)
        factor = float(factor_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"INDEX must be an integer and FACTOR a number, got {text!r}"
        ) from None
    if index < 0:
        raise argparse.ArgumentTypeError(
            f"limping server INDEX must be >= 0, got {index_text}"
        )
    if not (factor >= 1.0 and math.isfinite(factor)):
        raise argparse.ArgumentTypeError(
            f"limp FACTOR must be finite and >= 1, got {factor_text}"
        )
    return (index, factor)


def _workers(text: str):
    """argparse type: a positive worker count or the literal "auto"."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a worker count") from None
    if value < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1")
    return value


def _cmd_list(_args) -> int:
    suite = DCBench.default()
    print(f"{'workload':<18s}{'group':<15s}info")
    print("-" * 70)
    for entry in suite:
        extra = ""
        impl = entry.impl
        if hasattr(impl, "info"):
            extra = f"{impl.info.input_description} ({impl.info.source})"
        else:
            extra = impl.suite
        print(f"{entry.name:<18s}{entry.group:<15s}{extra}")
    return 0


def _cmd_tables(_args) -> int:
    from repro.core.report import render_table1, render_table2, render_table3

    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_table3())
    return 0


def _cmd_run(args) -> int:
    from repro.cluster import FaultPlan, FaultyCluster, JobFailedError, make_cluster
    from repro.cluster.chaos import aggregate_accounting
    from repro.workloads import workload

    parser = args.parser
    if args.crash_time is not None and not args.crash_node:
        parser.error("--crash-time requires --crash-node")
    if args.recovery is not None and args.master_crash_time is None:
        parser.error("--recovery requires --master-crash-time")
    if args.master_downtime is not None and args.master_crash_time is None:
        parser.error("--master-downtime requires --master-crash-time")

    rack_outages = tuple(args.rack_fail or ())
    tor_failures = tuple(args.tor_fail or ())
    if (rack_outages or tor_failures) and args.racks < 2:
        parser.error("--rack-fail/--tor-fail require --racks >= 2")

    wl = workload(args.workload)
    cluster = make_cluster(args.slaves, block_size=64 * 1024, racks=args.racks)
    known = [node.name for node in cluster.slaves]
    known_racks = list(cluster.topology.racks) if cluster.topology else []
    for flag, specs in (("--rack-fail", rack_outages), ("--tor-fail", tor_failures)):
        for rack, *_rest in specs:
            if rack not in known_racks:
                parser.error(f"{flag} rack {rack!r} is not a rack "
                             f"(have: {', '.join(known_racks)})")
    if args.crash_node:
        if args.crash_node not in known:
            parser.error(f"--crash-node {args.crash_node!r} is not a slave "
                         f"(have: {', '.join(known)})")
    partitions = tuple(args.partition or ())
    for part_node, _, _ in partitions:
        if part_node not in known:
            parser.error(f"--partition node {part_node!r} is not a slave "
                         f"(have: {', '.join(known)})")
    faulty = bool(
        args.faults > 0
        or args.crash_node
        or args.master_crash_time is not None
        or args.corruption_rate > 0
        or args.link_loss > 0
        or partitions
        or rack_outages
        or tor_failures
        or args.scrub
    )
    if faulty:
        node_crashes = ()
        if args.crash_node:
            crash_time = args.crash_time if args.crash_time is not None else 1.0
            node_crashes = ((args.crash_node, crash_time),)
        plan = FaultPlan(
            map_failure_rate=args.faults,
            reduce_failure_rate=args.faults,
            node_crashes=node_crashes,
            master_crash_time=args.master_crash_time,
            master_recovery=args.recovery or "resume",
            master_downtime_s=(
                args.master_downtime if args.master_downtime is not None else 0.75
            ),
            corruption_rate=args.corruption_rate,
            link_loss_rate=args.link_loss,
            partitions=partitions,
            rack_outages=rack_outages,
            tor_failures=tor_failures,
            scrub=args.scrub,
            seed=args.seed,
        )
        cluster = FaultyCluster(cluster, plan)
    try:
        run = wl.run(scale=args.scale, cluster=cluster)
    except JobFailedError as error:
        print(f"{wl.info.name}: {error}", file=sys.stderr)
        return 1
    print(f"{wl.info.name}: {len(run.job_results)} job(s), "
          f"{run.duration_s:.3f}s simulated on {args.slaves} slave(s)")
    for key, value in run.counters.as_dict().items():
        print(f"  {key:<28s}{value}")
    print(f"  {'Disk writes per second':<28s}{run.disk_writes_per_second():.1f}")
    if faulty:
        print("resilience accounting:")
        for key, value in aggregate_accounting(run.timelines).items():
            if isinstance(value, tuple):
                value = ", ".join(value) or "-"
            elif isinstance(value, float):
                value = f"{value:.3f}"
            print(f"  {key:<28s}{value}")
    return 0


def _cmd_characterize(args) -> int:
    from repro.core.characterize import characterize, characterize_suite
    from repro.core.export import to_csv, to_json
    from repro.core.simcache import SimCache

    cache = None if args.no_sim_cache else SimCache()
    suite = DCBench.default()
    if args.workloads:
        chars = [
            characterize(
                suite.entry(name),
                instructions=args.instructions,
                engine=args.engine,
                cache=cache,
            )
            for name in args.workloads
        ]
    else:
        chars = characterize_suite(
            suite,
            instructions=args.instructions,
            engine=args.engine,
            workers=args.workers,
            cache=cache,
        )
    if args.format == "csv":
        print(to_csv(chars), end="")
    elif args.format == "json":
        print(to_json(chars))
    else:
        header = (f"{'workload':<18s}{'ipc':>6s}{'kern':>7s}{'l1i':>7s}{'l2':>7s}"
                  f"{'l3r':>6s}{'dtlb':>7s}{'branch':>8s}")
        print(header)
        print("-" * len(header))
        for c in chars:
            m = c.metrics
            print(f"{c.name:<18s}{m.ipc:>6.2f}{m.kernel_instruction_fraction:>7.1%}"
                  f"{m.l1i_mpki:>7.1f}{m.l2_mpki:>7.1f}"
                  f"{m.l3_hit_ratio_of_l2_misses:>6.0%}{m.dtlb_walks_pki:>7.2f}"
                  f"{m.branch_misprediction_ratio:>8.2%}")
    return 0


def _cmd_bench_sim(args) -> int:
    from repro.perf.bench import run_bench, write_report

    report = run_bench(
        instructions=args.instructions,
        workloads=args.workloads or None,
    )
    path = write_report(report, args.output)
    totals = report.totals()
    header = (f"{'workload':<18s}{'ref s':>8s}{'fast s':>8s}{'warm s':>9s}"
              f"{'engine x':>9s}{'warm x':>9s}")
    print(header)
    print("-" * len(header))
    for row in report.rows:
        print(f"{row.name:<18s}{row.reference_seconds:>8.3f}{row.fast_seconds:>8.3f}"
              f"{row.warm_seconds:>9.4f}{row.engine_speedup:>9.2f}{row.warm_speedup:>9.1f}")
    print("-" * len(header))
    print(f"engine speedup (cold): {totals['engine_speedup_cold']:.2f}x   "
          f"fast path speedup (warm cache): {totals['fastpath_speedup_warm']:.1f}x   "
          f"bit-identical: {totals['bit_identical']}")
    print(f"wrote {path}")
    return 0 if totals["bit_identical"] else 1


def _cmd_bench_cluster(args) -> int:
    from repro.perf.clusterbench import (
        pinned_matrix,
        run_cluster_bench,
        write_cluster_report,
    )

    matrix = pinned_matrix(
        scale_jobs=args.scale_jobs, scale_nodes=args.scale_nodes
    )
    report = run_cluster_bench(matrix=matrix, cache_root=args.cache_root)
    path = write_cluster_report(report, args.output)
    totals = report.totals()
    header = (f"{'mix':<20s}{'jobs':>7s}{'nodes':>6s}{'ref s':>9s}"
              f"{'fast s':>9s}{'warm s':>9s}{'engine x':>9s}{'jobs/s':>9s}")
    print(header)
    print("-" * len(header))
    for row in report.rows:
        ref = (f"{row.reference_seconds:>9.3f}"
               if row.reference_seconds is not None else f"{'-':>9s}")
        speedup = (f"{row.engine_speedup:>9.2f}"
                   if row.engine_speedup is not None else f"{'-':>9s}")
        print(f"{row.name:<20s}{row.jobs:>7d}{row.nodes:>6d}{ref}"
              f"{row.fast_seconds:>9.3f}{row.warm_seconds:>9.4f}{speedup}"
              f"{row.jobs_per_sec_fast:>9.0f}")
    print("-" * len(header))
    print(f"engine speedup (cold): {totals['engine_speedup_cold']:.2f}x   "
          f"fast path speedup (warm cache): "
          f"{totals['fastpath_speedup_warm']:.1f}x   "
          f"bit-identical: {totals['bit_identical']}")
    if "scale_jobs" in totals:
        print(f"scale row: {totals['scale_jobs']} jobs / "
              f"{totals['scale_nodes']} nodes in "
              f"{totals['scale_fast_seconds']:.2f}s cold "
              f"({totals['scale_jobs_per_sec']} jobs/s), "
              f"{totals['scale_warm_seconds']:.3f}s warm")
    print(f"wrote {path}")
    return 0 if totals["bit_identical"] else 1


def _cmd_speedup(_args) -> int:
    from repro.analysis.speedup import speedup_study

    result = speedup_study()
    print(f"{'workload':<16s}" + "".join(f"{n:>10d}" for n in result.slave_counts))
    for name in result.durations:
        print(f"{name:<16s}" + "".join(f"{v:>10.2f}" for v in result.series(name)))
    lo, hi = result.max_spread()
    print(f"spread at {result.slave_counts[-1]} slaves: {lo:.2f} - {hi:.2f}")
    return 0


def _cmd_domains(_args) -> int:
    from repro.analysis.domains import domain_shares

    for share in domain_shares():
        print(f"{share.category:<22s}{share.share:>5.0%}  {', '.join(share.sites)}")
    return 0


def _cmd_colocate(args) -> int:
    from repro.uarch.config import scaled_machine
    from repro.uarch.multicore import MultiCoreSystem

    suite = DCBench.default()
    scale = 8
    specs = [
        suite.entry(name).trace_spec(args.instructions, seed=100 + i).scaled(scale)
        for i, name in enumerate(args.workloads)
    ]
    result = MultiCoreSystem(scaled_machine(scale)).run_colocated(specs)
    print(f"{'workload':<18s}{'solo IPC':>10s}{'co-located IPC':>16s}{'slowdown':>10s}")
    for name in args.workloads:
        solo_ipc = result.solo[name].ipc()
        # effective IPC includes the DRAM-contention correction folded
        # into the slowdown (the raw shared run reports LLC effects only).
        effective = solo_ipc / result.slowdown(name)
        print(f"{name:<18s}{solo_ipc:>10.2f}{effective:>16.2f}"
              f"{result.slowdown(name):>9.2f}x")
    return 0


def _cmd_mix(args) -> int:
    import json

    from repro.cluster import FaultPlan, JobFailedError, Topology
    from repro.cluster.scheduler import make_scheduler
    from repro.cluster.tenancy import (
        WorkloadTrace,
        characterize_colocation,
        default_pools,
        default_queues,
        generate_trace,
        run_mix,
    )
    from repro.core.simcache import MixCache

    parser = args.parser
    if args.crash_time is not None and not args.crash_node:
        parser.error("--crash-time requires --crash-node")
    known = [f"slave{i}" for i in range(1, args.slaves + 1)]
    if args.crash_node and args.crash_node not in known:
        parser.error(f"--crash-node {args.crash_node!r} is not a slave "
                     f"(have: {', '.join(known)})")
    partitions = tuple(args.partition or ())
    for part_node, _, _ in partitions:
        if part_node not in known:
            parser.error(f"--partition node {part_node!r} is not a slave "
                         f"(have: {', '.join(known)})")
    rack_outages = tuple(args.rack_fail or ())
    tor_failures = tuple(args.tor_fail or ())
    if (rack_outages or tor_failures) and args.racks < 2:
        parser.error("--rack-fail/--tor-fail require --racks >= 2")
    known_racks = (
        list(Topology.uniform(known, args.racks).racks) if args.racks > 1 else []
    )
    for flag, specs in (("--rack-fail", rack_outages), ("--tor-fail", tor_failures)):
        for rack, *_rest in specs:
            if rack not in known_racks:
                parser.error(f"{flag} rack {rack!r} is not a rack "
                             f"(have: {', '.join(known_racks)})")

    if args.trace:
        text = _read_file(args.trace, "mix")
        if text is None:
            return 2
        try:
            trace = WorkloadTrace.from_json(text)
        except ValueError as error:
            print(f"mix: {args.trace}: {error}", file=sys.stderr)
            return 2
    else:
        trace = generate_trace(
            seed=args.seed, num_jobs=args.jobs, arrival_rate_per_s=args.rate
        )
    scheduler = make_scheduler(
        args.scheduler,
        pools=default_pools(trace),
        queues=default_queues(trace),
    )
    plan = None
    if args.crash_node or partitions or rack_outages or tor_failures:
        node_crashes = ()
        if args.crash_node:
            crash_time = args.crash_time if args.crash_time is not None else 0.5
            node_crashes = ((args.crash_node, crash_time),)
        plan = FaultPlan(
            node_crashes=node_crashes,
            partitions=partitions,
            rack_outages=rack_outages,
            tor_failures=tor_failures,
            seed=args.seed,
        )
    mix_cache = None if args.no_mix_cache else MixCache()
    try:
        mix = run_mix(
            trace,
            scheduler,
            num_slaves=args.slaves,
            map_slots=args.map_slots,
            reduce_slots=args.reduce_slots,
            plan=plan,
            racks=args.racks,
            engine=args.engine,
            mix_cache=mix_cache,
        )
    except JobFailedError as error:
        print(f"mix: {error}", file=sys.stderr)
        return 1

    colocation = None
    if args.colocate:
        colocation = characterize_colocation(mix, instructions=args.instructions)

    if args.format == "json":
        payload = mix.to_dict()
        if args.colocate:
            payload["colocation"] = colocation.to_dict() if colocation else None
        print(json.dumps(payload, indent=2))
        return 0

    print(f"{args.scheduler} scheduler: {len(trace.jobs)} jobs, "
          f"{args.slaves} slave(s), makespan {mix.makespan_s:.3f}s, "
          f"mean slowdown {mix.mean_slowdown():.2f}x, "
          f"Jain {mix.jain_fairness():.3f}")
    header = (f"{'job':<5s}{'workload':<14s}{'class':<8s}{'user':<8s}"
              f"{'pool':<13s}{'arrive':>8s}{'wait':>8s}{'slowdown':>10s}")
    print(header)
    print("-" * len(header))
    for report in mix.reports:
        tj = report.trace_job
        print(f"{tj.index:<5d}{tj.workload:<14s}{tj.size_class:<8s}"
              f"{tj.user:<8s}{tj.pool:<13s}{tj.arrival_s:>8.3f}"
              f"{report.wait_s:>8.3f}{report.slowdown:>9.2f}x")
    print("per-pool:")
    for name, stats in mix.by_pool().items():
        print(f"  {name:<13s}{stats['jobs']:>3d} job(s)  "
              f"mean wait {stats['mean_wait_s']:.3f}s  "
              f"mean slowdown {stats['mean_slowdown']:.2f}x")
    if plan is not None:
        print("fault accounting:")
        for key, value in mix.outcome.fault_accounting.to_dict().items():
            if isinstance(value, list):
                value = ", ".join(value) or "-"
            elif isinstance(value, float):
                value = f"{value:.3f}"
            print(f"  {key:<27s}{value}")
    if args.colocate:
        if colocation is None:
            print("co-location: no instant with two jobs' tasks on one node")
        else:
            print(f"co-location at t={colocation.time_s:.3f}s on "
                  f"{colocation.node}: {', '.join(colocation.workloads)}")
            for name in colocation.workloads:
                print(f"  {name:<18s}solo IPC {colocation.solo_ipc[name]:.2f}  "
                      f"shared-LLC slowdown {colocation.slowdowns[name]:.2f}x")
    return 0


def _read_file(path: str, command: str) -> str | None:
    """Read a CLI input file, reporting failure in the command's voice."""
    try:
        with open(path, encoding="utf-8") as fh:
            return fh.read()
    except OSError as error:
        print(f"{command}: cannot read {path}: {error}", file=sys.stderr)
        return None


def _emit(text: str, output: str | None, what: str) -> None:
    """Print *text*, or write it to *output* and say what landed where."""
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {what} to {output}")
    else:
        print(text)


def _cmd_record(args) -> int:
    from repro.cluster.scheduler import make_scheduler
    from repro.cluster.tenancy import (
        WorkloadTrace,
        default_pools,
        default_queues,
        generate_trace,
        run_mix,
    )
    from repro.recipes import record_instance

    if args.trace:
        text = _read_file(args.trace, "record")
        if text is None:
            return 2
        try:
            trace = WorkloadTrace.from_json(text)
        except ValueError as error:
            print(f"record: {args.trace}: {error}", file=sys.stderr)
            return 2
    else:
        trace = generate_trace(
            seed=args.seed, num_jobs=args.jobs, arrival_rate_per_s=args.rate
        )
    scheduler = make_scheduler(
        args.scheduler, pools=default_pools(trace), queues=default_queues(trace)
    )
    mix = run_mix(
        trace,
        scheduler,
        num_slaves=args.slaves,
        map_slots=args.map_slots,
        reduce_slots=args.reduce_slots,
    )
    instance = record_instance(mix, name=args.name)
    _emit(instance.to_json(), args.output,
          f"instance ({len(instance.jobs)} jobs)")
    return 0


def _load_instance(path: str, command: str):
    """An Instance from a file holding either an instance or a bare trace."""
    import json

    from repro.cluster.tenancy import WorkloadTrace
    from repro.recipes import Instance, instance_from_trace

    text = _read_file(path, command)
    if text is None:
        return None
    try:
        data = json.loads(text)
        if isinstance(data, dict) and "schema_version" in data:
            return Instance.from_dict(data)
        return instance_from_trace(WorkloadTrace.from_dict(data))
    except (ValueError, TypeError, KeyError) as error:
        print(f"{command}: {path}: {error}", file=sys.stderr)
        return None


def _cmd_fit_recipe(args) -> int:
    from repro.recipes import fit_recipe

    instance = _load_instance(args.instance, "fit-recipe")
    if instance is None:
        return 2
    recipe = fit_recipe(instance, name=args.name)
    _emit(recipe.to_json(), args.output,
          f"recipe ({len(recipe.users)} users, "
          f"repetition {recipe.repetition_rate:.2f})")
    return 0


def _cmd_gen_trace(args) -> int:
    from repro.recipes import Recipe, generate_from_recipe

    text = _read_file(args.recipe, "gen-trace")
    if text is None:
        return 2
    try:
        recipe = Recipe.from_json(text)
    except (ValueError, TypeError, KeyError) as error:
        print(f"gen-trace: {args.recipe}: {error}", file=sys.stderr)
        return 2
    trace = generate_from_recipe(recipe, num_jobs=args.jobs, seed=args.seed)
    _emit(trace.to_json(), args.output,
          f"trace ({len(trace.jobs)} jobs)")
    return 0


def _bucket_rates(text: str) -> tuple[float, ...]:
    """argparse type: comma-separated ascending repeat rates in [0, 1]."""
    try:
        rates = tuple(float(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated rates, got {text!r}"
        ) from None
    if not rates or any(not 0.0 <= r <= 1.0 for r in rates):
        raise argparse.ArgumentTypeError(
            f"rates must be in [0, 1], got {text!r}"
        )
    if list(rates) != sorted(rates):
        raise argparse.ArgumentTypeError(
            f"rates must be ascending, got {text!r}"
        )
    return rates


def _cmd_rep_bench(args) -> int:
    import json

    from repro.recipes import run_repetition_benchmark

    report = run_repetition_benchmark(
        buckets=args.buckets,
        queries_per_bucket=args.queries,
        seed=args.seed,
        scale=args.scale,
        num_slaves=args.slaves,
        use_cache=not args.no_result_cache,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        state = ("on" if report.cache_enabled
                 else "off (--no-result-cache / REPRO_RESULT_CACHE=0)")
        print(f"materialization cache {state}, seed {report.seed}")
        for line in report.summary_lines():
            print(line)
    if not report.contract_holds():
        print("rep-bench: contract violated: hit rate must grow "
              "monotonically with repetitiveness and the most-repetitive "
              "bucket must show a latency win", file=sys.stderr)
        return 1
    return 0


def _fail_stage(text: str) -> tuple[str, int]:
    """argparse type: an injected stage-failure spec ``STAGE:N``."""
    stage, sep, count_text = text.rpartition(":")
    if not sep or not stage:
        raise argparse.ArgumentTypeError(f"expected STAGE:N, got {text!r}")
    try:
        count = int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"N must be an integer, got {text!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"N must be >= 1, got {count_text}")
    return (stage, count)


def _cmd_workflow(args) -> int:
    import json

    from repro.cluster import make_cluster
    from repro.cluster.workflow import (
        WorkflowFaultPlan,
        WorkflowRunner,
        build_workflow,
    )
    from repro.core.export import workflow_to_json

    parser = args.parser
    if args.scale <= 0:
        parser.error(f"--scale must be positive, got {args.scale}")
    if args.slaves < 1:
        parser.error(f"--slaves must be >= 1, got {args.slaves}")
    if args.crash_time is not None and not args.crash_node:
        parser.error("--crash-time requires --crash-node")
    known = [f"slave{i}" for i in range(1, args.slaves + 1)]
    if args.crash_node and args.crash_node not in known:
        parser.error(f"--crash-node {args.crash_node!r} is not a slave "
                     f"(have: {', '.join(known)})")
    partitions = tuple(args.partition or ())
    for part_node, _, _ in partitions:
        if part_node not in known:
            parser.error(f"--partition node {part_node!r} is not a slave "
                         f"(have: {', '.join(known)})")

    workflow = build_workflow(
        args.dag, scale=args.scale, num_slaves=args.slaves
    )
    stages = set(workflow.order)
    destroy = tuple(args.destroy_output or ())
    fail_stages = tuple(args.fail_stage or ())
    for name in destroy:
        if name not in stages:
            parser.error(f"--destroy-output stage {name!r} is not in "
                         f"{args.dag} (have: {', '.join(workflow.order)})")
    for name, _ in fail_stages:
        if name not in stages:
            parser.error(f"--fail-stage stage {name!r} is not in "
                         f"{args.dag} (have: {', '.join(workflow.order)})")
    if args.master_crash_after and args.master_crash_after not in stages:
        parser.error(f"--master-crash-after stage "
                     f"{args.master_crash_after!r} is not in {args.dag} "
                     f"(have: {', '.join(workflow.order)})")

    node_crashes = ()
    if args.crash_node:
        crash_time = args.crash_time if args.crash_time is not None else 1.0
        node_crashes = ((args.crash_node, crash_time),)
    plan = None
    if node_crashes or partitions or destroy or fail_stages \
            or args.master_crash_after:
        plan = WorkflowFaultPlan(
            node_crashes=node_crashes,
            partitions=partitions,
            destroy_outputs=destroy,
            fail_stages=fail_stages,
            master_crash_after=args.master_crash_after,
            seed=args.seed,
        )

    cluster = make_cluster(num_slaves=args.slaves, block_size=256 * 1024)
    runner = WorkflowRunner(cluster, scheduler=args.scheduler, plan=plan)
    result = runner.run(workflow)

    if args.format == "json":
        print(workflow_to_json(result))
    else:
        acct = result.accounting
        print(f"{args.dag} on {args.scheduler}: {result.status}, "
              f"{len(workflow)} stage(s) in {acct.waves} wave(s), "
              f"end {result.end_s:.3f}s")
        header = (f"{'stage':<10s}{'status':<11s}{'execs':>6s}{'retries':>8s}"
                  f"{'recomputes':>11s}{'finished':>10s}")
        print(header)
        print("-" * len(header))
        for report in result.reports:
            finished = (f"{report.finished_s:.3f}"
                        if report.finished_s is not None else "-")
            print(f"{report.stage:<10s}{report.status:<11s}"
                  f"{report.executions:>6d}{report.retries:>8d}"
                  f"{report.recomputes:>11d}{finished:>10s}")
        print("accounting:")
        for key, value in acct.to_dict().items():
            if isinstance(value, float):
                value = f"{value:.3f}"
            print(f"  {key:<26s}{value}")
        print(f"events: {len(result.events)} delivered")

    # Contract: without injected permanent failures the DAG must
    # complete (lineage recovery and retries absorb everything else).
    expect_partial = any(
        n > workflow.stage(stage).policy.max_retries
        for stage, n in fail_stages
    )
    if result.status != "completed" and not expect_partial:
        print(f"run-workflow: contract violation: workflow "
              f"{result.status}", file=sys.stderr)
        return 1
    return 0


def _render_serve_report(label: str, report) -> None:
    pct = report.latency_percentiles
    quantiles = "  ".join(
        f"{name} {value:.3f}s" if value == value else f"{name} -"
        for name, value in pct.items()
    )
    print(f"{label}: {report.offered} offered on {report.servers} server(s)  "
          f"completed {report.completed}  shed {report.shed}  "
          f"killed {report.killed}  retries {report.retries}")
    print(f"  latency   {quantiles}")
    print(f"  goodput   {report.goodput_rps:.2f} req/s  "
          f"utilization {report.utilization:.1%}  "
          f"SLO attainment {report.slo_attainment:.1%}")
    print(f"  {report.procfs.render_overload()}")


def _cmd_serve(args) -> int:
    import json

    from repro.cluster.chaos import run_overload_chaos
    from repro.cluster.serve import ArrivalProcess, ServePolicy, run_service

    if args.compare:
        result = run_overload_chaos(
            seed=args.seed,
            rate_per_s=args.rate,
            num_requests=args.requests,
            servers=args.servers,
            pattern=args.pattern,
            deadline_s=args.deadline,
        )
        if args.format == "json":
            payload = {
                "seed": result.seed,
                "rate_per_s": result.rate_per_s,
                "pattern": result.pattern,
                "deadline_s": result.deadline_s,
                "p99_gap_s": result.p99_gap_s,
                "ordering_holds": result.ordering_holds,
                "protected": result.protected.to_dict(),
                "unprotected": result.unprotected.to_dict(),
            }
            print(json.dumps(payload, indent=2))
        else:
            print(f"overload comparison: {args.pattern} arrivals at "
                  f"{args.rate:g} req/s, deadline {args.deadline:g}s")
            _render_serve_report("protected", result.protected)
            _render_serve_report("unprotected", result.unprotected)
            print(f"p99 gap {result.p99_gap_s:.3f}s  "
                  f"degradation ordering holds: {result.ordering_holds}")
        return 0 if result.ordering_holds else 1

    for index, _ in args.limp or ():
        if index >= args.servers:
            args.parser.error(
                f"--limp server {index} is not in the bank "
                f"(have 0..{args.servers - 1})"
            )
    process = ArrivalProcess(rate_per_s=args.rate, pattern=args.pattern)
    if args.unprotected:
        policy = ServePolicy.unprotected(deadline_s=args.deadline)
    else:
        policy = ServePolicy(
            deadline_s=args.deadline,
            max_queue_depth=args.max_queue,
            shed_rate=args.shed_rate,
            shed_threshold=args.shed_threshold,
            retry_budget=args.retries,
        )
    report = run_service(
        process=process,
        num_requests=args.requests,
        servers=args.servers,
        policy=policy,
        seed=args.seed,
        limping_servers=tuple(args.limp or ()),
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        posture = "unprotected" if args.unprotected else "protected"
        _render_serve_report(posture, report)
    return 0


def _cmd_profile(args) -> int:
    from repro.perf.sampling import profile_trace

    suite = DCBench.default()
    spec = suite.entry(args.workload).trace_spec(args.instructions)
    profile = profile_trace(spec, period=args.period)
    print(profile.render(args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DCBench-style workload characterization (IISWC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the DCBench suite").set_defaults(fn=_cmd_list)
    sub.add_parser("tables", help="print Tables I-III").set_defaults(fn=_cmd_tables)

    run = sub.add_parser("run", help="execute one workload on a simulated cluster")
    run.add_argument("workload")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--slaves", type=int, default=4)
    run.add_argument("--faults", type=_rate, default=0.0, metavar="RATE",
                     help="per-attempt task failure probability (0 disables)")
    run.add_argument("--seed", type=int, default=0,
                     help="fault-injection seed (runs are reproducible)")
    run.add_argument("--crash-node", metavar="NAME",
                     help="crash this slave mid-run (e.g. slave2)")
    run.add_argument("--crash-time", type=_seconds, default=None, metavar="SECONDS",
                     help="simulated time of the --crash-node crash "
                          "(default 1.0; requires --crash-node)")
    run.add_argument("--master-crash-time", type=_seconds, default=None,
                     metavar="SECONDS",
                     help="crash the JobTracker/NameNode at this simulated time")
    run.add_argument("--recovery", choices=("restart", "resume"), default=None,
                     help="what the restarted master does with in-flight jobs: "
                          "re-submit from scratch (restart, stock 1.x) or "
                          "replay the job-history journal (resume, default); "
                          "requires --master-crash-time")
    run.add_argument("--master-downtime", type=_seconds, default=None,
                     metavar="SECONDS",
                     help="control-plane downtime after the master crash "
                          "(default 0.75; requires --master-crash-time)")
    run.add_argument("--corruption-rate", type=_rate, default=0.0, metavar="RATE",
                     help="per-replica at-rest bit-rot probability "
                          "(corrupt replicas are caught by CRC32 checksums "
                          "on read; 0 disables)")
    run.add_argument("--link-loss", type=_link_rate, default=0.0, metavar="RATE",
                     help="per-segment network loss probability in [0, 1); "
                          "lost segments are retransmitted at TCP-like cost")
    run.add_argument("--racks", type=_count, default=1, metavar="N",
                     help="spread the slaves over N uniform racks "
                          "(default 1: flat, the pre-topology model)")
    run.add_argument("--rack-fail", type=_rack_fail, action="append",
                     metavar="RACK:TIME",
                     help="rack power outage: crash every node in RACK at "
                          "TIME seconds (repeatable; needs --racks >= 2)")
    run.add_argument("--tor-fail", type=_tor_fail, action="append",
                     metavar="RACK:START:DURATION",
                     help="ToR-switch failure: partition every node in RACK "
                          "for DURATION seconds from START (repeatable; "
                          "needs --racks >= 2)")
    run.add_argument("--partition", type=_partition, action="append",
                     metavar="NODE:START:DURATION",
                     help="partition this slave off the network for DURATION "
                          "seconds starting at simulated time START "
                          "(repeatable; e.g. slave2:0.5:2.0)")
    run.add_argument("--scrub", action="store_true",
                     help="run the DataBlockScanner scrubber after the job "
                          "(finds and repairs at-rest corruption)")
    run.set_defaults(fn=_cmd_run, parser=run)

    ch = sub.add_parser("characterize", help="Figures 3-12 metrics")
    ch.add_argument("workloads", nargs="*", help="workload names (default: all)")
    ch.add_argument("--instructions", type=int, default=200_000)
    ch.add_argument("--format", choices=("table", "csv", "json"), default="table")
    ch.add_argument("--engine", choices=("fast", "reference"), default="fast",
                    help="simulation engine (bit-identical; fast is the default)")
    ch.add_argument("--workers", type=_workers, default=None, metavar="N|auto",
                    help="parallelize the suite over N processes")
    ch.add_argument("--no-sim-cache", action="store_true",
                    help="bypass the persistent .repro-cache result cache")
    ch.set_defaults(fn=_cmd_characterize)

    bench = sub.add_parser("bench-sim",
                           help="time reference vs fast engine, write BENCH_uarch.json")
    bench.add_argument("workloads", nargs="*", help="workload names (default: all)")
    bench.add_argument("--instructions", type=int, default=200_000)
    bench.add_argument("--output", default="BENCH_uarch.json",
                       help="report path (default: BENCH_uarch.json)")
    bench.set_defaults(fn=_cmd_bench_sim)

    cbench = sub.add_parser(
        "bench-cluster",
        help="time reference vs fast cluster engine, write BENCH_cluster.json",
    )
    cbench.add_argument("--scale-jobs", type=_count,
                        default=100_000, metavar="N",
                        help="jobs in the day-long scale row (default 100000)")
    cbench.add_argument("--scale-nodes", type=_count, default=1000, metavar="N",
                        help="simulated nodes in the scale row (default 1000)")
    cbench.add_argument("--cache-root", default=None, metavar="DIR",
                        help="mix-cache directory for the warm runs "
                             "(default: a throwaway temp dir)")
    cbench.add_argument("--output", default="BENCH_cluster.json",
                        help="report path (default: BENCH_cluster.json)")
    cbench.set_defaults(fn=_cmd_bench_cluster, parser=cbench)

    sub.add_parser("speedup", help="the Figure 2 scaling study").set_defaults(
        fn=_cmd_speedup
    )
    sub.add_parser("domains", help="the Figure 1 domain shares").set_defaults(
        fn=_cmd_domains
    )

    col = sub.add_parser("colocate", help="co-locate workloads on one socket")
    col.add_argument("workloads", nargs="+", help="two or more suite workloads")
    col.add_argument("--instructions", type=int, default=80_000)
    col.set_defaults(fn=_cmd_colocate)

    mix = sub.add_parser("mix", help="multi-tenant trace through a scheduler")
    mix.add_argument("--scheduler", choices=("fifo", "fair", "capacity"),
                     default="fair", help="which Hadoop-1.x scheduler to model")
    mix.add_argument("--jobs", type=int, default=8,
                     help="number of trace jobs to generate")
    mix.add_argument("--rate", type=_seconds, default=2.0, metavar="PER_SECOND",
                     help="Poisson arrival rate (simulated jobs per second)")
    mix.add_argument("--trace", metavar="FILE",
                     help="replay a trace JSON (e.g. from gen-trace or "
                          "WorkloadTrace.to_json) instead of generating one; "
                          "--jobs/--rate/--seed are ignored")
    mix.add_argument("--seed", type=int, default=0,
                     help="trace + fault seed (mixes are reproducible)")
    mix.add_argument("--slaves", type=int, default=4)
    mix.add_argument("--map-slots", type=int, default=8,
                     help="map slots per slave")
    mix.add_argument("--reduce-slots", type=int, default=4,
                     help="reduce slots per slave")
    mix.add_argument("--crash-node", metavar="NAME",
                     help="crash this slave mid-trace (e.g. slave2)")
    mix.add_argument("--crash-time", type=_seconds, default=None,
                     metavar="SECONDS",
                     help="simulated time of the --crash-node crash "
                          "(default 0.5; requires --crash-node)")
    mix.add_argument("--racks", type=_count, default=1, metavar="N",
                     help="spread the slaves over N uniform racks "
                          "(default 1: flat, the pre-topology model)")
    mix.add_argument("--rack-fail", type=_rack_fail, action="append",
                     metavar="RACK:TIME",
                     help="rack power outage: crash every node in RACK at "
                          "TIME seconds (repeatable; needs --racks >= 2)")
    mix.add_argument("--tor-fail", type=_tor_fail, action="append",
                     metavar="RACK:START:DURATION",
                     help="ToR-switch failure: partition every node in RACK "
                          "for DURATION seconds from START (repeatable; "
                          "needs --racks >= 2)")
    mix.add_argument("--partition", type=_partition, action="append",
                     metavar="NODE:START:DURATION",
                     help="partition this slave off the network "
                          "(repeatable; e.g. slave1:0.1:1.0)")
    mix.add_argument("--engine", choices=("fast", "reference"), default="fast",
                     help="cluster dispatch engine (bit-identical by "
                          "contract; fast is the indexed default)")
    mix.add_argument("--no-mix-cache", action="store_true",
                     help="bypass the persistent .repro-cache mix cache "
                          "(the escape hatch; also REPRO_MIX_CACHE=0)")
    mix.add_argument("--colocate", action="store_true",
                     help="characterize the busiest co-located instant "
                          "under a shared LLC")
    mix.add_argument("--instructions", type=int, default=20_000,
                     help="trace length per workload for --colocate")
    mix.add_argument("--format", choices=("table", "json"), default="table")
    mix.set_defaults(fn=_cmd_mix, parser=mix)

    rec = sub.add_parser(
        "record",
        help="run a multi-tenant mix and serialize it as a WfCommons-style "
             "instance JSON",
    )
    rec.add_argument("--trace", metavar="FILE",
                     help="play this trace JSON instead of generating one")
    rec.add_argument("--jobs", type=int, default=8,
                     help="number of jobs in the generated trace")
    rec.add_argument("--rate", type=_positive_rate, default=2.0,
                     metavar="PER_SECOND", help="mean Poisson arrival rate")
    rec.add_argument("--seed", type=int, default=0,
                     help="trace seed (traces are reproducible)")
    rec.add_argument("--scheduler", choices=("fifo", "fair", "capacity"),
                     default="fair")
    rec.add_argument("--slaves", type=int, default=4)
    rec.add_argument("--map-slots", type=int, default=8)
    rec.add_argument("--reduce-slots", type=int, default=4)
    rec.add_argument("--name", default="recorded-mix",
                     help="instance name stored in the JSON")
    rec.add_argument("--output", metavar="FILE",
                     help="write the instance JSON here (default: stdout)")
    rec.set_defaults(fn=_cmd_record, parser=rec)

    fit = sub.add_parser(
        "fit-recipe",
        help="fit a workload recipe (mix, sizes, arrivals, repetitiveness) "
             "from an instance or trace JSON",
    )
    fit.add_argument("instance", help="instance JSON (from record) or "
                                      "trace JSON (from gen-trace)")
    fit.add_argument("--name", default=None,
                     help="recipe name (default: derived from the instance)")
    fit.add_argument("--output", metavar="FILE",
                     help="write the recipe JSON here (default: stdout)")
    fit.set_defaults(fn=_cmd_fit_recipe, parser=fit)

    gen = sub.add_parser(
        "gen-trace",
        help="regenerate a synthetic workload trace of any length from a "
             "fitted recipe",
    )
    gen.add_argument("recipe", help="recipe JSON (from fit-recipe)")
    gen.add_argument("--jobs", type=_count, default=50,
                     help="number of synthetic submissions to generate")
    gen.add_argument("--seed", type=int, default=0,
                     help="generation seed (generation is deterministic)")
    gen.add_argument("--output", metavar="FILE",
                     help="write the trace JSON here (default: stdout)")
    gen.set_defaults(fn=_cmd_gen_trace, parser=gen)

    rep = sub.add_parser(
        "rep-bench",
        help="Redbench-style repetition benchmark: materialization-cache "
             "payoff per repetitiveness bucket",
    )
    rep.add_argument("--buckets", type=_bucket_rates,
                     default=(0.0, 0.25, 0.5, 0.75, 0.95),
                     metavar="R1,R2,...",
                     help="ascending target repeat rates, one bucket each")
    rep.add_argument("--queries", type=_count, default=24,
                     help="queries per bucket")
    rep.add_argument("--seed", type=int, default=0,
                     help="stream seed (streams are reproducible)")
    rep.add_argument("--scale", type=float, default=1.0,
                     help="warehouse table scale")
    rep.add_argument("--slaves", type=int, default=2)
    rep.add_argument("--no-result-cache", action="store_true",
                     help="run with the materialization cache disabled "
                          "(the escape hatch; also REPRO_RESULT_CACHE=0)")
    rep.add_argument("--format", choices=("table", "json"), default="table")
    rep.set_defaults(fn=_cmd_rep_bench, parser=rep)

    serve = sub.add_parser(
        "serve", help="open-loop service traffic through a degrading frontend"
    )
    serve.add_argument("--rate", type=_positive_rate, default=8.0,
                       metavar="PER_SECOND",
                       help="mean open-loop arrival rate (requests per second)")
    serve.add_argument("--requests", type=_count, default=200,
                       help="number of requests to offer")
    serve.add_argument("--servers", type=_count, default=4,
                       help="identical servers in the bank")
    serve.add_argument("--pattern", choices=("poisson", "diurnal", "bursty"),
                       default="poisson", help="arrival process shape")
    serve.add_argument("--seed", type=int, default=0,
                       help="arrival/class/shed seed (runs are reproducible)")
    serve.add_argument("--deadline", type=_positive_rate, default=8.0,
                       metavar="SECONDS", help="per-request deadline (the SLO)")
    serve.add_argument("--max-queue", type=_count, default=64,
                       help="admission-control queue-depth limit")
    serve.add_argument("--shed-rate", type=_rate, default=0.0, metavar="RATE",
                       help="fraction of traffic shed above --shed-threshold")
    serve.add_argument("--shed-threshold", type=_count, default=16,
                       help="queue depth at which shedding starts")
    serve.add_argument("--retries", type=_retry_budget, default=1,
                       help="retry budget for deadline-killed requests [0, 16]")
    serve.add_argument("--limp", type=_limp, action="append",
                       metavar="INDEX:FACTOR",
                       help="limp this server's service time by FACTOR "
                            "(repeatable; e.g. 0:3.0)")
    serve.add_argument("--unprotected", action="store_true",
                       help="disable every degradation control "
                            "(the overload control group)")
    serve.add_argument("--compare", action="store_true",
                       help="run protected vs unprotected on the same "
                            "arrivals; exit 1 if the protected frontend "
                            "does not win on p99")
    serve.add_argument("--format", choices=("table", "json"), default="table")
    serve.set_defaults(fn=_cmd_serve, parser=serve)

    wf = sub.add_parser(
        "run-workflow",
        help="run a multi-stage DAG workflow with lineage-based recovery",
    )
    wf.add_argument("--dag",
                    choices=("hive-chain", "kmeans", "pagerank", "diamond"),
                    default="hive-chain", help="which prebuilt DAG to run")
    wf.add_argument("--scheduler", choices=("fifo", "fair", "capacity"),
                    default="fifo")
    wf.add_argument("--seed", type=int, default=0,
                    help="fault-injection seed (runs are reproducible)")
    wf.add_argument("--scale", type=float, default=0.05,
                    help="input scale of each stage's workload")
    wf.add_argument("--slaves", type=int, default=4)
    wf.add_argument("--crash-node", metavar="NAME",
                    help="crash this slave mid-workflow (e.g. slave2)")
    wf.add_argument("--crash-time", type=_seconds, default=None,
                    metavar="SECONDS",
                    help="workflow-relative time of the --crash-node crash "
                         "(default 1.0; requires --crash-node)")
    wf.add_argument("--partition", type=_partition, action="append",
                    metavar="NODE:START:DURATION",
                    help="partition NODE off the network (repeatable)")
    wf.add_argument("--destroy-output", action="append", metavar="STAGE",
                    help="destroy every replica of STAGE's output right "
                         "after it commits (repeatable; forces a lineage "
                         "recomputation)")
    wf.add_argument("--fail-stage", type=_fail_stage, action="append",
                    metavar="STAGE:N",
                    help="fail STAGE's first N executions at commit "
                         "(repeatable; N past the retry budget cancels "
                         "the downstream cone)")
    wf.add_argument("--master-crash-after", metavar="STAGE",
                    help="crash the JobTracker right after STAGE's wave "
                         "commits; the run resumes from the journal")
    wf.add_argument("--format", choices=("table", "json"), default="table")
    wf.set_defaults(fn=_cmd_workflow, parser=wf)

    prof = sub.add_parser("profile", help="sampled flat profile of a workload")
    prof.add_argument("workload")
    prof.add_argument("--instructions", type=int, default=100_000)
    prof.add_argument("--period", type=int, default=97)
    prof.add_argument("--top", type=int, default=10)
    prof.set_defaults(fn=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0


if __name__ == "__main__":
    sys.exit(main())
