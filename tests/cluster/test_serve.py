"""Tests for open-loop service traffic and graceful degradation.

Pins the PR's acceptance criterion: on a pinned saturating arrival
stream (bursty, ~2.4x the server bank's capacity) the protected
frontend — admission control, load shedding, deadlines — holds its
admitted-traffic p99 under the deadline, while the unprotected frontend
serving the very same arrivals sees its p99 diverge to many multiples
of it.  Everything is seeded, so every assertion here is exact.
"""

import json
import math

import pytest

from repro.__main__ import build_parser, main
from repro.cluster.chaos import run_overload_chaos
from repro.cluster.serve import (
    ArrivalProcess,
    RequestClass,
    ServePolicy,
    default_request_classes,
    percentile,
    request_classes_from_trace,
    run_service,
)
from repro.cluster.tenancy import TraceJob, WorkloadTrace


# -- percentiles ---------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 75.0) == 3.0
        assert percentile(values, 100.0) == 4.0
        # nearest-rank never interpolates: every answer is a sample
        assert percentile(values, 99.0) in values

    def test_empty_is_nan_not_an_error(self):
        assert math.isnan(percentile([], 99.0))

    def test_out_of_range_p_is_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


# -- arrival processes ---------------------------------------------------------


class TestArrivalProcess:
    def test_same_seed_same_arrivals(self):
        process = ArrivalProcess(rate_per_s=10.0, pattern="bursty")
        assert process.arrivals(500, seed=4) == process.arrivals(500, seed=4)

    def test_different_seed_different_arrivals(self):
        process = ArrivalProcess(rate_per_s=10.0)
        assert process.arrivals(500, seed=4) != process.arrivals(500, seed=5)

    @pytest.mark.parametrize("pattern", ["poisson", "diurnal", "bursty"])
    def test_arrivals_are_strictly_increasing(self, pattern):
        process = ArrivalProcess(rate_per_s=10.0, pattern=pattern)
        times = process.arrivals(1000, seed=0)
        assert len(times) == 1000
        assert all(b > a for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("pattern", ["poisson", "diurnal", "bursty"])
    def test_mean_rate_matches_nominal(self, pattern):
        """Thinning keeps the long-run mean at rate_per_s in every pattern."""
        process = ArrivalProcess(rate_per_s=12.0, pattern=pattern)
        times = process.arrivals(8000, seed=3)
        assert 8000 / times[-1] == pytest.approx(12.0, rel=0.1)

    def test_diurnal_rate_oscillates_around_the_mean(self):
        process = ArrivalProcess(
            rate_per_s=10.0, pattern="diurnal", diurnal_period_s=40.0,
            diurnal_amplitude=0.5,
        )
        assert process.rate_at(10.0) == pytest.approx(15.0)  # peak
        assert process.rate_at(30.0) == pytest.approx(5.0)  # trough
        assert process.rate_at(0.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=float("nan"))
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=1.0, pattern="fractal")
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=1.0, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=1.0, burst_fraction=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=1.0).arrivals(-1)


# -- request classes and policies ----------------------------------------------


class TestRequestClassesAndPolicy:
    def test_request_class_validation(self):
        with pytest.raises(ValueError):
            RequestClass("", 0.1)
        with pytest.raises(ValueError):
            RequestClass("x", 0.0)
        with pytest.raises(ValueError):
            RequestClass("x", 0.1, weight=0.0)

    def test_default_mix_is_heavy_tailed(self):
        classes = default_request_classes()
        weights = {c.name: c.weight for c in classes}
        assert weights["point-lookup"] == max(weights.values())
        assert weights["ml-scoring"] == min(weights.values())
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServePolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            ServePolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            ServePolicy(shed_rate=1.5)
        with pytest.raises(ValueError):
            ServePolicy(retry_budget=-1)
        with pytest.raises(ValueError):
            ServePolicy(retry_backoff_factor=0.5)

    def test_unprotected_posture_disables_every_control(self):
        policy = ServePolicy.unprotected(deadline_s=3.0)
        assert not policy.admission_control
        assert not policy.deadline_admission
        assert not policy.kill_at_deadline
        assert policy.shed_rate == 0.0
        assert policy.retry_budget == 0
        # the deadline survives as the SLO yardstick
        assert policy.deadline_s == 3.0

    def test_classes_from_trace_memoize_per_distinct_key(self):
        jobs = (
            TraceJob(0, "Grep", 0.05, 0.0, "ada", "interactive", "small"),
            TraceJob(1, "WordCount", 0.05, 0.1, "bo", "interactive", "small"),
            TraceJob(2, "Grep", 0.05, 0.2, "ada", "interactive", "small"),
        )
        trace = WorkloadTrace(jobs, seed=0, arrival_rate_per_s=0.0)
        classes = request_classes_from_trace(trace, block_size=64 * 1024)
        assert [c.name for c in classes] == ["Grep@0.05", "WordCount@0.05"]
        assert [c.weight for c in classes] == [2.0, 1.0]
        assert all(c.demand_s > 0 for c in classes)


# -- the service loop ----------------------------------------------------------


class TestRunService:
    def test_report_is_deterministic(self):
        a = run_service(num_requests=150, seed=2)
        b = run_service(num_requests=150, seed=2)
        assert a.to_dict() == b.to_dict()
        assert a.records == b.records

    def test_every_offered_request_is_accounted(self):
        report = run_service(num_requests=150, seed=2)
        assert report.offered == 150
        assert report.completed + report.shed + report.killed == 150
        assert 0.0 <= report.slo_attainment <= 1.0
        assert 0.0 <= report.utilization <= 1.0
        assert report.goodput_rps > 0
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["offered"] == 150

    def test_uncontended_run_degrades_nothing(self):
        report = run_service(
            process=ArrivalProcess(rate_per_s=2.0), num_requests=100, seed=0
        )
        assert report.shed == 0
        assert report.killed == 0
        assert report.procfs.requests_shed == 0
        assert report.procfs.deadline_kills == 0
        assert report.slo_attainment == 1.0

    def test_deadline_kills_and_retries_are_counted(self):
        policy = ServePolicy(
            deadline_s=0.6,
            max_queue_depth=10_000,
            deadline_admission=False,
            shed_rate=0.0,
            retry_budget=1,
        )
        report = run_service(
            process=ArrivalProcess(rate_per_s=30.0),
            num_requests=300,
            servers=2,
            policy=policy,
            seed=0,
        )
        assert report.killed > 0
        assert report.retries > 0
        # the counter sees every kill, including ones a retry then saves
        assert report.procfs.deadline_kills >= report.killed

    def test_limping_server_inflates_the_tail(self):
        base = run_service(num_requests=150, seed=1)
        limp = run_service(
            num_requests=150, seed=1, limping_servers=((0, 4.0),)
        )
        assert limp.p99_s > base.p99_s

    def test_validation(self):
        with pytest.raises(ValueError):
            run_service(classes=())
        with pytest.raises(ValueError):
            run_service(servers=0)
        with pytest.raises(ValueError):
            run_service(limping_servers=((9, 2.0),))
        with pytest.raises(ValueError):
            run_service(limping_servers=((0, 0.5),))


# -- the pinned saturation scenario --------------------------------------------


class TestOverloadChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_degradation_ordering_under_saturation(self, seed):
        """Graceful degradation buys a bounded p99; doing nothing does not."""
        result = run_overload_chaos(seed=seed)
        assert result.ordering_holds
        # protected: admitted traffic answers within the deadline
        assert result.protected.p99_s < result.deadline_s
        # unprotected: the open-loop queue drives p99 far past the SLO
        assert result.unprotected.p99_s > 2 * result.deadline_s
        # the price of the bound is shed traffic, and the frontend's
        # /proc counters agree with the report
        assert result.protected.shed > 0
        assert result.protected.procfs.requests_shed == result.protected.shed
        assert result.unprotected.shed == 0
        assert result.unprotected.procfs.requests_shed == 0
        assert (
            result.protected.slo_attainment > result.unprotected.slo_attainment
        )

    def test_comparison_is_deterministic(self):
        a = run_overload_chaos(seed=0)
        b = run_overload_chaos(seed=0)
        assert a.protected.to_dict() == b.protected.to_dict()
        assert a.unprotected.to_dict() == b.unprotected.to_dict()
        assert a.p99_gap_s == b.p99_gap_s


# -- the serve CLI -------------------------------------------------------------


class TestRequestClassMemo:
    """The shadow-run memo must key on the FULL (workload, scale,
    engine-config) tuple — a key that ignored the cluster shape handed
    one shape's solo duration to another."""

    def trace(self) -> WorkloadTrace:
        return WorkloadTrace(
            (TraceJob(0, "Grep", 0.05, 0.0, "ada", "interactive", "small"),),
            seed=0,
            arrival_rate_per_s=0.0,
        )

    def test_memo_hit_skips_the_shadow_run(self, monkeypatch):
        import repro.cluster.serve as serve_mod

        sentinel = 123.456
        key = ("Grep", 0.05, 2, 4, 2, 64 * 1024)
        monkeypatch.setattr(serve_mod, "_SOLO_DEMANDS", {key: sentinel})
        classes = request_classes_from_trace(
            self.trace(), num_slaves=2, map_slots=4, reduce_slots=2,
            block_size=64 * 1024,
        )
        assert classes[0].demand_s == sentinel

    def test_key_includes_the_engine_config(self, monkeypatch):
        import repro.cluster.serve as serve_mod

        monkeypatch.setattr(serve_mod, "_SOLO_DEMANDS", {})
        elephant = WorkloadTrace(
            (TraceJob(0, "Sort", 0.3, 0.0, "bo", "batch", "large"),),
            seed=0,
            arrival_rate_per_s=0.0,
        )
        small = request_classes_from_trace(
            elephant, num_slaves=1, map_slots=1, reduce_slots=1,
            block_size=64 * 1024,
        )
        big = request_classes_from_trace(
            elephant, num_slaves=4, map_slots=8, reduce_slots=4,
            block_size=64 * 1024,
        )
        # two distinct memo entries, one per cluster shape...
        assert len(serve_mod._SOLO_DEMANDS) == 2
        # ...and the starved cluster really is slower, so sharing one
        # entry across shapes would have been wrong, not just untidy.
        assert small[0].demand_s > big[0].demand_s

    def test_scale_still_separates_entries(self, monkeypatch):
        import repro.cluster.serve as serve_mod

        monkeypatch.setattr(serve_mod, "_SOLO_DEMANDS", {})
        jobs = (
            TraceJob(0, "Grep", 0.05, 0.0, "ada", "interactive", "small"),
            TraceJob(1, "Grep", 0.2, 0.1, "ada", "interactive", "small"),
        )
        trace = WorkloadTrace(jobs, seed=0, arrival_rate_per_s=0.0)
        classes = request_classes_from_trace(trace, block_size=64 * 1024)
        assert len(serve_mod._SOLO_DEMANDS) == 2
        assert classes[0].demand_s != classes[1].demand_s


class TestServeCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--rate", "0"],
            ["serve", "--rate", "nan"],
            ["serve", "--requests", "0"],
            ["serve", "--servers", "-1"],
            ["serve", "--retries", "99"],
            ["serve", "--retries", "-1"],
            ["serve", "--shed-rate", "1.5"],
            ["serve", "--limp", "bad"],
            ["serve", "--limp", "0:0.5"],
            ["serve", "--limp", "-1:2.0"],
            ["serve", "--limp", "9:2.0"],  # beyond the server bank
            ["serve", "--pattern", "fractal"],
        ],
    )
    def test_bad_flags_are_rejected(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_serve_runs_and_reports(self, capsys):
        assert main(["serve", "--requests", "60", "--rate", "6"]) == 0
        out = capsys.readouterr().out
        assert "protected: 60 offered" in out
        assert "requests_shed" in out

    def test_serve_json_round_trips(self, capsys):
        assert main(
            ["serve", "--requests", "60", "--rate", "6", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["offered"] == 60
        assert set(payload["latency_percentiles"]) == {
            "p50", "p95", "p99", "p999",
        }

    def test_compare_exit_code_tracks_the_ordering(self, capsys):
        argv = [
            "serve", "--compare", "--pattern", "bursty", "--rate", "40",
            "--requests", "300", "--deadline", "2.0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "degradation ordering holds: True" in out

    def test_parser_lists_serve(self):
        parser = build_parser()
        assert "serve" in parser.format_help()
