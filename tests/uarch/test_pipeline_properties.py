"""Property-based invariants of the core timing model.

These run arbitrary (hypothesis-generated) workload shapes through the
simulator and assert structural truths that must hold for *any* input —
the guard rails that keep calibration work from breaking the model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.config import scaled_machine
from repro.uarch.pipeline import Core
from repro.uarch.trace import MemoryRegion, SyntheticTrace, TraceSpec

MACHINE = scaled_machine(8)


def spec_strategy():
    """Random-but-valid TraceSpecs."""
    region = st.builds(
        MemoryRegion,
        name=st.just("r"),
        size_bytes=st.sampled_from([4096, 1 << 16, 1 << 20, 8 << 20]),
        weight=st.floats(0.1, 2.0),
        pattern=st.sampled_from(["sequential", "strided", "random", "pointer"]),
        stride=st.sampled_from([64, 256, 1024]),
        burst=st.integers(1, 8),
    )
    return st.builds(
        TraceSpec,
        name=st.just("prop"),
        instructions=st.integers(3000, 12_000),
        seed=st.integers(0, 2**31),
        load_fraction=st.floats(0.05, 0.4),
        store_fraction=st.floats(0.0, 0.25),
        fp_fraction=st.floats(0.0, 0.25),
        code_footprint=st.sampled_from([4096, 64 << 10, 512 << 10]),
        branch_regularity=st.floats(0.5, 1.0),
        kernel_fraction=st.floats(0.0, 0.5),
        dep_mean=st.floats(1.5, 10.0),
        dep_density=st.floats(0.0, 0.95),
        regions=st.tuples(region),
    )


class TestPipelineInvariants:
    @given(spec_strategy())
    @settings(max_examples=25, deadline=None)
    def test_cycle_lower_bound(self, spec):
        """Cycles can never beat the retire-width bound."""
        result = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        assert result.cycles >= result.instructions / MACHINE.core.retire_width

    @given(spec_strategy())
    @settings(max_examples=25, deadline=None)
    def test_counters_non_negative_and_consistent(self, spec):
        result = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        assert result.l1i_misses <= result.l1i_accesses
        assert result.l2_misses <= result.l2_accesses
        assert result.l3_misses <= result.l3_accesses
        assert result.branch_mispredictions <= result.branches
        assert result.kernel_instructions <= result.instructions
        assert result.loads + result.stores <= result.instructions
        for value in (
            result.fetch_stall_cycles,
            result.rat_stall_cycles,
            result.rs_full_stall_cycles,
            result.rob_full_stall_cycles,
            result.load_stall_cycles,
            result.store_stall_cycles,
        ):
            assert value >= 0

    @given(spec_strategy())
    @settings(max_examples=20, deadline=None)
    def test_metrics_in_physical_ranges(self, spec):
        result = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        assert 0 < result.ipc() <= MACHINE.core.retire_width
        assert 0.0 <= result.l3_hit_ratio_of_l2_misses() <= 1.0
        assert 0.0 <= result.branch_misprediction_ratio() <= 1.0
        assert 0.0 <= result.kernel_fraction() <= 1.0

    @given(spec_strategy())
    @settings(max_examples=15, deadline=None)
    def test_warmup_never_increases_instruction_count(self, spec):
        full = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        warmed = Core(MACHINE).run(SyntheticTrace(spec), warmup=spec.instructions // 4)
        assert warmed.instructions < full.instructions
        assert warmed.cycles <= full.cycles

    @given(spec_strategy())
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, spec):
        a = Core(MACHINE).run(SyntheticTrace(spec))
        b = Core(MACHINE).run(SyntheticTrace(spec))
        assert a.cycles == b.cycles
        assert a.l2_misses == b.l2_misses
        assert a.branch_mispredictions == b.branch_mispredictions
        assert a.dtlb_walks == b.dtlb_walks

    @given(spec_strategy())
    @settings(max_examples=15, deadline=None)
    def test_stall_breakdown_normalised_or_zero(self, spec):
        result = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        total = sum(result.stall_breakdown().values())
        assert total == pytest.approx(1.0) or total == 0.0

    @given(spec_strategy(), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_bigger_llc_never_more_l3_misses(self, spec, factor):
        from dataclasses import replace

        small = Core(MACHINE).run(SyntheticTrace(spec), warmup=0)
        bigger = replace(
            MACHINE, l3=replace(MACHINE.l3, size_bytes=MACHINE.l3.size_bytes * factor)
        )
        big = Core(bigger).run(SyntheticTrace(spec), warmup=0)
        # Identical access stream, larger LRU cache: misses can only drop
        # (modulo prefetch-fill noise — allow a sliver).
        assert big.l3_misses <= small.l3_misses * 1.02 + 8
