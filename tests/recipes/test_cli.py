"""CLI: the record → fit-recipe → gen-trace → mix --trace pipeline."""

import json

import pytest

from repro.__main__ import main

FAST = ["--slaves", "2", "--map-slots", "4", "--reduce-slots", "2"]


class TestPipeline:
    def test_record_fit_generate_replay(self, tmp_path, capsys):
        inst = tmp_path / "inst.json"
        recipe = tmp_path / "recipe.json"
        trace = tmp_path / "trace.json"

        assert main(["record", "--jobs", "6", *FAST,
                     "--output", str(inst)]) == 0
        data = json.loads(inst.read_text())
        assert data["schema_version"] == "1.0"
        assert len(data["jobs"]) == 6
        assert all(job["finish_s"] is not None for job in data["jobs"])

        assert main(["fit-recipe", str(inst), "--output", str(recipe)]) == 0
        assert json.loads(recipe.read_text())["users"]

        assert main(["gen-trace", str(recipe), "--jobs", "10",
                     "--output", str(trace)]) == 0
        assert len(json.loads(trace.read_text())["jobs"]) == 10

        capsys.readouterr()
        assert main(["mix", "--trace", str(trace), *FAST]) == 0
        out = capsys.readouterr().out
        assert "10 jobs" in out

    def test_record_stdout_is_the_instance_json(self, capsys):
        assert main(["record", "--jobs", "4", *FAST]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["jobs"]) == 4

    def test_fit_recipe_accepts_a_bare_trace(self, tmp_path, capsys):
        inst = tmp_path / "inst.json"
        recipe = tmp_path / "recipe.json"
        trace = tmp_path / "trace.json"
        assert main(["record", "--jobs", "5", *FAST,
                     "--output", str(inst)]) == 0
        assert main(["fit-recipe", str(inst), "--output", str(recipe)]) == 0
        assert main(["gen-trace", str(recipe), "--jobs", "8",
                     "--output", str(trace)]) == 0
        capsys.readouterr()
        assert main(["fit-recipe", str(trace)]) == 0
        refit = json.loads(capsys.readouterr().out)
        assert refit["source_jobs"] == 8

    def test_record_can_replay_a_trace_file(self, tmp_path, capsys):
        recipe = tmp_path / "recipe.json"
        trace = tmp_path / "trace.json"
        inst = tmp_path / "inst.json"
        assert main(["record", "--jobs", "4", *FAST,
                     "--output", str(inst)]) == 0
        assert main(["fit-recipe", str(inst), "--output", str(recipe)]) == 0
        assert main(["gen-trace", str(recipe), "--jobs", "6",
                     "--output", str(trace)]) == 0
        assert main(["record", "--trace", str(trace), *FAST,
                     "--output", str(inst)]) == 0
        assert len(json.loads(inst.read_text())["jobs"]) == 6


class TestRepBenchCli:
    def test_contract_passes_and_prints_buckets(self, capsys):
        assert main(["rep-bench", "--queries", "8"]) == 0
        out = capsys.readouterr().out
        assert "materialization cache on" in out
        assert "95%" in out

    def test_no_result_cache_flag(self, capsys):
        assert main(["rep-bench", "--queries", "4",
                     "--no-result-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache off" in out

    def test_json_format(self, capsys):
        assert main(["rep-bench", "--queries", "4",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["buckets"]) == 5


class TestBadInput:
    def test_missing_files_fail_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["fit-recipe", missing]) == 2
        assert main(["gen-trace", missing]) == 2
        assert main(["mix", "--trace", missing]) == 2
        assert main(["record", "--trace", missing]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err

    def test_invalid_json_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["fit-recipe", str(bad)]) == 2
        assert main(["gen-trace", str(bad)]) == 2
        assert main(["mix", "--trace", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["rep-bench", "--buckets", "0.9,0.1"],      # not ascending
            ["rep-bench", "--buckets", "0.1,1.5"],      # out of range
            ["rep-bench", "--buckets", "abc"],          # not numbers
            ["rep-bench", "--queries", "0"],            # not a count
            ["gen-trace", "x", "--jobs", "0"],          # not a count
        ],
    )
    def test_bad_flags_are_rejected(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
