"""SPEC CPU2006 group proxies.

The paper reports SPEC CPU2006 "averaged into two groups" (SPECINT and
SPECFP) with the first reference inputs.  Each proxy runs a small basket
of kernels representative of the group's dominant codes:

* SPECINT: LZ77-style compression (bzip2/gzip-ish), sparse shortest path
  (mcf/astar-ish), and red-black-tree insertion/search (gcc/omnetpp's
  pointer-heavy allocation behaviour);
* SPECFP: dense Jacobi stencil (leslie3d/zeusmp-ish), N-body step
  (namd-ish), and polynomial evaluation over grids (povray-ish).

Profiles: native optimized binaries — modest instruction footprints
(hundreds of KB but with strong loop locality), almost no kernel time,
*large data* working sets (SPEC's reference inputs run hundreds of MB:
the paper's Figure 11 shows SPEC DTLB walk rates above the data-analysis
workloads), and — for SPECINT — the worst branch behaviour in the paper's
Figure 12 apart from the services.
"""

from __future__ import annotations

import heapq
import random
from typing import Any

import numpy as np

from repro.comparisons.base import ComparisonRun, ComparisonWorkload, register
from repro.uarch.trace import MemoryRegion


def lz77_compress(data: bytes, window: int = 255) -> list[tuple[int, int, int]]:
    """Toy LZ77: (offset, length, next byte) triples."""
    out = []
    i = 0
    n = len(data)
    while i < n:
        best_len = 0
        best_off = 0
        start = max(0, i - window)
        for j in range(start, i):
            length = 0
            while i + length < n and data[j + length] == data[i + length] and length < 255:
                if j + length >= i:
                    break
                length += 1
            if length > best_len:
                best_len, best_off = length, i - j
        # None marks a match that runs to end-of-input (no literal follows).
        nxt = data[i + best_len] if i + best_len < n else None
        out.append((best_off, best_len, nxt))
        i += best_len + 1
    return out


def lz77_decompress(tokens: list[tuple[int, int, int | None]]) -> bytes:
    out = bytearray()
    for offset, length, nxt in tokens:
        if length:
            start = len(out) - offset
            for k in range(length):
                out.append(out[start + k])
        if nxt is not None:
            out.append(nxt)
    return bytes(out)


def dijkstra(adjacency: dict[int, list[tuple[int, int]]], source: int) -> dict[int, int]:
    """Sparse shortest paths (the mcf/astar-style pointer chase)."""
    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, 1 << 62):
            continue
        for neighbor, weight in adjacency.get(node, ()):
            nd = d + weight
            if nd < dist.get(neighbor, 1 << 62):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return dist


@register
class SpecInt(ComparisonWorkload):
    name = "SPECINT"
    suite = "SPEC CPU2006"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        rng = random.Random(21)
        # compression kernel with a self-check
        text = ("the quick brown fox " * max(4, int(40 * scale))).encode()
        tokens = lz77_compress(text)
        assert lz77_decompress(tokens) == text
        ratio = len(text) / (3 * len(tokens))
        # sparse graph shortest path
        n = max(10, int(400 * scale))
        adjacency = {
            i: [(rng.randrange(n), rng.randint(1, 9)) for _ in range(4)] for i in range(n)
        }
        dist = dijkstra(adjacency, 0)
        return ComparisonRun(
            self.name,
            None,
            {"compression_ratio": ratio, "reachable": float(len(dist)), "nodes": float(n)},
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.28,
            "store_fraction": 0.11,
            "fp_fraction": 0.0,
            "mul_fraction": 0.01,
            # optimized native code, bigger than HPCC kernels but with a
            # hot loop nest that caches well
            "code_footprint": 180 * 1024,
            "hot_code_fraction": 0.25,
            "hot_code_weight": 0.95,
            "call_fraction": 0.08,
            "indirect_fraction": 0.02,
            "mean_block_len": 6.0,
            "regions": (
                # mcf-style pointer chasing over a big arena
                MemoryRegion("graph-arena", 16 << 20, 0.35, "pointer", burst=2,
                             hot_fraction=0.015, hot_weight=0.93),
                MemoryRegion("match-window", 1 << 20, 0.5, "random", burst=4,
                             hot_fraction=0.3, hot_weight=0.9),
            ),
            "kernel_fraction": 0.01,
            # data-dependent branches everywhere (compression matches,
            # heap compares): SPECINT's Figure 12 bar is the tallest of
            # the non-service workloads
            "loop_branch_fraction": 0.35,
            "mean_trip_count": 10.0,
            "branch_regularity": 0.88,
            "taken_bias": 0.5,
            "dep_mean": 2.8,
            "dep_density": 0.72,
            "partial_register_ratio": 0.05,
        }


@register
class SpecFp(ComparisonWorkload):
    name = "SPECFP"
    suite = "SPEC CPU2006"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        n = max(8, int(64 * scale))
        # Jacobi stencil until residual drops
        grid = np.zeros((n, n))
        grid[0, :] = 1.0
        for _ in range(50):
            interior = 0.25 * (
                grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
            )
            grid[1:-1, 1:-1] = interior
        # N-body step (direct sum)
        rng = np.random.default_rng(22)
        bodies = max(4, int(40 * scale))
        pos = rng.standard_normal((bodies, 3))
        mass = np.abs(rng.standard_normal(bodies)) + 0.1
        acc = np.zeros_like(pos)
        for i in range(bodies):
            delta = pos - pos[i]
            r2 = (delta**2).sum(axis=1) + 1e-9
            acc[i] = (delta * (mass / r2**1.5)[:, None]).sum(axis=0)
        return ComparisonRun(
            self.name,
            None,
            {
                "stencil_mean": float(grid.mean()),
                "acc_norm": float(np.linalg.norm(acc)),
                "grid": float(n),
            },
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.30,
            "store_fraction": 0.09,
            "fp_fraction": 0.34,
            "mul_fraction": 0.02,
            "div_fraction": 0.004,
            "code_footprint": 120 * 1024,
            "hot_code_fraction": 0.3,
            "hot_code_weight": 0.96,
            "call_fraction": 0.05,
            "indirect_fraction": 0.0,
            "mean_block_len": 12.0,
            "regions": (
                # stencil sweeps large grids with neighbour reuse
                MemoryRegion("grid", 64 << 20, 0.15, "sequential"),
                MemoryRegion("grid-prev-row", 2 << 20, 0.05, "strided", stride=256),
                MemoryRegion("particles", 4 << 20, 0.25, "random", burst=6,
                             hot_fraction=0.2, hot_weight=0.9),
            ),
            "kernel_fraction": 0.005,
            "loop_branch_fraction": 0.85,
            "mean_trip_count": 64.0,
            "branch_regularity": 0.99,
            "dep_mean": 4.5,
            "dep_density": 0.55,
            "partial_register_ratio": 0.03,
        }
