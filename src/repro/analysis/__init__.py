"""Experiment analyses that sit above single-workload characterization.

* :mod:`repro.analysis.domains` — the Figure 1 application-domain study
  (classifying the top sites by page views and daily visitors);
* :mod:`repro.analysis.speedup` — the Figure 2 scaling study (1/4/8
  slaves, eleven workloads);
* :mod:`repro.analysis.summary` — programmatic checks of the paper's five
  key findings over a set of characterizations.
"""

from repro.analysis.domains import (
    TOP_SITES,
    DomainShare,
    classify_sites,
    domain_shares,
    top_domains,
)
from repro.analysis.speedup import SpeedupResult, speedup_study
from repro.analysis.summary import Findings, evaluate_findings

__all__ = [
    "TOP_SITES",
    "DomainShare",
    "classify_sites",
    "domain_shares",
    "top_domains",
    "SpeedupResult",
    "speedup_study",
    "Findings",
    "evaluate_findings",
]
