"""Figure 5: disk writes per second of the data-analysis workloads.

Paper shape: Sort has by far the highest disk-write frequency (its input
size equals its output size and its compute is trivial); every other
workload sits well below.
"""

from conftest import run_once

from repro.cluster import make_cluster
from repro.workloads import all_workloads


def test_fig05(benchmark):
    def harness():
        rates = {}
        for wl in all_workloads():
            cluster = make_cluster(4, block_size=64 * 1024)
            run = wl.run(scale=1.0, cluster=cluster)
            rates[wl.info.name] = run.disk_writes_per_second()
        return rates

    rates = run_once(benchmark, harness)
    print()
    print("Figure 5: Disk writes per second (4-slave cluster)")
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        print(f"{name:<16s}{rate:>10.1f}")

    sort = rates.pop("Sort")
    # Sort dominates (paper: ~300/s versus ≤ ~100/s for the rest).
    assert sort > 2 * max(rates.values())
    assert all(rate >= 0 for rate in rates.values())
    # The I/O-light workloads write at least *something* (task logs).
    assert min(rates.values()) > 0
