"""Perf sessions: program events, run, read counts.

:class:`PerfSession` is the analogue of ``perf stat -e <events> -- cmd``:
you list the symbolic events to monitor, hand it a trace (or spec) and a
machine, and read back a :class:`PerfReading` mapping event names to
counts, plus the derived per-kilo-instruction rates the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.events import EVENT_CATALOG, lookup_event
from repro.uarch.config import MachineConfig, XEON_E5645
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace, TraceSpec


@dataclass
class PerfReading:
    """Counts from one measured run."""

    workload: str
    counts: dict[str, int] = field(default_factory=dict)
    result: SimulationResult | None = None

    def __getitem__(self, event: str) -> int:
        return self.counts[event]

    def per_kilo_instructions(self, event: str) -> float:
        """Rate of *event* per thousand retired instructions."""
        instructions = self.counts.get("instructions", 0)
        if not instructions:
            return 0.0
        return 1000.0 * self.counts[event] / instructions

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.counts.get(denominator, 0)
        return self.counts[numerator] / denom if denom else 0.0


class PerfSession:
    """Measure a set of PMU events over one workload run.

    ``events=None`` programs the full catalogue (the paper collects ~20
    events, well past the 4 physical counters; real ``perf`` multiplexes —
    the simulator simply exposes everything).
    """

    def __init__(
        self,
        events: list[str] | None = None,
        machine: MachineConfig = XEON_E5645,
    ) -> None:
        names = list(EVENT_CATALOG) if events is None else list(events)
        self.events = [lookup_event(name) for name in names]
        self.machine = machine

    def measure(self, trace_or_spec, warmup: int | None = None) -> PerfReading:
        """Run *trace_or_spec* on a fresh core and read the counters."""
        if isinstance(trace_or_spec, TraceSpec):
            trace = SyntheticTrace(trace_or_spec)
        else:
            trace = trace_or_spec
        result = Core(self.machine).run(trace, warmup=warmup)
        counts = {event.name: event.read(result) for event in self.events}
        # `instructions` is needed for the per-Ki rates even if the caller
        # did not ask for it explicitly.
        counts.setdefault("instructions", result.instructions)
        return PerfReading(workload=result.name, counts=counts, result=result)

    def measure_result(self, result: SimulationResult) -> PerfReading:
        """Read the programmed events out of an existing simulation result."""
        counts = {event.name: event.read(result) for event in self.events}
        counts.setdefault("instructions", result.instructions)
        return PerfReading(workload=result.name, counts=counts, result=result)
