"""Job definition: configuration plus user functions.

A :class:`MapReduceJob` bundles the mapper/reducer/combiner generators and
a :class:`JobConf`.  The cost-model fields on the conf translate measured
record/byte counts into normalised CPU seconds for the cluster timing
model; workloads set them to reflect their per-record compute intensity
(Sort is nearly free per record, SVM is expensive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.mapreduce.partitioner import Partitioner, hash_partitioner

Mapper = Callable[[object, object], Iterator[tuple[object, object]]]
Reducer = Callable[[object, list], Iterator[tuple[object, object]]]
Combiner = Callable[[object, list], Iterator[tuple[object, object]]]


@dataclass(frozen=True)
class JobConf:
    """Configuration of one job."""

    name: str
    num_reduces: int = 4
    sort_keys: bool = True
    #: CPU cost model (normalised seconds); converts measured counts into
    #: task CPU time for the cluster simulation.
    map_cost_per_record: float = 2e-6
    map_cost_per_byte: float = 1e-8
    reduce_cost_per_record: float = 2e-6
    reduce_cost_per_byte: float = 1e-8
    #: Hadoop's mapred.compress.map.output: spill + shuffle bytes shrink
    #: by compression_ratio at extra CPU cost per spilled/shuffled byte.
    compress_map_output: bool = False
    compression_ratio: float = 0.4
    compression_cost_per_byte: float = 6e-9

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.num_reduces < 0:
            raise ValueError("num_reduces must be non-negative")
        for cost_field in (
            "map_cost_per_record",
            "map_cost_per_byte",
            "reduce_cost_per_record",
            "reduce_cost_per_byte",
            "compression_cost_per_byte",
        ):
            if getattr(self, cost_field) < 0:
                raise ValueError(f"{cost_field} must be non-negative")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")


@dataclass
class MapReduceJob:
    """A runnable job: functions + configuration.

    ``num_reduces == 0`` makes a map-only job (the outputs of the mappers
    are the job output, as with Hadoop's identity-less reduce-free jobs).
    """

    mapper: Mapper
    reducer: Reducer | None
    conf: JobConf
    combiner: Combiner | None = None
    partitioner: Partitioner = field(default=hash_partitioner)

    def __post_init__(self) -> None:
        if self.conf.num_reduces > 0 and self.reducer is None:
            raise ValueError("a job with reducers needs a reducer function")
