"""Tests for the synthetic data generators."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import datagen


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = datagen.make_vocabulary(500)
        assert len(vocab) == len(set(vocab)) == 500

    def test_deterministic(self):
        assert datagen.make_vocabulary(100, seed=3) == datagen.make_vocabulary(100, seed=3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            datagen.make_vocabulary(0)


class TestDocuments:
    def test_count_and_ids(self):
        docs = datagen.generate_documents(50)
        assert len(docs) == 50
        assert len({doc_id for doc_id, _ in docs}) == 50

    def test_zipf_skew(self):
        docs = datagen.generate_documents(200, vocabulary_size=500)
        counts = collections.Counter(w for _, text in docs for w in text.split())
        frequencies = sorted(counts.values(), reverse=True)
        # Zipf: the head dominates the tail.
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]

    def test_deterministic(self):
        assert datagen.generate_documents(10) == datagen.generate_documents(10)


class TestSortRecords:
    def test_shape(self):
        records = datagen.generate_sort_records(100, payload_bytes=20)
        assert len(records) == 100
        for key, payload in records:
            assert len(key) == 10
            assert len(payload) == 20

    def test_keys_mostly_distinct(self):
        records = datagen.generate_sort_records(1000)
        assert len({k for k, _ in records}) > 990


class TestLabeledDocuments:
    def test_labels_balanced(self):
        docs = datagen.generate_labeled_documents(100)
        counts = collections.Counter(label for _, (label, _) in docs)
        assert set(counts) == {"spam", "ham"}
        assert abs(counts["spam"] - counts["ham"]) <= 1

    def test_class_signal_present(self):
        docs = datagen.generate_labeled_documents(200, class_signal=0.4)
        words_by_class = collections.defaultdict(set)
        for _, (label, text) in docs:
            words_by_class[label].update(text.split())
        only_spam = words_by_class["spam"] - words_by_class["ham"]
        only_ham = words_by_class["ham"] - words_by_class["spam"]
        assert len(only_spam) > 20 and len(only_ham) > 20


class TestClusterPoints:
    def test_counts_and_dims(self):
        points, centers = datagen.generate_cluster_points(100, num_clusters=4, dims=3)
        assert len(points) == 100
        assert len(centers) == 4
        assert all(len(p) == 3 for _, p in points)

    def test_points_near_their_centers(self):
        points, centers = datagen.generate_cluster_points(
            200, num_clusters=3, dims=4, spread=0.1
        )
        for i, (pid, point) in enumerate(points):
            center = centers[i % 3]
            dist = sum((a - b) ** 2 for a, b in zip(point, center)) ** 0.5
            assert dist < 2.0


class TestRatings:
    def test_user_item_bounds(self):
        ratings = datagen.generate_ratings(num_users=50, num_items=30)
        for user, (item, rating) in ratings:
            assert 0 <= user < 50
            assert 0 <= item < 30
            assert 1.0 <= rating <= 5.0

    def test_no_duplicate_user_item_pairs(self):
        ratings = datagen.generate_ratings(num_users=40, num_items=20)
        pairs = [(u, i) for u, (i, _) in ratings]
        assert len(pairs) == len(set(pairs))


class TestWebGraph:
    def test_shape(self):
        graph = datagen.generate_web_graph(100)
        assert len(graph) == 100
        for page, links in graph:
            assert page not in links
            assert all(0 <= t < 100 for t in links)

    def test_preferential_attachment_skew(self):
        graph = datagen.generate_web_graph(300)
        indegree = collections.Counter()
        for _, links in graph:
            for t in links:
                indegree[t] += 1
        degrees = sorted(indegree.values(), reverse=True)
        assert degrees[0] > 5 * max(1, degrees[len(degrees) // 2])


class TestSegmentedCorpus:
    def test_tags_align_with_chars(self):
        corpus = datagen.generate_segmented_corpus(50)
        for _, (chars, tags) in corpus:
            assert len(tags) == len(chars) or len(tags) <= len(chars) * 2
            assert set(tags) <= set("BMES")

    def test_tag_structure_valid(self):
        corpus = datagen.generate_segmented_corpus(50)
        for _, (_chars, tags) in corpus:
            previous = None
            for tag in tags:
                if tag == "M" or tag == "E":
                    assert previous in ("B", "M")
                else:
                    assert previous in (None, "E", "S")
                previous = tag
            assert previous in ("E", "S")


class TestWarehouseTables:
    def test_rankings_shape(self):
        rows = datagen.generate_rankings(100)
        assert len(rows) == 100
        for url, rank, duration in rows:
            assert url.startswith("url")
            assert 0 <= rank <= 1000
            assert 1 <= duration < 100

    def test_uservisits_reference_pages(self):
        rows = datagen.generate_uservisits(500, 100)
        for ip, url, revenue, word in rows:
            assert 0 <= int(url[3:]) < 100
            assert revenue >= 0
            assert ip.count(".") == 3

    def test_visit_popularity_skewed(self):
        rows = datagen.generate_uservisits(2000, 200)
        counts = collections.Counter(url for _, url, _, _ in rows)
        top = counts.most_common(20)
        assert sum(c for _, c in top) > 0.3 * len(rows)

    @given(st.integers(1, 50))
    @settings(max_examples=10, deadline=None)
    def test_generators_deterministic(self, n):
        assert datagen.generate_rankings(n) == datagen.generate_rankings(n)
        assert datagen.generate_web_graph(n) == datagen.generate_web_graph(n)
