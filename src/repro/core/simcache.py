"""Persistent content-addressed cache for simulation results.

Characterization work is heavily repetitive: the same (TraceSpec,
MachineConfig, warmup) triples are simulated over and over across figure
benchmarks, CLI invocations and CI jobs, and the simulator is fully
deterministic.  This module memoises :class:`~repro.uarch.pipeline.
SimulationResult`s on disk, content-addressed by a stable hash of

* the trace spec (every field, via ``dataclasses.asdict``),
* the machine config (every field, including nested cache/TLB/core configs),
* the warmup override, and
* the **code version** — a digest of the source bytes of every module that
  can influence a counter value, so any change to the timing model
  invalidates the whole cache automatically.

The engine (fast vs reference) is deliberately *not* part of the key: the
two engines are bit-identical by contract (see ``repro.perf.fastpath``),
so their results are interchangeable.  Cache hits are required to be
bit-identical to cold runs — ``tests/core/test_simcache.py`` round-trips
results through the store and compares every field.

Layout: one JSON file per result under ``.repro-cache/sim/<key[:2]>/<key>.json``
(the two-level fan-out keeps directories small).  Writes are atomic
(``os.replace`` of a same-directory temp file) so concurrent workers and
interrupted runs can never publish a torn file.

Escape hatches: ``REPRO_SIM_CACHE=0`` (or ``--no-sim-cache`` on the CLI and
pytest runs) disables the cache; ``REPRO_CACHE_DIR`` relocates it;
:func:`clear` invalidates it explicitly.

The cluster layer gets the same treatment one level up: a **mix-level
cache** under ``.repro-cache/mix/`` memoises whole
:class:`~repro.cluster.scheduler.MixOutcome` objects, content-addressed
by the submitted trace, the scheduler's :meth:`describe` fingerprint,
the fault plan, the cluster geometry/topology/device state, the
observability mode, the run engine, and a digest of every cluster-layer
source module (:func:`cluster_code_version`).  The fast/reference
*dispatch* engine is again excluded from the key — the two are
bit-identical by contract (``repro.perf.clusterpath``) — while anything
that changes the outcome's bytes is included.  ``REPRO_MIX_CACHE=0``
(or ``--no-mix-cache``) disables it independently of the uarch cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace, TraceSpec

#: Bump when the on-disk entry format (not the simulated values) changes.
SCHEMA_VERSION = 1

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Modules whose source bytes define the simulated counter values.  Any
#: edit to one of these produces a new code version and a cold cache.
_VERSIONED_MODULES = (
    "repro.uarch.isa",
    "repro.uarch.config",
    "repro.uarch.trace",
    "repro.uarch.caches",
    "repro.uarch.tlb",
    "repro.uarch.branch",
    "repro.uarch.frontend",
    "repro.uarch.backend",
    "repro.uarch.pipeline",
    "repro.perf.fastpath",
)

_code_version: str | None = None


def code_version() -> str:
    """Digest of the timing-model source files (cached per process)."""
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        import importlib

        for module_name in _VERSIONED_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            digest.update(module_name.encode())
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cache_enabled(default: bool = True) -> bool:
    """Honour the ``REPRO_SIM_CACHE`` escape hatch (0/false/off disable)."""
    value = os.environ.get("REPRO_SIM_CACHE")
    if value is None:
        return default
    return value.strip().lower() not in {"0", "false", "off", "no", ""}


def cache_dir(root: str | os.PathLike | None = None) -> Path:
    """Resolve the cache root (arg > ``REPRO_CACHE_DIR`` > default)."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return Path(root)


def sim_cache_key(
    spec: TraceSpec,
    machine: MachineConfig,
    warmup: int | None = None,
) -> str:
    """Stable content hash for one simulation's inputs.

    Every field of the spec and machine participates, so *any* change —
    instruction budget, a cache geometry, the predictor kind, a region
    footprint — produces a different key.  The digest also folds in the
    code version and schema version.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "warmup": warmup,
        "spec": dataclasses.asdict(spec),
        "machine": dataclasses.asdict(machine),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _entry_path(root: Path, key: str) -> Path:
    return root / "sim" / key[:2] / f"{key}.json"


def load_result(key: str, root: str | os.PathLike | None = None) -> SimulationResult | None:
    """Fetch a cached result by key, or None on miss/corruption."""
    path = _entry_path(cache_dir(root), key)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    data = payload.get("result")
    if not isinstance(data, dict):
        return None
    try:
        return SimulationResult(**data)
    except TypeError:
        # Field mismatch from an old entry written before a schema bump.
        return None


def store_result(
    key: str, result: SimulationResult, root: str | os.PathLike | None = None
) -> None:
    """Persist *result* under *key* atomically (tmp file + rename)."""
    path = _entry_path(cache_dir(root), key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "result": dataclasses.asdict(result),
    }
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def clear(root: str | os.PathLike | None = None) -> int:
    """Explicit invalidation: delete every cached entry; return the count."""
    sim_root = cache_dir(root) / "sim"
    if not sim_root.exists():
        return 0
    count = sum(1 for _ in sim_root.rglob("*.json"))
    shutil.rmtree(sim_root)
    return count


class SimCache:
    """One cache handle with hit/miss accounting.

    ``simulate`` is the memoised twin of building a ``Core`` and running a
    trace: on a hit the stored result is returned without simulating; on a
    miss the chosen engine runs and the result is persisted.  Both paths
    return bit-identical values.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.root = cache_dir(root)
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0

    def simulate(
        self,
        spec: TraceSpec,
        machine: MachineConfig,
        warmup: int | None = None,
        engine: str = "fast",
    ) -> SimulationResult:
        key = None
        if self.enabled:
            key = sim_cache_key(spec, machine, warmup)
            cached = load_result(key, self.root)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        if engine == "fast":
            from repro.perf.fastpath import run_fast

            result = run_fast(Core(machine), SyntheticTrace(spec), warmup=warmup)
        else:
            result = Core(machine).run(SyntheticTrace(spec), warmup=warmup)
        if key is not None:
            store_result(key, result, self.root)
        return result

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# -- mix-level cache (cluster layer) ----------------------------------------

#: Modules whose source bytes define a mix's outcome.  Any edit to one of
#: these produces a new cluster code version and a cold mix cache.
_CLUSTER_VERSIONED_MODULES = (
    "repro.cluster.attempts",
    "repro.cluster.cluster",
    "repro.cluster.disk",
    "repro.cluster.eventbus",
    "repro.cluster.faults",
    "repro.cluster.hdfs",
    "repro.cluster.journal",
    "repro.cluster.network",
    "repro.cluster.node",
    "repro.cluster.scheduler",
    "repro.cluster.tenancy",
    "repro.cluster.topology",
    "repro.perf.clusterpath",
    "repro.perf.procfs",
)

_cluster_code_version: str | None = None


def cluster_code_version() -> str:
    """Digest of the cluster-layer source files (cached per process)."""
    global _cluster_code_version
    if _cluster_code_version is None:
        digest = hashlib.sha256()
        import importlib

        for module_name in _CLUSTER_VERSIONED_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            digest.update(module_name.encode())
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _cluster_code_version = digest.hexdigest()[:16]
    return _cluster_code_version


def mix_cache_enabled(default: bool = True) -> bool:
    """Honour the ``REPRO_MIX_CACHE`` escape hatch (0/false/off disable)."""
    value = os.environ.get("REPRO_MIX_CACHE")
    if value is None:
        return default
    return value.strip().lower() not in {"0", "false", "off", "no", ""}


def _cluster_fingerprint(cluster) -> dict:
    """Everything about the cluster that can change a mix's outcome.

    Device *state* (slot frees, busy-until times, the clock) is included
    alongside geometry, so a warm hit is legal even for clusters that
    are not pristine — reuse with different prior wear simply misses.
    """
    network = cluster.network
    return {
        "block_size": cluster.hdfs.block_size,
        "replication": cluster.hdfs.replication,
        "bytes_per_checksum": cluster.hdfs.bytes_per_checksum,
        "locality_wait_s": cluster.locality_wait_s,
        "rack_locality_wait_s": cluster.rack_locality_wait_s,
        "journaling": cluster.journal is not None,
        "clock": cluster.clock,
        "topology": (
            [list(pair) for pair in cluster.topology.assignments]
            if cluster.topology is not None
            else None
        ),
        "network": [
            network.latency_s,
            network.fabric_bandwidth,
            network.core_bandwidth,
            network.fabric_busy_until,
            network.core_busy_until,
            sorted(network.uplink_busy_until.items()),
        ],
        "slaves": [
            [
                node.name,
                node.map_slots,
                node.reduce_slots,
                node.cpu_speed,
                node.slow_factor,
                node.disk.read_bw,
                node.disk.write_bw,
                node.disk.seek_s,
                node.nic.bandwidth,
                list(node.map_slot_free),
                list(node.reduce_slot_free),
                node.disk.busy_until,
                node.disk._pending_write_bytes,
                node.nic.tx_busy_until,
                node.nic.rx_busy_until,
            ]
            for node in cluster.slaves
        ],
    }


def _submissions_fingerprint(jobs) -> list:
    """The submitted trace: job identity, arrival, dependency edges and
    every task's resource demands, in submission (seq) order."""
    subs = []
    for job in jobs:
        work = job.work
        subs.append(
            [
                job.job_id,
                work.name,
                job.user,
                job.pool,
                job.arrival_s,
                job.depends_on.job_id if job.depends_on is not None else None,
                [
                    [
                        m.input_bytes,
                        m.cpu_seconds,
                        m.output_bytes,
                        list(m.preferred_nodes),
                        list(m.split) if m.split is not None else None,
                    ]
                    for m in work.maps
                ],
                [
                    [r.shuffle_bytes, r.cpu_seconds, r.output_bytes]
                    for r in work.reduces
                ],
            ]
        )
    return subs


def mix_cache_key(multi, run_engine: str = "events") -> str:
    """Stable content hash for one mix execution's inputs.

    *multi* is a fully-submitted :class:`MultiJobCluster` (either
    dispatch engine — the fast path is bit-identical by contract, so the
    engine class is deliberately not part of the key).  The run engine
    ("events" vs "legacy") **is** keyed: it decides whether the outcome
    carries an event log.  So is the observability mode, which decides
    which per-node rates a timeline reports.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "code": cluster_code_version(),
        "run_engine": run_engine,
        "observability": multi.observability,
        "scheduler": multi.scheduler.describe(),
        "plan": dataclasses.asdict(multi.plan) if multi.plan is not None else None,
        "cluster": _cluster_fingerprint(multi.cluster),
        "jobs": _submissions_fingerprint(multi.jobs),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _timeline_to_payload(timeline) -> list | None:
    if timeline is None:
        return None
    return [
        timeline.job_name,
        timeline.start_s,
        timeline.map_phase_end_s,
        timeline.end_s,
        timeline.map_tasks,
        timeline.reduce_tasks,
        sorted(timeline.disk_writes_per_second.items()),
        timeline.network_bytes,
        timeline.maps_node_local,
        timeline.maps_rack_local,
        timeline.maps_off_rack,
        sorted(timeline.node_racks.items()),
    ]


def _timeline_from_payload(data):
    if data is None:
        return None
    from repro.cluster.cluster import JobTimeline

    return JobTimeline(
        job_name=data[0],
        start_s=data[1],
        map_phase_end_s=data[2],
        end_s=data[3],
        map_tasks=data[4],
        reduce_tasks=data[5],
        disk_writes_per_second={name: rate for name, rate in data[6]},
        network_bytes=data[7],
        maps_node_local=data[8],
        maps_rack_local=data[9],
        maps_off_rack=data[10],
        node_racks={name: rack for name, rack in data[11]},
    )


def mix_outcome_payload(outcome) -> dict:
    """Compact list-based serialization — ``dataclasses.asdict`` walks
    every nested field generically and is far too slow at 100k reports.

    Also the canonical *comparison form* for bit-identity checks: every
    outcome field is represented, dicts are key-normalized, and
    :class:`Event` rows carry all fields (the dataclass's own ``__eq__``
    compares only ``(priority, seq)``)."""
    return {
        "scheduler": outcome.scheduler,
        "end_s": outcome.end_s,
        "preemptions": outcome.preemptions,
        "preemption_wasted_s": outcome.preemption_wasted_s,
        "fenced_attempts": outcome.fenced_attempts,
        "failed_jobs": list(outcome.failed_jobs),
        "cancelled_jobs": list(outcome.cancelled_jobs),
        "reports": [
            [
                r.job_id,
                r.name,
                r.user,
                r.pool,
                r.arrival_s,
                r.first_launch_s,
                r.finished_s,
                r.preempted,
                _timeline_to_payload(r.timeline),
                r.status,
            ]
            for r in outcome.reports
        ],
        "task_intervals": [
            [iv.kind, iv.job_id, iv.node, iv.start_s, iv.end_s]
            for iv in outcome.task_intervals
        ],
        "fault_accounting": (
            dataclasses.asdict(outcome.fault_accounting)
            if outcome.fault_accounting is not None
            else None
        ),
        "events": [
            [e.priority, e.seq, e.type, e.time_s, e.payload]
            for e in outcome.events
        ],
    }


def _mix_outcome_from_payload(data):
    from repro.cluster.eventbus import Event
    from repro.cluster.scheduler import (
        JobReport,
        MixFaultAccounting,
        MixOutcome,
        TaskInterval,
    )

    accounting = data["fault_accounting"]
    if accounting is not None:
        accounting = MixFaultAccounting(
            nodes_crashed=tuple(accounting["nodes_crashed"]),
            partition_windows=accounting["partition_windows"],
            limping_nodes=tuple(accounting["limping_nodes"]),
            killed_attempts=accounting["killed_attempts"],
            zombies_fenced=accounting["zombies_fenced"],
            maps_reexecuted=accounting["maps_reexecuted"],
            reduces_reexecuted=accounting["reduces_reexecuted"],
            wasted_task_seconds=accounting["wasted_task_seconds"],
            speculative_attempts=accounting["speculative_attempts"],
            speculative_wins=accounting["speculative_wins"],
            speculative_losers_fenced=accounting["speculative_losers_fenced"],
            stragglers_detected=tuple(accounting["stragglers_detected"]),
        )
    return MixOutcome(
        scheduler=data["scheduler"],
        reports=[
            JobReport(
                job_id=r[0],
                name=r[1],
                user=r[2],
                pool=r[3],
                arrival_s=r[4],
                first_launch_s=r[5],
                finished_s=r[6],
                preempted=r[7],
                timeline=_timeline_from_payload(r[8]),
                status=r[9],
            )
            for r in data["reports"]
        ],
        end_s=data["end_s"],
        preemptions=data["preemptions"],
        preemption_wasted_s=data["preemption_wasted_s"],
        task_intervals=[
            TaskInterval(
                kind=iv[0], job_id=iv[1], node=iv[2], start_s=iv[3], end_s=iv[4]
            )
            for iv in data["task_intervals"]
        ],
        fault_accounting=accounting,
        fenced_attempts=data["fenced_attempts"],
        failed_jobs=tuple(data["failed_jobs"]),
        cancelled_jobs=tuple(data["cancelled_jobs"]),
        events=tuple(
            Event(
                priority=e[0], seq=e[1], type=e[2], time_s=e[3], payload=e[4]
            )
            for e in data["events"]
        ),
    )


def _mix_entry_path(root: Path, key: str) -> Path:
    return root / "mix" / key[:2] / f"{key}.json"


def load_mix(key: str, root: str | os.PathLike | None = None):
    """Fetch a cached mix outcome by key, or None on miss/corruption."""
    path = _mix_entry_path(cache_dir(root), key)
    try:
        # One bulk binary read beats json.load's incremental text
        # decoding; scale-row entries run to tens of megabytes.
        payload = json.loads(path.read_bytes())
    except (OSError, ValueError):
        return None
    data = payload.get("outcome")
    if not isinstance(data, dict):
        return None
    try:
        return _mix_outcome_from_payload(data)
    except (KeyError, IndexError, TypeError):
        # Shape mismatch from an entry written before a schema bump.
        return None


def store_mix(key: str, outcome, root: str | os.PathLike | None = None) -> None:
    """Persist *outcome* under *key* atomically (tmp file + rename)."""
    path = _mix_entry_path(cache_dir(root), key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "code": cluster_code_version(),
        "outcome": mix_outcome_payload(outcome),
    }
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def clear_mix(root: str | os.PathLike | None = None) -> int:
    """Delete every cached mix outcome; return the count."""
    mix_root = cache_dir(root) / "mix"
    if not mix_root.exists():
        return 0
    count = sum(1 for _ in mix_root.rglob("*.json"))
    shutil.rmtree(mix_root)
    return count


class MixCache:
    """One mix-cache handle with hit/miss accounting.

    ``run`` is the memoised twin of :meth:`MultiJobCluster.run`: on a
    hit the stored outcome is returned without dispatching a single
    task; on a miss the mix runs and the outcome is persisted.  Both
    paths return bit-identical values (``tests/core/test_simcache.py``
    round-trips every field).
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.root = cache_dir(root)
        self.enabled = mix_cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0

    def run(self, multi, engine: str = "events"):
        key = None
        if self.enabled:
            key = mix_cache_key(multi, run_engine=engine)
            cached = load_mix(key, self.root)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        outcome = multi.run(engine=engine)
        if key is not None:
            store_mix(key, outcome, self.root)
        return outcome

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
