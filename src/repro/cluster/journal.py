"""Control-plane journaling: the NameNode edit log and fsimage checkpoints.

Hadoop 1.x keeps the HDFS namespace durable with exactly two artefacts:

* the **fsimage** — a periodic checkpoint of the whole namespace, and
* the **edit log** — a write-ahead log of every namespace mutation since
  the last checkpoint.

On restart the NameNode loads the fsimage and replays the outstanding
edits; the *SecondaryNameNode* periodically *rolls* the log — it merges
``fsimage + edits`` into a fresh fsimage and truncates the edits — so
recovery never replays an unbounded log.  This module models that
machinery for the simulated cluster:

* :class:`EditOp` / :class:`EditLog` — the write-ahead log, one
  transaction id per namespace mutation
  (``create_file`` / ``delete_file`` / ``fail_node`` /
  ``re_replicate_block``);
* :class:`FsImage` — an immutable checkpoint of the whole
  :class:`~repro.cluster.hdfs.Hdfs` state (files, block placement,
  placement cursor, dead-node set, under-replication counter);
* :func:`snapshot` / :func:`restore_into` / :func:`replay` — checkpoint,
  in-place restore, and ``replay(fsimage, edits)`` recovery, which must
  reproduce the live namespace *exactly* (the tests assert it);
* :class:`NameNodeJournal` — wires the three together behind an
  :class:`~repro.cluster.hdfs.Hdfs`, with SecondaryNameNode-style
  roll/merge every ``checkpoint_interval_ops`` edits;
* :class:`JobHistoryJournal` — the JobTracker-side job-history log
  (``mapred.jobtracker.restart.recover``): completed task attempts are
  recorded as they commit, so a restarted JobTracker can tell which map
  outputs already exist on live tasktrackers and *resume* instead of
  re-running the job from scratch.

Journaling is pure bookkeeping: it never touches the simulated clock, so
a journaled run's timeline is bit-identical to an unjournaled one (the
chaos suite asserts this "observationally free" property).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hdfs import Block, Hdfs, HdfsFile
from repro.cluster.node import Node
from repro.cluster.topology import Topology

#: Edit-log operation names (mirroring the Hadoop 1.x edit-log opcodes
#: OP_ADD / OP_DELETE / OP_DATANODE_REMOVE / OP_SET_REPLICATION, plus the
#: ``reportBadBlocks`` → invalidate path for corrupt replicas).
OP_CREATE_FILE = "create_file"
OP_DELETE_FILE = "delete_file"
OP_FAIL_NODE = "fail_node"
OP_RE_REPLICATE = "re_replicate_block"
OP_BAD_BLOCK = "report_bad_block"
OP_DESTROY_REPLICAS = "destroy_replicas"

_KNOWN_OPS = (
    OP_CREATE_FILE, OP_DELETE_FILE, OP_FAIL_NODE, OP_RE_REPLICATE, OP_BAD_BLOCK,
    OP_DESTROY_REPLICAS,
)


@dataclass(frozen=True)
class EditOp:
    """One journaled namespace mutation."""

    txid: int
    op: str
    args: tuple

    def __post_init__(self) -> None:
        if self.op not in _KNOWN_OPS:
            raise ValueError(f"unknown edit-log op {self.op!r}")
        if self.txid < 1:
            raise ValueError("transaction ids start at 1")


class EditLog:
    """Write-ahead log of namespace mutations, one txid per entry."""

    def __init__(self, first_txid: int = 1) -> None:
        if first_txid < 1:
            raise ValueError("transaction ids start at 1")
        self.ops: list[EditOp] = []
        self._next_txid = first_txid

    def append(self, op: str, *args) -> EditOp:
        entry = EditOp(self._next_txid, op, tuple(args))
        self.ops.append(entry)
        self._next_txid += 1
        return entry

    @property
    def last_txid(self) -> int:
        """Txid of the newest entry (0 when the log has never been written)."""
        return self._next_txid - 1

    def since(self, txid: int) -> list[EditOp]:
        """Entries with txid strictly greater than *txid* (replay input)."""
        return [op for op in self.ops if op.txid > txid]

    def truncate_through(self, txid: int) -> None:
        """Drop entries up to and including *txid* (after a checkpoint merge)."""
        self.ops = [op for op in self.ops if op.txid > txid]

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class FsImage:
    """An immutable checkpoint of the whole HDFS namespace.

    Captures everything :func:`replay` needs to reconstruct the live
    :class:`~repro.cluster.hdfs.Hdfs` exactly — including the placement
    cursor and dead-node set, whose values future placements depend on.
    """

    txid: int
    block_size: int
    replication: int
    node_names: tuple[str, ...]
    placement_cursor: int
    dead_nodes: tuple[str, ...]
    under_replicated_blocks: int
    files: tuple[tuple[str, tuple[Block, ...]], ...]
    #: ground-truth rotten replicas at snapshot time — datanode state,
    #: carried so a cluster checkpoint/restore round-trips bit-rot
    #: exactly (replay-produced images start with none: bit-rot is a
    #: fault, not a journaled namespace mutation).
    corrupt_replicas: tuple[tuple[str, int, str], ...] = ()
    #: CRC32 chunk size (``io.bytes.per.checksum``), part of the
    #: namespace configuration like ``block_size``.
    bytes_per_checksum: int = 512
    #: node → rack assignments of the namespace's failure-domain map
    #: (empty = no topology, the flat pre-topology namespace).  Carried
    #: so replay reconstructs the *same* placement policy and reproduces
    #: rack-aware placements bit for bit.
    rack_assignments: tuple[tuple[str, str], ...] = ()
    #: the rack-diversity gauge, journaled like under-replication.
    rack_under_diverse_blocks: int = 0

    def file_names(self) -> tuple[str, ...]:
        return tuple(name for name, _blocks in self.files)


def snapshot(hdfs: Hdfs, txid: int = 0) -> FsImage:
    """Checkpoint *hdfs* into an :class:`FsImage` as of edit-log *txid*."""
    return FsImage(
        txid=txid,
        block_size=hdfs.block_size,
        replication=hdfs.replication,
        node_names=tuple(node.name for node in hdfs.nodes),
        placement_cursor=hdfs._placement_cursor,
        dead_nodes=tuple(sorted(hdfs._dead_nodes)),
        under_replicated_blocks=hdfs.under_replicated_blocks,
        files=tuple(
            (name, tuple(hfile.blocks)) for name, hfile in hdfs.files.items()
        ),
        corrupt_replicas=tuple(sorted(hdfs._corrupt_replicas)),
        bytes_per_checksum=hdfs.bytes_per_checksum,
        rack_assignments=(
            hdfs.topology.assignments if hdfs.topology is not None else ()
        ),
        rack_under_diverse_blocks=hdfs.rack_under_diverse_blocks,
    )


def restore_into(hdfs: Hdfs, image: FsImage) -> Hdfs:
    """Overwrite *hdfs*'s namespace in place with *image*'s.

    In-place so every object holding a reference to the namespace (the
    cluster, distributed inputs, the scheduler) sees the restored state.
    Does not write the edit log: a restore is not a mutation.
    """
    known = {node.name for node in hdfs.nodes}
    missing = set(image.node_names) - known
    if missing:
        raise ValueError(
            f"fsimage references unknown datanodes: {sorted(missing)}"
        )
    hdfs.block_size = image.block_size
    hdfs.replication = image.replication
    hdfs.bytes_per_checksum = image.bytes_per_checksum
    # The topology must be restored before any edits replay: rack-aware
    # create_file placements reproduce only under the same policy.
    hdfs.topology = (
        Topology(image.rack_assignments) if image.rack_assignments else None
    )
    hdfs.rack_under_diverse_blocks = image.rack_under_diverse_blocks
    hdfs._placement_cursor = image.placement_cursor
    hdfs._dead_nodes = set(image.dead_nodes)
    hdfs.under_replicated_blocks = image.under_replicated_blocks
    hdfs.files = {
        name: HdfsFile(name, list(blocks)) for name, blocks in image.files
    }
    hdfs._corrupt_replicas = set(image.corrupt_replicas)
    return hdfs


def apply_op(hdfs: Hdfs, op: EditOp) -> None:
    """Apply one journaled mutation through the real namespace code paths.

    Replay *must* go through the same methods that produced the edits, so
    placement decisions (cursor arithmetic, dead-node filtering) are
    reproduced bit for bit rather than re-derived by a second
    implementation that could drift.
    """
    if op.op == OP_CREATE_FILE:
        name, size_bytes = op.args
        hdfs.create_file(name, size_bytes)
    elif op.op == OP_DELETE_FILE:
        (name,) = op.args
        hdfs.delete_file(name)
    elif op.op == OP_FAIL_NODE:
        (name,) = op.args
        hdfs.fail_node(name)
    elif op.op == OP_RE_REPLICATE:
        file_name, index = op.args
        hdfs.re_replicate_block(hdfs.files[file_name].blocks[index])
    elif op.op == OP_BAD_BLOCK:
        file_name, index, node_name = op.args
        hdfs.report_bad_block(file_name, index, node_name)
    elif op.op == OP_DESTROY_REPLICAS:
        (name,) = op.args
        hdfs.destroy_replicas(name)
    else:  # pragma: no cover - EditOp already validates
        raise ValueError(f"unknown edit-log op {op.op!r}")


def replay(image: FsImage, edits, nodes: list[Node]) -> Hdfs:
    """Reconstruct a namespace from ``fsimage + edits`` (NameNode startup).

    Returns a *fresh* :class:`Hdfs` over *nodes* whose state matches what
    the live namespace looked like after the last journaled mutation —
    exactly, including the placement cursor (asserted by the journal
    tests for arbitrary seeded fault schedules).
    """
    recovered = Hdfs(
        nodes, block_size=image.block_size, replication=max(image.replication, 1)
    )
    restore_into(recovered, image)
    for op in edits:
        if op.txid <= image.txid:
            continue  # already folded into the checkpoint
        apply_op(recovered, op)
    return recovered


class NameNodeJournal:
    """Edit-log + fsimage management for one :class:`Hdfs` namespace.

    Attaches itself to the filesystem (``hdfs.journal = self``) so every
    namespace mutation is logged write-ahead style.  Every
    ``checkpoint_interval_ops`` edits the journal *rolls*: like the
    SecondaryNameNode, it merges the old fsimage with the outstanding
    edits **by replaying them** (not by snapshotting the live namespace —
    the merge path is the recovery path, so rolling continuously proves
    recovery works) and truncates the log.
    """

    def __init__(
        self,
        hdfs: Hdfs,
        checkpoint_interval_ops: int = 64,
        procfs=None,
    ) -> None:
        if checkpoint_interval_ops < 1:
            raise ValueError("checkpoint interval must be at least one edit")
        self.hdfs = hdfs
        self.checkpoint_interval_ops = checkpoint_interval_ops
        self.procfs = procfs
        self.edits = EditLog()
        self.fsimage = snapshot(hdfs, txid=0)
        self.rolls = 0
        hdfs.journal = self

    # -- write-ahead logging (called by Hdfs) --------------------------------

    def record(self, op: str, *args) -> None:
        self.edits.append(op, *args)
        if self.procfs is not None:
            self.procfs.record_journal_edit()
        if len(self.edits) >= self.checkpoint_interval_ops:
            self.roll()

    # -- checkpointing --------------------------------------------------------

    def roll(self) -> FsImage:
        """SecondaryNameNode checkpoint: merge edits into a new fsimage."""
        merged = replay(self.fsimage, self.edits.ops, self.hdfs.nodes)
        last = self.edits.last_txid
        self.fsimage = snapshot(merged, txid=last)
        self.edits.truncate_through(last)
        self.rolls += 1
        if self.procfs is not None:
            self.procfs.record_journal_checkpoint()
        return self.fsimage

    def recover(self) -> Hdfs:
        """NameNode restart: rebuild the namespace from fsimage + edits."""
        return replay(self.fsimage, self.edits.ops, self.hdfs.nodes)

    # -- checkpoint/restore of the journal itself ----------------------------

    def checkpoint_state(self) -> tuple:
        """Snapshot the journal's own state (for cluster checkpoints)."""
        return (self.fsimage, tuple(self.edits.ops), self.edits._next_txid, self.rolls)

    def restore_state(self, state: tuple) -> None:
        self.fsimage, ops, next_txid, self.rolls = state
        self.edits = EditLog()
        self.edits.ops = list(ops)
        self.edits._next_txid = next_txid


# ---------------------------------------------------------------------------
# JobTracker job history
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobHistoryEvent:
    """One committed task attempt, as the job-history log records it."""

    kind: str  # "map" or "reduce"
    task_id: str
    node: str
    start_s: float
    end_s: float


@dataclass
class JobHistoryJournal:
    """The JobTracker's persisted job-history log for the running job.

    Hadoop 1.x with ``mapred.jobtracker.restart.recover=true`` replays
    this log after a JobTracker restart: tasks recorded as complete are
    not re-run (their outputs still sit on live tasktrackers' local
    disks), only the attempts that were in flight are rescheduled.  A
    stock-1.x restart (``recover=false``) discards it and the job starts
    from scratch.
    """

    events: list[JobHistoryEvent] = field(default_factory=list)

    def record_completion(
        self, kind: str, task_id: str, node: str, start_s: float, end_s: float
    ) -> JobHistoryEvent:
        if kind not in ("map", "reduce"):
            raise ValueError("job history records map or reduce completions")
        event = JobHistoryEvent(kind, task_id, node, start_s, end_s)
        self.events.append(event)
        return event

    def completed_maps_before(self, time_s: float) -> list[JobHistoryEvent]:
        """Map completions the history had journaled by *time_s*.

        These are the outputs a recovering JobTracker can reuse —
        provided the tasktracker that holds them is still alive (the
        caller filters on liveness).
        """
        return [
            e for e in self.events if e.kind == "map" and e.end_s <= time_s
        ]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Workflow (DAG) progress journal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkflowStageRecord:
    """One committed stage of a workflow, as the progress journal records it."""

    stage: str
    finished_s: float
    attempts: int
    output: str  # HDFS path of the stage's committed output


@dataclass
class WorkflowJournal:
    """The orchestrator's persisted per-workflow progress log.

    The DAG analogue of :class:`JobHistoryJournal`: each stage commit is
    recorded write-ahead style, so a JobTracker crash mid-workflow can
    resume the DAG from its journal — completed stages are *not*
    re-executed (their outputs are durable in HDFS, unlike map outputs
    on local disks), only stages that had not committed re-run.  Like
    all journaling here it is pure bookkeeping: recording never touches
    the simulated clock.
    """

    workflow: str = ""
    records: list[WorkflowStageRecord] = field(default_factory=list)

    def record_stage(
        self, stage: str, finished_s: float, attempts: int, output: str
    ) -> WorkflowStageRecord:
        if any(r.stage == stage for r in self.records):
            raise ValueError(f"stage {stage!r} already journaled")
        record = WorkflowStageRecord(stage, finished_s, attempts, output)
        self.records.append(record)
        return record

    def forget_stage(self, stage: str) -> None:
        """Drop *stage*'s record (its output was lost; it must re-run)."""
        self.records = [r for r in self.records if r.stage != stage]

    def completed_stages(self) -> tuple[str, ...]:
        return tuple(r.stage for r in self.records)

    def record_for(self, stage: str) -> WorkflowStageRecord | None:
        for record in self.records:
            if record.stage == stage:
                return record
        return None

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
