"""Tests for CREATE TABLE AS, DROP TABLE and script execution."""

import pytest

from repro.hive import HiveSession
from repro.hive.parser import (
    CreateTableAs,
    DropTable,
    HiveSyntaxError,
    Query,
    parse_statement,
    split_statements,
)
from repro.workloads import datagen


@pytest.fixture
def session() -> HiveSession:
    s = HiveSession()
    s.create_table(
        "rankings", [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")]
    )
    s.load_rows("rankings", datagen.generate_rankings(300))
    return s


class TestParseStatement:
    def test_select_returns_query(self):
        assert isinstance(parse_statement("SELECT * FROM t"), Query)

    def test_create_table_as(self):
        stmt = parse_statement("CREATE TABLE x AS SELECT a FROM t")
        assert isinstance(stmt, CreateTableAs)
        assert stmt.table == "x"
        assert stmt.query.table == "t"

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE x")
        assert isinstance(stmt, DropTable)
        assert stmt.table == "x"

    def test_drop_rejects_trailing(self):
        with pytest.raises(HiveSyntaxError):
            parse_statement("DROP TABLE x y")

    def test_create_requires_as(self):
        with pytest.raises(HiveSyntaxError):
            parse_statement("CREATE TABLE x SELECT a FROM t")


class TestSplitStatements:
    def test_basic_split(self):
        assert split_statements("a; b ;c") == ["a", "b", "c"]

    def test_semicolon_inside_string_preserved(self):
        stmts = split_statements("SELECT * FROM t WHERE s = 'a;b'; SELECT 1 FROM u")
        assert len(stmts) == 2
        assert "'a;b'" in stmts[0]

    def test_trailing_semicolon_and_blank(self):
        assert split_statements("a;;\n;  b;") == ["a", "b"]

    def test_empty_script(self):
        assert split_statements("  \n ") == []


class TestCtas:
    def test_ctas_materialises(self, session):
        session.execute_statement(
            "CREATE TABLE hot AS SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100"
        )
        hot = session.table("hot")
        expected = [
            (u, r) for u, r, _ in session.table("rankings").rows if r > 100
        ]
        assert sorted(hot.rows) == sorted(expected)
        assert [c.name for c in hot.columns] == ["pageURL", "pageRank"]

    def test_ctas_types_inferred(self, session):
        session.execute_statement(
            "CREATE TABLE agg AS SELECT pageURL, AVG(pageRank) AS meanRank "
            "FROM rankings GROUP BY pageURL"
        )
        cols = {c.name: c.type for c in session.table("agg").columns}
        assert cols["pageURL"] == "string"
        assert cols["meanRank"] == "double"

    def test_ctas_sanitises_aggregate_names(self, session):
        session.execute_statement(
            "CREATE TABLE c AS SELECT pageRank, COUNT(*) FROM rankings GROUP BY pageRank"
        )
        names = [c.name for c in session.table("c").columns]
        assert all(name.isidentifier() for name in names)

    def test_ctas_result_queryable(self, session):
        session.execute_statement(
            "CREATE TABLE hot AS SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100"
        )
        count = session.execute("SELECT COUNT(*) FROM hot").rows[0][0]
        expected = sum(1 for _, r, _ in session.table("rankings").rows if r > 100)
        assert count == expected

    def test_ctas_duplicate_name_rejected(self, session):
        with pytest.raises(ValueError):
            session.execute_statement("CREATE TABLE rankings AS SELECT * FROM rankings")


class TestScripts:
    def test_multi_statement_pipeline(self, session):
        executions = session.execute_script(
            """
            CREATE TABLE hot AS SELECT pageURL, pageRank FROM rankings WHERE pageRank > 50;
            CREATE TABLE hottest AS SELECT pageURL FROM hot WHERE pageRank > 200;
            SELECT COUNT(*) FROM hottest;
            DROP TABLE hot;
            DROP TABLE hottest;
            """
        )
        assert len(executions) == 3  # two CTAS + one SELECT
        expected = sum(1 for _, r, _ in session.table("rankings").rows if r > 200)
        assert executions[-1].rows == [(expected,)]
        assert "hot" not in session.tables and "hottest" not in session.tables

    def test_drop_is_silent_and_returns_none(self, session):
        assert session.execute_statement("DROP TABLE nothere") is None
