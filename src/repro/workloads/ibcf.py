"""IBCF — Table I row 8 (Mahout): item-based collaborative filtering.

Mahout's classic three-job pipeline:

1. **user vectors**: group each user's (item, rating) pairs;
2. **item-item similarity**: co-occurrence products per item pair plus
   per-item norms → cosine similarity;
3. **recommend**: map-only pass over user vectors scoring unrated items
   by similarity-weighted ratings ("estimates a user's preference towards
   an item by looking at his/her preferences towards related items").
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register


def _user_vector_map(user, item_rating):
    yield user, item_rating


def _user_vector_reduce(user, item_ratings):
    yield user, tuple(sorted(item_ratings))


def _cooccurrence_map(_user, vector):
    items = list(vector)
    for i, (item_i, rating_i) in enumerate(items):
        yield (item_i, item_i), rating_i * rating_i
        for item_j, rating_j in items[i + 1:]:
            yield (item_i, item_j), rating_i * rating_j


def _sum_reduce(key, values):
    yield key, sum(values)


def build_similarity(cooccurrence: dict[tuple[int, int], float]) -> dict[tuple[int, int], float]:
    """Cosine similarity from co-occurrence sums and diagonal norms."""
    norms = {i: math.sqrt(v) for (i, j), v in cooccurrence.items() if i == j}
    sims: dict[tuple[int, int], float] = {}
    for (i, j), dot in cooccurrence.items():
        if i == j:
            continue
        denom = norms.get(i, 0.0) * norms.get(j, 0.0)
        if denom > 0:
            sims[(i, j)] = dot / denom
            sims[(j, i)] = dot / denom
    return sims


def _make_recommend_map(similarity: dict[tuple[int, int], float], all_items: list[int], top_n: int):
    def recommend_map(user, vector):
        rated = dict(vector)
        scores: list[tuple[float, int]] = []
        for candidate in all_items:
            if candidate in rated:
                continue
            num = 0.0
            den = 0.0
            for item, rating in rated.items():
                sim = similarity.get((candidate, item))
                if sim is not None:
                    num += sim * rating
                    den += abs(sim)
            if den > 0:
                scores.append((num / den, candidate))
        scores.sort(reverse=True)
        yield user, tuple(item for _score, item in scores[:top_n])

    return recommend_map


@register
class IbcfWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="IBCF",
        input_description="147 GB ratings data",
        input_gb_low=147,
        retired_instructions_1e9=32340,
        source="mahout",
        scenarios=(
            ("electronic commerce", "Recommend goods"),
            ("social network", "Recommend friends"),
            ("search engine", "Recommend key words"),
        ),
        table1_row=8,
    )

    BASE_USERS = 400
    TOP_N = 5

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        ratings = datagen.generate_ratings(num_users=max(4, int(self.BASE_USERS * scale)))

        vectors_job = MapReduceJob(
            _user_vector_map,
            _user_vector_reduce,
            JobConf(name="ibcf-user-vectors", num_reduces=8,
                    map_cost_per_record=1e-6, reduce_cost_per_record=2e-6),
        )
        vectors_result = engine.execute(
            vectors_job, ratings, cluster=cluster, input_name="ibcf-ratings"
        )

        cooc_job = MapReduceJob(
            _cooccurrence_map,
            _sum_reduce,
            JobConf(name="ibcf-similarity", num_reduces=8,
                    # quadratic in per-user vector length: the heavy job
                    map_cost_per_record=2e-5, reduce_cost_per_record=2e-6),
            combiner=_sum_reduce,
        )
        cooc_result = engine.execute(
            cooc_job, vectors_result.output, cluster=cluster, input_name="ibcf-vectors"
        )
        similarity = build_similarity(dict(cooc_result.output))
        all_items = sorted({item for (item, _j) in similarity})

        recommend_job = MapReduceJob(
            _make_recommend_map(similarity, all_items, self.TOP_N),
            None,
            JobConf(name="ibcf-recommend", num_reduces=0,
                    map_cost_per_record=4e-5),
        )
        rec_result = engine.execute(
            recommend_job, vectors_result.output, cluster=cluster, input_name="ibcf-rec-in"
        )
        recommendations = dict(rec_result.output)
        return self._merge_results(
            self.info.name,
            [vectors_result, cooc_result, rec_result],
            recommendations,
            users=len(recommendations),
            item_pairs=len(similarity) // 2,
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.32,
            "store_fraction": 0.10,
            "fp_fraction": 0.10,
            "regions": (
                # user vectors streamed
                MemoryRegion("user-vectors", 96 << 20, 0.2, "sequential"),
                # the item-item similarity matrix: large, sparse, and hit
                # with data-dependent (item, item) indices — IBCF's working
                # set is the biggest of the eleven (Table I: 32e12 retired
                # instructions over 147 GB of ratings).
                MemoryRegion("similarity-matrix", 48 << 20, 0.3, "random",
                             burst=3, hot_fraction=0.02, hot_weight=0.88),
            ),
            "kernel_fraction": 0.03,
            # candidate scoring loop: data-dependent presence tests
            "branch_regularity": 0.95,
            "taken_bias": 0.45,
            # hash-probe → accumulate chains limit ILP: second-lowest DA IPC
            "dep_mean": 2.6,
            "dep_density": 0.78,
        }
