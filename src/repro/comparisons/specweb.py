"""SPECweb2005 (bank) proxy.

The paper runs the banking application with 3000 simultaneous sessions
against one web server.  The proxy implements the bank for real: an
account store, session handshakes, and the SPECweb bank mix (account
summary, bill-pay, transfer, login/logout) driven by a deterministic
client, self-checked by conservation of money.

Profile: a traditional server — a big multi-service binary (web server +
dynamic content engine), > 40 % kernel instructions from network I/O, a
session/heap working set with hot structures, RAT-bound in-order stalls
(the paper's Figure 6 service signature).
"""

from __future__ import annotations

import random
from typing import Any

from repro.comparisons.base import ComparisonRun, ComparisonWorkload, register
from repro.uarch.trace import MemoryRegion


class BankServer:
    """In-memory bank: the dynamic content behind the workload."""

    def __init__(self, num_accounts: int, seed: int = 31):
        rng = random.Random(seed)
        self.balances = {i: rng.randrange(100, 10_000) for i in range(num_accounts)}
        self.sessions: dict[int, int] = {}
        self.next_session = 1
        self.requests_served = 0

    def login(self, account: int) -> int:
        sid = self.next_session
        self.next_session += 1
        self.sessions[sid] = account
        self.requests_served += 1
        return sid

    def logout(self, sid: int) -> None:
        self.sessions.pop(sid, None)
        self.requests_served += 1

    def account_summary(self, sid: int) -> int:
        self.requests_served += 1
        return self.balances[self.sessions[sid]]

    def transfer(self, sid: int, to_account: int, amount: int) -> bool:
        self.requests_served += 1
        src = self.sessions[sid]
        if self.balances[src] < amount or amount <= 0:
            return False
        self.balances[src] -= amount
        self.balances[to_account] += amount
        return True

    def bill_pay(self, sid: int, amount: int) -> bool:
        # Bill pay moves money to the (modelled) external biller account 0.
        return self.transfer(sid, 0, amount)

    def total_money(self) -> int:
        return sum(self.balances.values())


@register
class SpecWeb(ComparisonWorkload):
    name = "SPECWeb"
    suite = "SPECweb2005"

    #: request mix, roughly the bank workload's page distribution
    MIX = (("summary", 0.45), ("transfer", 0.2), ("billpay", 0.2), ("relog", 0.15))

    def run(self, scale: float = 1.0) -> ComparisonRun:
        rng = random.Random(32)
        accounts = max(10, int(500 * scale))
        server = BankServer(accounts)
        before = server.total_money()
        sessions = [server.login(rng.randrange(1, accounts)) for _ in range(max(3, int(30 * scale)))]
        requests = max(10, int(3000 * scale))
        failed = 0
        for _ in range(requests):
            sid = rng.choice(sessions)
            kind = self._pick(rng)
            if kind == "summary":
                server.account_summary(sid)
            elif kind == "transfer":
                if not server.transfer(sid, rng.randrange(1, accounts), rng.randrange(1, 200)):
                    failed += 1
            elif kind == "billpay":
                if not server.bill_pay(sid, rng.randrange(1, 100)):
                    failed += 1
            else:
                server.logout(sid)
                sessions[sessions.index(sid)] = server.login(rng.randrange(1, accounts))
        conservation_error = server.total_money() - before
        return ComparisonRun(
            self.name,
            server,
            {
                "requests": float(server.requests_served),
                "failed": float(failed),
                "conservation_error": float(conservation_error),
            },
        )

    def _pick(self, rng: random.Random) -> str:
        u = rng.random()
        acc = 0.0
        for kind, p in self.MIX:
            acc += p
            if u < acc:
                return kind
        return self.MIX[-1][0]

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.28,
            "store_fraction": 0.12,
            "fp_fraction": 0.0,
            # web server + dynamic content stack: MB-scale hot binary
            "code_footprint": 1536 * 1024,
            "hot_code_fraction": 0.08,
            "hot_code_weight": 0.9,
            "call_fraction": 0.22,
            "indirect_fraction": 0.05,
            "indirect_targets": 4,
            "mean_block_len": 5.5,
            "regions": (
                # session/account heap: pointer-chased, hot skew from the
                # active session set
                MemoryRegion("session-heap", 1024 << 20, 1.0, "pointer", burst=2,
                             hot_fraction=0.002, hot_weight=0.96),
                MemoryRegion("page-buffers", 8 << 20, 0.6, "sequential"),
            ),
            # > 40 % kernel: per-request socket I/O dominates (Figure 4)
            "kernel_fraction": 0.45,
            "kernel_episode_len": 220,
            "kernel_code_footprint": 384 * 1024,
            "kernel_buffer_bytes": 2 << 20,
            # request dispatch is branchy and irregular
            "loop_branch_fraction": 0.3,
            "mean_trip_count": 8.0,
            "branch_regularity": 0.9,
            "taken_bias": 0.5,
            "dep_mean": 3.0,
            "dep_density": 0.7,
            # the Figure 6 service signature: heavy RAT stalls
            "partial_register_ratio": 0.85,
        }
