#!/usr/bin/env python3
"""Fault tolerance: failures, stragglers, node crashes and recovery.

The paper's cluster runs Hadoop 1.0.2, whose resilience mechanisms shape
every long job's runtime.  This example injects the everyday pathologies
into a Sort run and shows what the jobtracker's countermeasures buy:

* task failures → re-execution on another node (bounded damage),
* a straggling node → speculative backup attempts for maps *and*
  reduces (bounded tail),
* a whole-node crash mid-job → heartbeat detection, HDFS
  re-replication, and re-execution of the maps whose output died
  with the node,
* flaky shuffle fetches → bounded retries, escalating to a map re-run,
* the JobTracker itself dying mid-job → either a from-scratch re-run
  (stock 1.x restart) or a job-history replay that reuses completed
  map outputs (`mapred.jobtracker.restart.recover=true`),
* gray failures → silent bit-rot caught by end-to-end CRC32 checksums
  (failover + bad-block report + re-replication + scrubbing), lossy
  links paid for in retransmits, and a timed network partition whose
  zombie attempts are fenced at commit.

The full fault model — including the checksum, scrubber and
partition/fencing semantics — is documented in docs/fault-model.md.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import FaultPlan, FaultyCluster, RetryPolicy, make_cluster
from repro.workloads import workload


def sort_work():
    """Build Sort's JobWork once (same functional execution every time)."""
    cluster = make_cluster(4, block_size=64 * 1024)
    run = workload("Sort").run(scale=1.0, cluster=cluster)
    return run.job_results[0].work


def simulate(plan: FaultPlan, work):
    cluster = make_cluster(4, block_size=64 * 1024)
    return FaultyCluster(cluster, plan).run_job(work)


def main() -> None:
    work = sort_work()
    print(f"Sort: {len(work.maps)} map tasks, {len(work.reduces)} reduce tasks\n")

    healthy = simulate(FaultPlan(), work)
    crash_at = healthy.map_phase_end_s * 0.6

    scenarios = [
        ("healthy cluster", FaultPlan()),
        ("10% map failures", FaultPlan.random_plan(len(work.maps), failure_rate=0.10, seed=3)),
        ("one 8x straggler, no speculation",
         FaultPlan(straggler_nodes=("slave2",), straggler_factor=8.0,
                   speculative_execution=False)),
        ("one 8x straggler, with speculation",
         FaultPlan(straggler_nodes=("slave2",), straggler_factor=8.0,
                   speculative_execution=True)),
        ("slave2 crashes mid map phase",
         FaultPlan(node_crashes=(("slave2", crash_at),))),
        ("flaky shuffle (fetch retries + escalation)",
         FaultPlan(shuffle_failures=((0, 0, 2), (1, 3, 4)),
                   policy=RetryPolicy(max_fetch_retries=3))),
    ]

    baseline = None
    print(f"{'scenario':<44s}{'duration':>10s}{'vs healthy':>12s}"
          f"{'failures':>10s}{'kills':>7s}{'backups':>9s}{'wasted':>9s}")
    print("-" * 101)
    for label, plan in scenarios:
        result = simulate(plan, work)
        if baseline is None:
            baseline = result.timeline.duration_s
        print(f"{label:<44s}{result.timeline.duration_s:>9.2f}s"
              f"{result.timeline.duration_s / baseline:>11.2f}x"
              f"{result.failed_attempts:>10d}{result.killed_attempts:>7d}"
              f"{result.speculative_attempts:>9d}"
              f"{result.wasted_seconds:>8.2f}s")

    # Re-run the crash through the workload itself: the input file lives in
    # this cluster's HDFS, so the namenode has real blocks to re-replicate.
    crash_cluster = FaultyCluster(
        make_cluster(4, block_size=64 * 1024),
        FaultPlan(node_crashes=(("slave2", crash_at),)),
    )
    crash = workload("Sort").run(scale=1.0, cluster=crash_cluster).timelines[0]
    fetch = simulate(scenarios[-1][1], work)
    print("\nnode-crash recovery: "
          f"crashed={', '.join(crash.nodes_crashed)}, "
          f"maps re-executed={crash.maps_reexecuted}, "
          f"re-replicated={crash.re_replicated_bytes / 1024:.0f} KiB of HDFS blocks")
    print("shuffle recovery:    "
          f"fetch failures={fetch.shuffle_fetch_failures}, "
          f"escalated to map re-runs={fetch.fetch_escalations}")
    # ---- gray failures: silent corruption + a flaky, partitioned net ----
    # Run through the workload so the input blocks live in *this*
    # cluster's HDFS — the corruption injector rots real replicas and
    # every read's checksum verification has a replica set to fail
    # over across.
    gray_cluster = FaultyCluster(
        make_cluster(4, block_size=64 * 1024),
        FaultPlan(corruption_rate=0.3, transfer_corruption_rate=0.02,
                  link_loss_rate=0.01,
                  partitions=(("slave3", crash_at, 1.0),),
                  scrub=True, seed=7),
    )
    gray = workload("Sort").run(scale=1.0, cluster=gray_cluster).timelines[0]
    print("\ngray failures (checksums + scrubbing, lossy links, partition):")
    print(f"  replicas silently corrupted:    {gray.corrupt_replicas_injected}")
    print(f"  caught by CRC32 verification:   {gray.checksum_failures}")
    print(f"  bad blocks reported (journaled):{gray.bad_blocks_reported:>2d}")
    print(f"  scrubbed by DataBlockScanner:   {gray.scrubbed_bytes / 1024:.0f} KiB")
    print(f"  rot left undetected:            "
          f"{gray_cluster.hdfs.corrupt_replica_count}")
    print(f"  segments retransmitted:         {gray.net_retransmits} "
          f"({gray.net_retransmit_bytes / 1024:.0f} KiB resent)")
    print(f"  partitioned / graylisted:       "
          f"{', '.join(gray.nodes_partitioned) or '-'} / "
          f"{', '.join(gray.graylisted_nodes) or '-'}")
    print(f"  zombie attempts fenced:         {gray.zombie_attempts_fenced}")

    # ---- control plane: lose the JobTracker/NameNode mid-job ------------
    master_crash_at = healthy.duration_s * 0.5
    print(f"\nJobTracker crash at t={master_crash_at:.2f}s "
          f"(healthy job: {healthy.duration_s:.2f}s), downtime 0.75s:")
    recovered = {}
    for mode in ("restart", "resume"):
        recovered[mode] = simulate(FaultPlan(
            master_crash_time=master_crash_at,
            master_recovery=mode,
            master_downtime_s=0.75,
        ), work)
    print(f"{'recovery accounting':<28s}{'restart':>12s}{'resume':>12s}")
    print("-" * 52)
    rows = [
        ("duration_s", lambda r: f"{r.duration_s:.2f}"),
        ("master_crashes", lambda r: r.master_crashes),
        ("recovery_downtime_s", lambda r: f"{r.recovery_downtime_s:.2f}"),
        ("jobs_restarted", lambda r: r.jobs_restarted),
        ("jobs_resumed", lambda r: r.jobs_resumed),
        ("maps_recovered", lambda r: r.maps_recovered),
        ("killed_attempts", lambda r: r.killed_attempts),
        ("wasted_seconds", lambda r: f"{r.wasted_seconds:.2f}"),
    ]
    for label, pick in rows:
        print(f"{label:<28s}{pick(recovered['restart']):>12}"
              f"{pick(recovered['resume']):>12}")
    savings = recovered["restart"].duration_s - recovered["resume"].duration_s
    print(f"job-history replay saved {savings:.2f}s over a cold restart "
          f"({recovered['resume'].maps_recovered} map outputs reused)")

    print("\nreading: failures cost bounded re-execution; speculation trades"
          "\nwasted duplicate work for a much shorter straggler tail; a dead"
          "\nnode costs its in-flight attempts, its finished map outputs and"
          "\nthe background traffic that restores HDFS replication; a dead"
          "\nmaster costs the outage plus — without job-history recovery —"
          "\nevery second the job had already run; and gray failures cost"
          "\nnothing in correctness: every flipped bit is caught end to end"
          "\nand every zombie is fenced before it can commit stale output.")


if __name__ == "__main__":
    main()
