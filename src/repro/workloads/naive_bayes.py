"""Naive Bayes — Table I row 4 (Mahout).

Two MapReduce phases, matching Mahout's trainer/classifier split:

1. **train**: count (class, word) occurrences and class priors;
2. **classify**: map-only scoring of held-out documents with Laplace-
   smoothed log-likelihoods.

Naive Bayes is the paper's repeated outlier: *within* the data-analysis
group it has the lowest IPC (0.52), the smallest L1I/ITLB footprint (the
scorer is one tight loop), and — the Figure 11 exception — *high* DTLB
pressure, because scoring walks large per-class probability tables with
data-dependent indices.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register

CLASS_MARKER = "__class__"


def _train_map(doc_id, labeled):
    label, text = labeled
    yield (CLASS_MARKER, label), 1
    for word in text.split():
        yield (label, word), 1


def _sum_reduce(key, counts):
    yield key, sum(counts)


class NaiveBayesModel:
    """Trained model: priors + per-class word log-probabilities."""

    def __init__(self, counts: dict, alpha: float = 1.0):
        self.alpha = alpha
        self.class_docs: dict[str, int] = {}
        self.word_counts: dict[str, dict[str, int]] = {}
        for (first, second), count in counts.items():
            if first == CLASS_MARKER:
                self.class_docs[second] = count
            else:
                self.word_counts.setdefault(first, {})[second] = count
        if not self.class_docs:
            raise ValueError("no classes in training counts")
        self.total_docs = sum(self.class_docs.values())
        self.vocabulary = {
            word for words in self.word_counts.values() for word in words
        }
        self.class_totals = {
            cls: sum(words.values()) for cls, words in self.word_counts.items()
        }

    def log_prior(self, cls: str) -> float:
        return math.log(self.class_docs[cls] / self.total_docs)

    def log_likelihood(self, cls: str, word: str) -> float:
        v = len(self.vocabulary) or 1
        count = self.word_counts.get(cls, {}).get(word, 0)
        return math.log((count + self.alpha) / (self.class_totals.get(cls, 0) + self.alpha * v))

    def classify(self, text: str) -> str:
        best_cls, best_score = None, -math.inf
        for cls in self.class_docs:
            score = self.log_prior(cls)
            for word in text.split():
                score += self.log_likelihood(cls, word)
            if score > best_score:
                best_cls, best_score = cls, score
        assert best_cls is not None
        return best_cls


def _make_classify_map(model: NaiveBayesModel):
    def classify_map(doc_id, labeled):
        true_label, text = labeled
        predicted = model.classify(text)
        yield doc_id, (true_label, predicted)

    return classify_map


@register
class NaiveBayesWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="Naive Bayes",
        input_description="147 GB text",
        input_gb_low=147,
        retired_instructions_1e9=68131,
        source="mahout",
        scenarios=(
            ("social network", "Spam recognition"),
            ("electronic commerce", "Web page classification"),
        ),
        table1_row=4,
    )

    BASE_DOCS = 1000

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        docs = datagen.generate_labeled_documents(max(4, int(self.BASE_DOCS * scale)))
        split = int(len(docs) * 0.8)
        train_docs, test_docs = docs[:split], docs[split:]

        train_job = MapReduceJob(
            _train_map,
            _sum_reduce,
            JobConf(
                name="bayes-train",
                num_reduces=12,
                map_cost_per_record=6e-6,
                map_cost_per_byte=4e-8,
                reduce_cost_per_record=1e-6,
            ),
            combiner=_sum_reduce,
        )
        train_result = engine.execute(
            train_job, train_docs, cluster=cluster, input_name="bayes-train-input"
        )
        model = NaiveBayesModel(dict(train_result.output))

        classify_job = MapReduceJob(
            _make_classify_map(model),
            None,
            JobConf(
                name="bayes-classify",
                num_reduces=0,
                # Scoring every (class, word) pair is the expensive part.
                map_cost_per_record=2e-5,
                map_cost_per_byte=6e-8,
            ),
        )
        classify_result = engine.execute(
            classify_job, test_docs, cluster=cluster, input_name="bayes-test-input"
        )
        predictions = {doc: pair for doc, pair in classify_result.output}
        correct = sum(1 for truth, pred in predictions.values() if truth == pred)
        accuracy = correct / len(predictions) if predictions else 0.0
        return self._merge_results(
            self.info.name,
            [train_result, classify_result],
            predictions,
            accuracy=accuracy,
            model_classes=sorted(model.class_docs),
            vocabulary=len(model.vocabulary),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # FP log-prob accumulation per (word, class).
            "load_fraction": 0.30,
            "store_fraction": 0.06,
            "fp_fraction": 0.12,
            # §IV-C: "Naive Bayes is an exception with the smallest L1
            # instruction cache misses and completed page walks caused by
            # instruction TLB misses" — the scorer is one tight hot loop,
            # far smaller than the general framework footprint.
            "code_footprint": 160 * 1024,
            "hot_code_fraction": 0.2,
            "call_fraction": 0.08,
            # §IV-D: the Figure 11 DTLB exception — probability tables are
            # large, sparse and indexed by hashed words: wide random access
            # with a Zipf-hot core (frequent words).
            "regions": (
                MemoryRegion("corpus", 96 << 20, 0.15, "sequential"),
                MemoryRegion("probability-tables", 64 << 20, 0.25, "random",
                             burst=4, hot_fraction=0.03, hot_weight=0.9),
            ),
            "kernel_fraction": 0.025,
            # Lowest DA IPC (0.52): scoring is a serial dependency chain —
            # every word's log-prob accumulates into one running sum.
            "dep_mean": 2.0,
            "dep_density": 0.85,
            "branch_regularity": 0.97,
        }
