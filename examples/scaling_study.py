#!/usr/bin/env python3
"""Reproduce Figure 2: speedup of the eleven workloads on 1/4/8 slaves.

Every workload really executes on simulated Hadoop clusters of 1, 4 and
8 slaves; runtimes come from the discrete-event cluster model (slot
scheduling, disks, 1 GbE shuffle, HDFS replication).  The paper's point
— the eleven workloads scale *diversely* (3.3-8.2x at 8 slaves), so no
single workload can represent the class — shows up as a wide spread.

Run:  python examples/scaling_study.py
"""

from repro.analysis import speedup_study


def main() -> None:
    print("running the 1/4/8-slave scaling study (eleven workloads x three clusters)...")
    result = speedup_study()

    print(f"\n{'workload':<16s}{'1 slave':>9s}{'4 slaves':>10s}{'8 slaves':>10s}")
    print("-" * 46)
    for name in result.durations:
        s1, s4, s8 = result.series(name)
        bar = "#" * int(s8 * 4)
        print(f"{name:<16s}{s1:>9.2f}{s4:>10.2f}{s8:>10.2f}  {bar}")
    lo, hi = result.max_spread()
    print("-" * 46)
    print(f"speedup spread at 8 slaves: {lo:.2f} - {hi:.2f}   (paper: 3.3 - 8.2)")
    print(f"Naive Bayes at 8 slaves   : {result.speedup('Naive Bayes', 8):.2f}"
          f"   (paper: 6.6)")
    print("\nconclusion (paper §II-B): one data analysis workload cannot represent all.")


if __name__ == "__main__":
    main()
