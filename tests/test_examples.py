"""Smoke tests: the runnable examples must keep running.

Each example's ``main()`` is imported and executed in-process with its
output captured; the slowest two (full-suite characterization and the
consolidation sweep) are exercised by the benchmark harness instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "WordCount on a 4-slave cluster" in out
        assert "IPC" in out

    def test_hive_warehouse(self, capsys):
        load_example("hive_warehouse").main()
        out = capsys.readouterr().out
        assert "plan with" in out
        assert "MapReduce stage(s)" in out

    def test_custom_workload(self, capsys):
        load_example("custom_workload").main()
        out = capsys.readouterr().out
        assert "InvertedIndex" in out
        assert "WordCount" in out

    def test_fault_tolerance(self, capsys):
        load_example("fault_tolerance").main()
        out = capsys.readouterr().out
        assert "healthy cluster" in out
        assert "with speculation" in out

    def test_programming_models(self, capsys):
        load_example("programming_models").main()
        out = capsys.readouterr().out
        assert "WordCount" in out and "PageRank" in out
        # every row must report matching outputs
        assert "NO" not in out

    def test_multi_tenant(self, capsys):
        load_example("multi_tenant").main()
        out = capsys.readouterr().out
        assert "small-job mean slowdown" in out
        assert "Jain fairness index" in out
        assert "outputs identical across schedulers: True" in out

    def test_recipes(self, capsys):
        load_example("recipes").main()
        out = capsys.readouterr().out
        assert "recorded 8 jobs (3 Hive" in out
        assert "regenerated 80 jobs" in out
        assert "hit rate monotone in repetitiveness: True" in out

    @pytest.mark.slow
    def test_scaling_study(self, capsys):
        load_example("scaling_study").main()
        out = capsys.readouterr().out
        assert "speedup spread at 8 slaves" in out
