"""MPI-style programming model over the cluster substrate.

The paper's §V: "we also notice the significant effects of different
programming models, e.g., MPI vs. MapReduce, on the application
behaviors ... so we also include the implementation of DCBench with
different programming models on our homepage."

This package is that second programming model: a bulk-synchronous
message-passing runtime (:mod:`repro.mpi.runtime`) with tree-structured
collectives timed on the same NIC/switch models the Hadoop shuffle uses,
plus MPI implementations of three DCBench workloads
(:mod:`repro.mpi.programs`) that produce results identical to their
MapReduce twins — which makes the programming-model comparison
(`examples/programming_models.py`) apples-to-apples: same algorithm, same
data, same network, different execution model (in-memory iteration versus
per-job HDFS materialisation).
"""

from repro.mpi.runtime import MpiRuntime, MpiStats
from repro.mpi.programs import mpi_kmeans, mpi_pagerank, mpi_wordcount

__all__ = [
    "MpiRuntime",
    "MpiStats",
    "mpi_kmeans",
    "mpi_pagerank",
    "mpi_wordcount",
]
