"""Tests for disk and network device models."""

import pytest

from repro.cluster.disk import Disk, WRITE_OP_BYTES
from repro.cluster.network import Network, Nic, SEGMENT_BYTES
from repro.perf.procfs import ProcFs


class TestDisk:
    def make(self, **kw):
        return Disk(ProcFs(), **kw)

    def test_read_duration_matches_bandwidth(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        assert d.read(0.0, 100_000_000) == pytest.approx(1.0)

    def test_write_duration_matches_bandwidth(self):
        d = self.make(write_bw=50e6, seek_s=0.0)
        assert d.write(0.0, 50_000_000) == pytest.approx(1.0)

    def test_seek_added(self):
        d = self.make(read_bw=100e6, seek_s=0.01)
        assert d.read(0.0, 0) == pytest.approx(0.01)

    def test_requests_serialise(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        first = d.read(0.0, 100_000_000)
        second = d.read(0.0, 100_000_000)
        assert second == pytest.approx(first + 1.0)

    def test_idle_disk_starts_at_now(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        assert d.read(5.0, 100_000_000) == pytest.approx(6.0)

    def test_write_ops_accounted_in_procfs(self):
        d = self.make()
        d.write(0.0, 3 * WRITE_OP_BYTES)
        assert d.procfs.writes_completed == 3

    def test_sub_buffer_writes_merge(self):
        # Block-layer-style merging: small writes coalesce into one op.
        d = self.make()
        d.write(0.0, WRITE_OP_BYTES // 2)
        assert d.procfs.writes_completed == 0
        d.write(0.0, WRITE_OP_BYTES // 2)
        assert d.procfs.writes_completed == 1

    def test_partial_write_op_carries_over(self):
        d = self.make()
        d.write(0.0, WRITE_OP_BYTES + 1)
        assert d.procfs.writes_completed == 1
        d.write(0.0, WRITE_OP_BYTES - 1)
        assert d.procfs.writes_completed == 2

    def test_read_bytes_accounted(self):
        d = self.make()
        d.read(0.0, 1024)
        assert d.procfs.reads_completed == 1
        assert d.procfs.sectors_read == 2

    def test_rejects_negative_io(self):
        d = self.make()
        with pytest.raises(ValueError):
            d.read(0.0, -1)
        with pytest.raises(ValueError):
            d.write(0.0, -1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Disk(ProcFs(), read_bw=0)
        with pytest.raises(ValueError):
            Disk(ProcFs(), seek_s=-1)

    def test_reset(self):
        d = self.make()
        d.read(0.0, 1 << 20)
        d.reset()
        assert d.busy_until == 0.0


class TestNetwork:
    def make_pair(self, bw=125e6):
        a, b = Nic(ProcFs("a"), bw), Nic(ProcFs("b"), bw)
        return a, b, Network(latency_s=0.0)

    def test_transfer_time_matches_bandwidth(self):
        a, b, net = self.make_pair(bw=125e6)
        assert net.transfer(0.0, a, b, 125_000_000) == pytest.approx(1.0)

    def test_latency_added(self):
        a, b, _ = self.make_pair()
        net = Network(latency_s=0.5)
        assert net.transfer(0.0, a, b, 0) == pytest.approx(0.5)

    def test_slowest_nic_limits(self):
        a = Nic(ProcFs("a"), 125e6)
        b = Nic(ProcFs("b"), 12.5e6)
        net = Network(latency_s=0.0)
        assert net.transfer(0.0, a, b, 12_500_000) == pytest.approx(1.0)

    def test_sender_transfers_serialise(self):
        a, b, net = self.make_pair()
        c = Nic(ProcFs("c"), 125e6)
        t1 = net.transfer(0.0, a, b, 125_000_000)
        t2 = net.transfer(0.0, a, c, 125_000_000)
        assert t2 == pytest.approx(t1 + 1.0)

    def test_distinct_pairs_parallel(self):
        a, b, net = self.make_pair()
        c, d = Nic(ProcFs("c"), 125e6), Nic(ProcFs("d"), 125e6)
        t1 = net.transfer(0.0, a, b, 125_000_000)
        t2 = net.transfer(0.0, c, d, 125_000_000)
        assert t1 == pytest.approx(t2)

    def test_rejects_self_transfer(self):
        a, _, net = self.make_pair()
        with pytest.raises(ValueError):
            net.transfer(0.0, a, a, 10)

    def test_procfs_accounting(self):
        a, b, net = self.make_pair()
        net.transfer(0.0, a, b, 1000)
        assert a.procfs.net_tx_bytes == 1000
        assert b.procfs.net_rx_bytes == 1000

    def test_traffic_counters(self):
        a, b, net = self.make_pair()
        net.transfer(0.0, a, b, 1000)
        net.transfer(0.0, a, b, 500)
        assert net.transfers == 2
        assert net.bytes_moved == 1500


class TestOversubscribedFabric:
    def make_four(self, fabric):
        nics = [Nic(ProcFs(f"n{i}"), 125e6) for i in range(4)]
        return nics, Network(latency_s=0.0, fabric_bandwidth=fabric)

    def test_fabric_serialises_disjoint_pairs(self):
        # Non-blocking: two disjoint transfers run in parallel.
        nics, blocking = self.make_four(fabric=None)
        t1 = blocking.transfer(0.0, nics[0], nics[1], 125_000_000)
        t2 = blocking.transfer(0.0, nics[2], nics[3], 125_000_000)
        assert t1 == pytest.approx(t2)
        # Oversubscribed to one port's worth: they serialise.
        nics, fabric = self.make_four(fabric=125e6)
        t1 = fabric.transfer(0.0, nics[0], nics[1], 125_000_000)
        t2 = fabric.transfer(0.0, nics[2], nics[3], 125_000_000)
        assert t2 == pytest.approx(t1 + 1.0)

    def test_fabric_slower_than_nic_limits_single_transfer(self):
        nics, net = self.make_four(fabric=12.5e6)
        done = net.transfer(0.0, nics[0], nics[1], 12_500_000)
        assert done == pytest.approx(1.0)

    def test_fast_fabric_behaves_like_non_blocking(self):
        nics, net = self.make_four(fabric=1e12)
        t1 = net.transfer(0.0, nics[0], nics[1], 125_000_000)
        assert t1 == pytest.approx(1.0, rel=1e-3)

    def test_rejects_nonpositive_fabric(self):
        with pytest.raises(ValueError):
            Network(fabric_bandwidth=0)


class TestNetworkInvariants:
    """Physical invariants every transfer schedule must respect."""

    def make_pair(self, latency=0.0002, fabric=None):
        a, b = Nic(ProcFs("a")), Nic(ProcFs("b"))
        return a, b, Network(latency_s=latency, fabric_bandwidth=fabric)

    @pytest.mark.parametrize("num_bytes", [0, 1, 1000, SEGMENT_BYTES * 3 + 7])
    @pytest.mark.parametrize("now", [0.0, 0.5, 123.456])
    def test_transfer_never_beats_latency(self, now, num_bytes):
        a, b, net = self.make_pair(latency=0.01)
        assert net.transfer(now, a, b, num_bytes) >= now + net.latency_s

    def test_lossy_transfer_never_beats_latency(self):
        a, b, net = self.make_pair(latency=0.01)
        net.configure_loss(loss_rate=0.5, seed=11)
        for i in range(20):
            now = 0.1 * i
            assert net.transfer(now, a, b, 4096) >= now + net.latency_s

    def test_fabric_capped_never_faster_than_uncapped(self):
        # The same transfer schedule through an oversubscribed fabric can
        # only finish later (or equal), never earlier.
        schedule = [(0.0, 0, 1, 10_000_000), (0.0, 2, 3, 20_000_000),
                    (0.1, 0, 3, 5_000_000), (0.2, 2, 1, 30_000_000)]
        for fabric in (200e6, 125e6, 50e6):
            free_nics = [Nic(ProcFs(f"n{i}")) for i in range(4)]
            capped_nics = [Nic(ProcFs(f"n{i}")) for i in range(4)]
            free = Network(latency_s=0.0002)
            capped = Network(latency_s=0.0002, fabric_bandwidth=fabric)
            for now, s, d, size in schedule:
                t_free = free.transfer(now, free_nics[s], free_nics[d], size)
                t_capped = capped.transfer(now, capped_nics[s], capped_nics[d], size)
                assert t_capped >= t_free

    def test_reset_restores_fresh_device_timeline(self):
        a, b, net = self.make_pair()
        net.configure_loss(loss_rate=0.2, seed=5)
        first = [net.transfer(0.0, a, b, 300_000) for _ in range(3)]
        net.reset()
        a.reset()
        b.reset()
        again = [net.transfer(0.0, a, b, 300_000) for _ in range(3)]
        # Identical timeline: busy state, counters *and* the loss rng
        # all return to the fresh-device state.
        assert again == first
        assert net.transfers == 3

    def test_reset_clears_retransmit_counters(self):
        a, b, net = self.make_pair()
        net.configure_loss(loss_rate=0.9, seed=1)
        net.transfer(0.0, a, b, SEGMENT_BYTES * 4)
        assert net.retransmits > 0
        net.reset()
        assert net.retransmits == 0
        assert net.retransmit_bytes == 0
        assert net.bytes_moved == 0


class TestGrayLinks:
    def make_pair(self):
        a, b = Nic(ProcFs("a")), Nic(ProcFs("b"))
        return a, b, Network(latency_s=0.0)

    def test_zero_loss_is_bit_identical_to_unconfigured(self):
        a1, b1, net1 = self.make_pair()
        a2, b2, net2 = self.make_pair()
        net2.configure_loss(loss_rate=0.0, seed=99)
        for size in (0, 1, 1000, SEGMENT_BYTES * 5 + 3):
            assert net2.transfer(0.0, a2, b2, size) == net1.transfer(0.0, a1, b1, size)
        assert net2.retransmits == 0

    def test_loss_is_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            a, b, net = self.make_pair()
            net.configure_loss(loss_rate=0.3, seed=42)
            results.append([net.transfer(0.0, a, b, SEGMENT_BYTES * 8)
                            for _ in range(5)])
        assert results[0] == results[1]

    def test_lossy_link_never_faster_and_charges_wire_bytes(self):
        a1, b1, clean = self.make_pair()
        a2, b2, lossy = self.make_pair()
        lossy.configure_loss(loss_rate=0.4, seed=7)
        size = SEGMENT_BYTES * 16
        t_clean = clean.transfer(0.0, a1, b1, size)
        t_lossy = lossy.transfer(0.0, a2, b2, size)
        assert t_lossy >= t_clean
        # Goodput accounting unchanged; the overhead is tracked separately.
        assert lossy.bytes_moved == size
        assert a2.procfs.net_tx_bytes == size + lossy.retransmit_bytes
        assert b2.procfs.net_rx_bytes == size + lossy.retransmit_bytes
        assert a2.procfs.net_retransmits == lossy.retransmits

    def test_per_link_override_beats_global_rate(self):
        a, b, net = self.make_pair()
        c = Nic(ProcFs("c"))
        net.configure_loss(loss_rate=0.0, link_loss={("a", "b"): 0.9}, seed=3)
        net.transfer(0.0, a, b, SEGMENT_BYTES * 8)
        lossy_retransmits = net.retransmits
        net.transfer(0.0, a, c, SEGMENT_BYTES * 8)
        assert lossy_retransmits > 0
        assert net.retransmits == lossy_retransmits  # clean link added none

    def test_rejects_bad_loss_rates(self):
        _, _, net = self.make_pair()
        with pytest.raises(ValueError):
            net.configure_loss(loss_rate=1.0)
        with pytest.raises(ValueError):
            net.configure_loss(loss_rate=-0.1)
        with pytest.raises(ValueError):
            net.configure_loss(link_loss={("a", "b"): 1.5})
        with pytest.raises(ValueError):
            net.configure_loss(retransmit_timeout_s=-1)
