"""Figure 8: ITLB-miss-caused completed page walks per K-instruction.

Paper shape: the data-analysis workloads walk more than SPECINT/SPECFP
and all HPCC programs; some services (Media Streaming, Data Serving)
walk more than the data-analysis workloads; Naive Bayes again smallest.
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig08(benchmark, suite_chars, chars_by_name, da_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(8, suite_chars))
    print()
    print(render_metric_table(8, suite_chars))

    da_avg = series["avg"]
    # DA walks exceed SPEC CPU and every HPCC program (paper §IV-C).
    assert da_avg > chars_by_name["SPECINT"].metrics.itlb_walks_pki
    assert da_avg > chars_by_name["SPECFP"].metrics.itlb_walks_pki
    assert all(c.metrics.itlb_walks_pki < da_avg for c in hpcc_chars)
    # Media Streaming and Data Serving walk more than the DA average.
    assert chars_by_name["Media Streaming"].metrics.itlb_walks_pki > da_avg
    assert chars_by_name["Data Serving"].metrics.itlb_walks_pki > da_avg
    # Naive Bayes: smallest completed walks of the eleven.
    bayes = chars_by_name["Naive Bayes"].metrics.itlb_walks_pki
    assert bayes <= min(c.metrics.itlb_walks_pki for c in da_chars) + 1e-9
