"""Tests for the Hive planner and session against reference semantics."""

import random

import pytest

from repro.cluster import make_cluster
from repro.hive import HiveSession
from repro.hive.planner import HivePlanError
from repro.hive.schema import Column, Table


@pytest.fixture
def session() -> HiveSession:
    s = HiveSession()
    s.create_table(
        "rankings",
        [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
    )
    s.create_table(
        "uservisits",
        [("sourceIP", "string"), ("destURL", "string"), ("adRevenue", "double")],
    )
    rng = random.Random(42)
    s.load_rows(
        "rankings",
        [(f"url{i}", rng.randrange(100), rng.randrange(10)) for i in range(200)],
    )
    s.load_rows(
        "uservisits",
        [
            (f"ip{rng.randrange(20)}", f"url{rng.randrange(200)}", round(rng.random(), 6))
            for _ in range(1000)
        ],
    )
    return s


class TestSchema:
    def test_column_type_validation(self):
        with pytest.raises(ValueError):
            Column("x", "blob")

    def test_column_coercion(self):
        assert Column("x", "int").coerce("5") == 5
        assert Column("x", "double").coerce(1) == 1.0
        assert Column("x", "string").coerce(3) == "3"
        assert Column("x", "int").coerce(None) is None

    def test_table_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a"), Column("a")])

    def test_table_rejects_wrong_width_row(self):
        t = Table("t", [Column("a"), Column("b")])
        with pytest.raises(ValueError):
            t.insert((1,))

    def test_unknown_column_lookup(self):
        t = Table("t", [Column("a")])
        with pytest.raises(KeyError):
            t.column_index("zz")

    def test_session_duplicate_table(self, session):
        with pytest.raises(ValueError):
            session.create_table("rankings", [("x", "int")])

    def test_session_unknown_table(self, session):
        with pytest.raises(KeyError):
            session.table("ghost")


class TestSelectSemantics:
    def test_select_star_returns_all_rows(self, session):
        r = session.execute("SELECT * FROM rankings")
        assert len(r.rows) == 200
        assert r.columns == ["pageURL", "pageRank", "avgDuration"]

    def test_filter_matches_python_reference(self, session):
        r = session.execute("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 50")
        expected = {
            (url, rank) for url, rank, _ in session.table("rankings").rows if rank > 50
        }
        assert set(r.rows) == expected

    def test_conjunction(self, session):
        r = session.execute(
            "SELECT pageURL FROM rankings WHERE pageRank > 20 AND pageRank <= 40"
        )
        expected = {
            (url,) for url, rank, _ in session.table("rankings").rows if 20 < rank <= 40
        }
        assert set(r.rows) == expected

    def test_like_contains(self, session):
        r = session.execute("SELECT pageURL FROM rankings WHERE pageURL LIKE '%19%'")
        expected = {(u,) for u, _, _ in session.table("rankings").rows if "19" in u}
        assert set(r.rows) == expected

    def test_like_prefix_suffix(self, session):
        r = session.execute("SELECT pageURL FROM rankings WHERE pageURL LIKE 'url1%'")
        assert all(u.startswith("url1") for (u,) in r.rows)
        r2 = session.execute("SELECT pageURL FROM rankings WHERE pageURL LIKE '%9'")
        assert all(u.endswith("9") for (u,) in r2.rows)

    def test_string_equality(self, session):
        r = session.execute("SELECT pageRank FROM rankings WHERE pageURL = 'url7'")
        assert len(r.rows) == 1


class TestAggregationSemantics:
    def test_group_by_sum_matches_reference(self, session):
        r = session.execute(
            "SELECT sourceIP, SUM(adRevenue) AS rev FROM uservisits GROUP BY sourceIP"
        )
        expected: dict[str, float] = {}
        for ip, _, rev in session.table("uservisits").rows:
            expected[ip] = expected.get(ip, 0.0) + rev
        got = dict(r.rows)
        assert set(got) == set(expected)
        for ip in expected:
            assert got[ip] == pytest.approx(expected[ip])

    def test_count_star_global(self, session):
        r = session.execute("SELECT COUNT(*) FROM uservisits")
        assert r.rows == [(1000,)]

    def test_count_star_filtered(self, session):
        r = session.execute("SELECT COUNT(*) FROM rankings WHERE pageRank >= 90")
        expected = sum(1 for _, rank, _ in session.table("rankings").rows if rank >= 90)
        assert r.rows == [(expected,)]

    def test_avg_min_max(self, session):
        r = session.execute(
            "SELECT AVG(pageRank), MIN(pageRank), MAX(pageRank) FROM rankings"
        )
        ranks = [rank for _, rank, _ in session.table("rankings").rows]
        avg, lo, hi = r.rows[0]
        assert avg == pytest.approx(sum(ranks) / len(ranks))
        assert (lo, hi) == (min(ranks), max(ranks))

    def test_non_grouped_plain_column_rejected(self, session):
        with pytest.raises(HivePlanError):
            session.execute("SELECT pageURL, SUM(pageRank) FROM rankings GROUP BY avgDuration")

    def test_multi_column_group(self, session):
        r = session.execute(
            "SELECT avgDuration, COUNT(*) AS n FROM rankings GROUP BY avgDuration"
        )
        total = sum(n for _, n in r.rows)
        assert total == 200


class TestJoinSemantics:
    def test_join_matches_reference(self, session):
        r = session.execute(
            "SELECT r.pageURL, uv.adRevenue FROM rankings r "
            "JOIN uservisits uv ON r.pageURL = uv.destURL WHERE r.pageRank > 80"
        )
        ranks = {u: pr for u, pr, _ in session.table("rankings").rows}
        expected = [
            (dest, rev)
            for _, dest, rev in session.table("uservisits").rows
            if dest in ranks and ranks[dest] > 80
        ]
        assert sorted(r.rows) == sorted(expected)

    def test_join_then_group(self, session):
        r = session.execute(
            "SELECT uv.sourceIP, SUM(uv.adRevenue) AS rev FROM rankings r "
            "JOIN uservisits uv ON r.pageURL = uv.destURL "
            "WHERE r.pageRank > 50 GROUP BY uv.sourceIP"
        )
        ranks = {u: pr for u, pr, _ in session.table("rankings").rows}
        expected: dict[str, float] = {}
        for ip, dest, rev in session.table("uservisits").rows:
            if ranks.get(dest, 0) > 50:
                expected[ip] = expected.get(ip, 0.0) + rev
        got = dict(r.rows)
        assert set(got) == set(expected)
        for ip in expected:
            assert got[ip] == pytest.approx(expected[ip])

    def test_ambiguous_column_rejected(self):
        s = HiveSession()
        s.create_table("a", [("k", "int"), ("x", "int")])
        s.create_table("b", [("k", "int"), ("x", "int")])
        with pytest.raises(HivePlanError):
            s.execute("SELECT x FROM a JOIN b ON a.k = b.k")

    def test_join_condition_must_span_tables(self):
        s = HiveSession()
        s.create_table("a", [("k", "int")])
        s.create_table("b", [("j", "int")])
        with pytest.raises(HivePlanError):
            s.execute("SELECT a.k FROM a JOIN b ON a.k = a.k")


class TestOrderLimit:
    def test_order_by_ascending(self, session):
        r = session.execute("SELECT pageURL, pageRank FROM rankings ORDER BY pageRank")
        ranks = [rank for _, rank in r.rows]
        assert ranks == sorted(ranks)

    def test_order_by_descending_with_limit(self, session):
        r = session.execute(
            "SELECT sourceIP, SUM(adRevenue) AS rev FROM uservisits "
            "GROUP BY sourceIP ORDER BY rev DESC LIMIT 3"
        )
        assert len(r.rows) == 3
        revs = [rev for _, rev in r.rows]
        assert revs == sorted(revs, reverse=True)

    def test_limit_without_order(self, session):
        r = session.execute("SELECT pageURL FROM rankings LIMIT 7")
        assert len(r.rows) == 7

    def test_order_by_unknown_output_column(self, session):
        with pytest.raises(HivePlanError):
            session.execute("SELECT pageURL FROM rankings ORDER BY pageRank")


class TestPlansAndCluster:
    def test_explain_mentions_stages(self, session):
        text = session.explain(
            "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP"
        )
        assert "scan" in text and "aggregate" in text

    def test_join_plan_has_join_stage(self, session):
        text = session.explain(
            "SELECT r.pageURL FROM rankings r JOIN uservisits uv ON r.pageURL = uv.destURL"
        )
        assert "join" in text

    def test_cluster_execution_produces_timelines(self):
        cluster = make_cluster(2, block_size=4096)
        s = HiveSession(cluster=cluster)
        s.create_table("t", [("k", "string"), ("v", "int")])
        rng = random.Random(1)
        s.load_rows("t", [(f"k{rng.randrange(30)}", rng.randrange(10)) for _ in range(500)])
        r = s.execute("SELECT k, SUM(v) FROM t GROUP BY k")
        assert r.job_results
        assert all(jr.timeline is not None for jr in r.job_results)
        assert r.total_duration_s() > 0

    def test_counters_merged_across_stages(self, session):
        r = session.execute(
            "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP"
        )
        # scan stage reads the 1000 input rows; aggregate stage reads its output.
        assert r.counters.map_input_records >= 1000
        assert len(r.job_results) == 2

    def test_unknown_table_rejected(self, session):
        with pytest.raises(HivePlanError):
            session.execute("SELECT * FROM ghost")

    def test_unknown_column_rejected(self, session):
        with pytest.raises(HivePlanError):
            session.execute("SELECT nothere FROM rankings")
