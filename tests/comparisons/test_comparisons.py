"""Tests for the comparison benchmark suites."""

import pytest

from repro.comparisons import (
    COMPARISON_NAMES,
    SERVICE_WORKLOADS,
    all_comparisons,
    comparison,
)
from repro.comparisons.cloudsuite import InvertedIndex, SymProgram, explore
from repro.comparisons.speccpu import dijkstra, lz77_compress, lz77_decompress
from repro.uarch.trace import SyntheticTrace


class TestRegistry:
    def test_fifteen_comparisons(self):
        assert len(COMPARISON_NAMES) == 15
        assert len(all_comparisons()) == 15

    def test_suites(self):
        suites = {c.suite for c in all_comparisons()}
        assert suites == {"CloudSuite", "SPEC CPU2006", "SPECweb2005", "HPCC"}

    def test_hpcc_has_seven_programs(self):
        hpcc = [c for c in all_comparisons() if c.suite == "HPCC"]
        assert len(hpcc) == 7

    def test_cloudsuite_has_five_here(self):
        # The sixth CloudSuite benchmark (Naive Bayes) lives in workloads.
        cloud = [c for c in all_comparisons() if c.suite == "CloudSuite"]
        assert len(cloud) == 5

    def test_service_grouping_matches_paper(self):
        # Four of six CloudSuite benchmarks + SPECweb (Section I).
        assert SERVICE_WORKLOADS == {
            "Media Streaming", "Data Serving", "Web Search", "Web Serving", "SPECWeb",
        }

    def test_unknown_comparison(self):
        with pytest.raises(KeyError):
            comparison("HPCC-LINPACK9000")

    def test_trace_specs_generate(self):
        for c in all_comparisons():
            spec = c.trace_spec(1500)
            assert sum(1 for _ in SyntheticTrace(spec)) == 1500


class TestHpccKernels:
    def test_hpl_residual_small(self):
        metrics = comparison("HPCC-HPL").run(scale=0.5).metrics
        assert metrics["residual"] < 1e-8

    def test_dgemm_matches_numpy(self):
        metrics = comparison("HPCC-DGEMM").run(scale=0.5).metrics
        assert metrics["max_error"] < 1e-9

    def test_stream_checksum(self):
        metrics = comparison("HPCC-STREAM").run(scale=0.2).metrics
        assert metrics["checksum_error"] < 1e-12

    def test_ptrans_exact(self):
        metrics = comparison("HPCC-PTRANS").run(scale=0.3).metrics
        assert metrics["max_error"] == 0.0

    def test_randomaccess_self_inverse(self):
        metrics = comparison("HPCC-RandomAccess").run(scale=0.6).metrics
        assert metrics["errors"] == 0

    def test_fft_matches_numpy(self):
        metrics = comparison("HPCC-FFT").run(scale=0.7).metrics
        assert metrics["relative_error"] < 1e-9

    def test_comm_reports_latency_and_bandwidth(self):
        metrics = comparison("HPCC-COMM").run(scale=0.5).metrics
        assert metrics["latency_s"] > 0
        assert metrics["ring_bandwidth_Bps"] > 1e6

    def test_hpcc_kernel_fractions_small_except_randomaccess(self):
        for c in all_comparisons():
            if c.suite != "HPCC":
                continue
            f = c.trace_spec(1000).kernel_fraction
            if c.name == "HPCC-RandomAccess":
                assert f == pytest.approx(0.31, abs=0.01)  # §IV-A
            elif c.name == "HPCC-COMM":
                assert f > 0.1  # message passing
            else:
                assert f < 0.05


class TestSpecCpu:
    def test_lz77_roundtrip(self):
        for text in (b"", b"a", b"abcabcabcabc", b"the quick " * 30):
            assert lz77_decompress(lz77_compress(text)) == text

    def test_lz77_compresses_repetitive_text(self):
        text = b"abc" * 100
        tokens = lz77_compress(text)
        assert 3 * len(tokens) < len(text)

    def test_dijkstra_simple_graph(self):
        adjacency = {0: [(1, 2), (2, 9)], 1: [(2, 3)], 2: []}
        dist = dijkstra(adjacency, 0)
        assert dist == {0: 0, 1: 2, 2: 5}

    def test_specint_runs(self):
        metrics = comparison("SPECINT").run(scale=0.3).metrics
        assert metrics["compression_ratio"] > 1.0

    def test_specfp_runs(self):
        metrics = comparison("SPECFP").run(scale=0.3).metrics
        assert 0 < metrics["stencil_mean"] < 1.0


class TestSpecWeb:
    def test_money_conserved(self):
        metrics = comparison("SPECWeb").run(scale=0.5).metrics
        assert metrics["conservation_error"] == 0.0

    def test_requests_served(self):
        metrics = comparison("SPECWeb").run(scale=0.5).metrics
        assert metrics["requests"] > 1000

    def test_kernel_heavy_profile(self):
        # Figure 4: services execute > 40 % kernel-mode instructions.
        assert comparison("SPECWeb").trace_spec(1000).kernel_fraction > 0.4


class TestCloudSuite:
    def test_data_serving_mix_is_50_50(self):
        metrics = comparison("Data Serving").run(scale=0.4).metrics
        assert metrics["read_update_ratio"] == pytest.approx(1.0, abs=0.15)
        assert metrics["misses"] == 0

    def test_media_streaming_delivers(self):
        metrics = comparison("Media Streaming").run(scale=0.5).metrics
        assert metrics["delivered_bytes"] > 0
        assert metrics["stalls"] == 0

    def test_media_streaming_has_biggest_code_footprint(self):
        streaming = comparison("Media Streaming").trace_spec(1000)
        others = [c.trace_spec(1000) for c in all_comparisons() if c.name != "Media Streaming"]
        assert all(streaming.code_footprint >= o.code_footprint for o in others)

    def test_software_testing_path_counts(self):
        metrics = comparison("Software Testing").run(scale=0.5).metrics
        assert 1 <= metrics["feasible_paths"] <= metrics["path_bound"]

    def test_symbolic_explorer_exact_on_known_program(self):
        # x < 10 then x >= 5: paths are x<5, 5<=x<10, x>=10 → 3 feasible.
        program = SymProgram((("lt", 10), ("ge", 5)))
        assert explore(program, 0, 100) == 3

    def test_web_search_answers_queries(self):
        metrics = comparison("Web Search").run(scale=0.3).metrics
        assert metrics["answered"] == metrics["queries"]

    def test_inverted_index_ranking(self):
        index = InvertedIndex()
        index.add("d1", "apple banana apple")
        index.add("d2", "banana cherry")
        hits = index.search(["apple"])
        assert hits[0][0] == "d1"
        assert len(hits) == 1

    def test_web_serving_renders(self):
        metrics = comparison("Web Serving").run(scale=0.3).metrics
        assert metrics["pages"] > 0
        assert metrics["events"] > 0

    def test_service_profiles_are_kernel_heavy(self):
        for name in SERVICE_WORKLOADS:
            spec = comparison(name).trace_spec(1000)
            assert spec.kernel_fraction >= 0.4, name

    def test_service_profiles_have_big_code(self):
        for name in SERVICE_WORKLOADS:
            spec = comparison(name).trace_spec(1000)
            assert spec.code_footprint >= 1024 * 1024, name
