"""WordCount — Table I row 2 (Hadoop example).

Splits Zipf text into words and counts occurrences, with a combiner (the
classic Hadoop example configuration).  Per record it does real work
(tokenising, hashing) but touches only a small dictionary, so it sits in
the paper's "middle IPC, low kernel, decent locality" cluster.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register


def _wc_map(key, text):
    for word in text.split():
        yield word, 1


def _wc_reduce(word, counts):
    yield word, sum(counts)


@register
class WordCountWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="WordCount",
        input_description="154 GB documents",
        input_gb_low=154,
        retired_instructions_1e9=3533,
        source="Hadoop example",
        scenarios=(
            ("search engine", "Word frequency count"),
            ("social network", "Calculating the TF-IDF value"),
            ("electronic commerce", "Obtaining the user operations count"),
        ),
        table1_row=2,
    )

    BASE_DOCS = 1200

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        docs = datagen.generate_documents(max(1, int(self.BASE_DOCS * scale)))
        job = MapReduceJob(
            _wc_map,
            _wc_reduce,
            JobConf(
                name="wordcount",
                num_reduces=12,
                # Tokenisation + hashing per word: noticeably more CPU per
                # input byte than Sort.
                map_cost_per_record=4e-6,
                map_cost_per_byte=3e-8,
                reduce_cost_per_record=1e-6,
            ),
            combiner=_wc_reduce,
        )
        result = engine.execute(job, docs, cluster=cluster, input_name="wc-input")
        return self._merge_results(
            self.info.name, [result], dict(result.output), documents=len(docs)
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Tokenising is integer/character work; counting hits a hash map.
            "load_fraction": 0.27,
            "store_fraction": 0.10,
            "fp_fraction": 0.0,
            "regions": (
                # streaming the text corpus (rarely touched per instruction:
                # Table I gives ~23 retired instructions per input byte)
                MemoryRegion("corpus", 128 << 20, 0.18, "sequential"),
                # the word hash table: Zipf keys make it strongly hot-skewed
                MemoryRegion("word-table", 2 << 20, 0.4, "random", burst=4,
                             hot_fraction=0.1, hot_weight=0.95),
            ),
            "kernel_fraction": 0.035,
            # Tokeniser inner loops are short and data-dependent (whitespace
            # scanning) — slightly lower regularity than pure framework code.
            "branch_regularity": 0.96,
            "mean_block_len": 6.0,
            "dep_mean": 3.2,
            "dep_density": 0.68,
        }
