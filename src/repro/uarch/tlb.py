"""TLB models and the hardware page walker.

The Westmere translation path the paper describes: a small first-level
ITLB/DTLB (64 entries each, 4-way), a unified 512-entry second-level TLB,
and a hardware page walker that fills both on a second-level miss.  The
paper's Figures 8 and 11 count *completed page walks* — i.e. accesses that
missed both TLB levels — per thousand instructions; :class:`TlbHierarchy`
exposes exactly that counter.
"""

from __future__ import annotations

from repro.uarch.config import TlbConfig


class Tlb:
    """Set-associative TLB with LRU replacement, keyed by virtual page."""

    __slots__ = (
        "config",
        "name",
        "_sets",
        "_num_sets",
        "_set_mask",
        "_page_shift",
        "ways",
        "hits",
        "misses",
    )

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.name = config.name
        num_sets = config.num_sets
        if config.page_bytes & (config.page_bytes - 1):
            raise ValueError(f"{config.name}: page size must be a power of two")
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._num_sets = num_sets
        # Power-of-two set counts (every shipped TLB geometry) index with a
        # precomputed mask; odd geometries fall back to modulo.
        self._set_mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        self._page_shift = config.page_bytes.bit_length() - 1
        self.ways = config.associativity
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def set_index(self, page: int) -> int:
        """Map a virtual page to its set (mask when power-of-two sets)."""
        mask = self._set_mask
        return page & mask if mask is not None else page % self._num_sets

    def access(self, addr: int) -> bool:
        """Translate *addr*; return True on hit.  Misses allocate the PTE."""
        page = addr >> self._page_shift
        mask = self._set_mask
        ways = self._sets[page & mask if mask is not None else page % self._num_sets]
        if page in ways:
            if ways[0] != page:
                ways.remove(page)
                ways.insert(0, page)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, page)
        if len(ways) > self.ways:
            ways.pop()
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


class PageWalker:
    """Hardware page walker: charges a fixed walk latency per completed walk."""

    __slots__ = ("walk_latency", "completed_walks")

    def __init__(self, walk_latency: int) -> None:
        if walk_latency < 0:
            raise ValueError("walk latency must be non-negative")
        self.walk_latency = walk_latency
        self.completed_walks = 0

    def walk(self) -> int:
        """Perform one walk; return its latency in cycles."""
        self.completed_walks += 1
        return self.walk_latency

    def reset_counters(self) -> None:
        self.completed_walks = 0


class TlbHierarchy:
    """First-level TLB backed by a shared second-level TLB and page walker.

    Both the instruction side (ITLB) and the data side (DTLB) instantiate
    one of these over the *same* second-level TLB and walker, mirroring the
    unified L2 TLB of the real part.
    """

    __slots__ = ("l1", "l2", "walker", "completed_walks")

    def __init__(self, l1: Tlb, l2: Tlb, walker: PageWalker) -> None:
        self.l1 = l1
        self.l2 = l2
        self.walker = walker
        #: completed page walks caused by this side's L1 TLB misses
        #: (the paper's per-K-instruction numerator).
        self.completed_walks = 0

    def translate(self, addr: int) -> int:
        """Translate *addr*; return the added latency in cycles (0 on L1 hit)."""
        if self.l1.access(addr):
            return 0
        if self.l2.access(addr):
            # Second-level hit: small refill penalty, no walk.
            return 7
        self.completed_walks += 1
        return self.walker.walk()

    def reset_counters(self) -> None:
        self.l1.reset_counters()
        self.completed_walks = 0
