"""Workload interface, metadata and registry.

Every workload couples three things:

1. **Metadata** (:class:`WorkloadInfo`): the paper's Table I row (input
   data size and retired-instruction count on the real cluster, source of
   the implementation) and Table II application scenarios.
2. **Real execution** (:meth:`DataAnalysisWorkload.run`): the algorithm
   implemented on the MapReduce/Hive substrate, returning outputs, merged
   Hadoop counters and (with a cluster) job timelines.  This is what the
   speedup (Figure 2) and disk-write (Figure 5) experiments measure.
3. **Micro-architectural profile** (:meth:`DataAnalysisWorkload.uarch_profile`):
   the declared TraceSpec characteristics — instruction mix, code
   footprint, working-set structure, branch regularity, kernel share —
   from which the core simulator produces the Figure 3–12 counters.  Each
   workload documents *why* its profile looks the way it does.

All eleven workloads run on the JVM inside the Hadoop/Mahout framework in
the paper, so they share framework-level profile defaults
(:data:`HADOOP_FRAMEWORK_PROFILE`): a multi-hundred-KB hot instruction
footprint (JIT-compiled framework + library code — the front-end pressure
of Figures 6–8), moderate branch regularity, and a few percent of
kernel-mode work from HDFS I/O.  Individual workloads override the parts
the algorithm changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import HadoopCluster, JobTimeline
from repro.cluster.faults import FaultyCluster, FaultyTimeline
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.engine import JobResult, LocalEngine
from repro.uarch.trace import MemoryRegion, TraceSpec


@dataclass(frozen=True)
class WorkloadInfo:
    """Table I + Table II metadata for one workload."""

    name: str
    input_description: str          # Table I "Input Data"
    input_gb_low: int               # paper input size (GB)
    retired_instructions_1e9: int   # Table I "#Retired Instructions (Billions)"
    source: str                     # Table I "Source"
    scenarios: tuple[tuple[str, str], ...] = ()  # Table II (domain, scenario)
    table1_row: int = 0


@dataclass
class WorkloadRun:
    """Result of one real workload execution."""

    name: str
    output: Any
    counters: JobCounters
    job_results: list[JobResult] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def timelines(self) -> list[JobTimeline | FaultyTimeline]:
        return [r.timeline for r in self.job_results if r.timeline is not None]

    @property
    def duration_s(self) -> float:
        """Total simulated wall time across the workload's jobs."""
        return sum(t.duration_s for t in self.timelines)

    def disk_writes_per_second(self) -> float:
        """Cluster-average disk write ops/s over the workload's jobs
        (the Figure 5 metric).  Requires a clustered run."""
        timelines = self.timelines
        if not timelines:
            raise ValueError("disk rates need a clustered run (pass cluster= to run())")
        # Aggregate: total writes across slaves / total duration.
        per_node: dict[str, float] = {}
        for timeline in timelines:
            for node_name, rate in timeline.disk_writes_per_second.items():
                per_node[node_name] = per_node.get(node_name, 0.0) + rate * timeline.duration_s
        total_time = self.duration_s
        if total_time <= 0:
            return 0.0
        return sum(per_node.values()) / len(per_node) / total_time


#: Framework-level profile shared by all Hadoop/Mahout workloads: the
#: JVM + Hadoop stack dominates the instruction footprint regardless of
#: the algorithm ("large binary size complicated by high-level language
#: and third-party libraries", §IV-C).
HADOOP_FRAMEWORK_PROFILE: dict[str, Any] = {
    # Hadoop + JVM hot code: several hundred KB (framework, serialization,
    # compression, JIT stubs) — drives the ~23 L1I MPKI the paper measures.
    "code_footprint": 640 * 1024,
    "hot_code_fraction": 0.25,
    "hot_code_weight": 0.92,
    "call_fraction": 0.16,
    "indirect_fraction": 0.04,     # virtual dispatch in JVM code
    "indirect_targets": 3,
    "mean_block_len": 7.0,
    # Framework loops are regular; data-dependent branches are the minority
    # ("simple algorithms chosen for big data", §IV-E).
    "loop_branch_fraction": 0.5,
    "mean_trip_count": 24.0,
    "branch_regularity": 0.97,
    "taken_bias": 0.55,
    # Managed-runtime ILP: short dependency chains through object headers.
    "dep_mean": 3.5,
    "dep_density": 0.7,
    "partial_register_ratio": 0.06,
    # HDFS I/O syscalls: ~4 % kernel instructions on average (Figure 4).
    "kernel_fraction": 0.04,
    "kernel_episode_len": 150,
    "kernel_code_footprint": 160 * 1024,
    "kernel_buffer_bytes": 1 << 20,
}


class DataAnalysisWorkload(ABC):
    """Base class: metadata + execution + micro-architectural profile."""

    info: WorkloadInfo

    # -- real execution -------------------------------------------------------

    @abstractmethod
    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | FaultyCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        """Execute the workload for real at *scale* (1.0 = default MB-scale
        input).  With a cluster, job timelines are attached; with a
        :class:`FaultyCluster` they carry resilience accounting too."""

    # -- micro-architecture ----------------------------------------------------

    @abstractmethod
    def uarch_profile(self) -> dict[str, Any]:
        """TraceSpec overrides for this workload (on top of the framework
        profile).  Every override carries a justification comment in the
        workload module."""

    def trace_spec(self, instructions: int, seed: int | None = None) -> TraceSpec:
        """Build the workload's TraceSpec at paper-scale footprints.

        A shared JVM allocation region (TLAB bump-pointer allocation over a
        reused young generation) is prepended to every workload's declared
        regions: Table I shows these jobs retire 20–30 instructions per
        input byte, so the bulk of their memory traffic is framework heap
        churn with strong locality, not the input scan itself.
        """
        params = dict(HADOOP_FRAMEWORK_PROFILE)
        params.update(self.uarch_profile())
        regions = params.get("regions", ())
        params["regions"] = (
            MemoryRegion("jvm-tlab", 4 << 20, 1.0, "sequential"),
        ) + tuple(regions)
        if seed is not None:
            params["seed"] = seed
        else:
            params.setdefault("seed", 20130730 + self.info.table1_row)
        return TraceSpec(name=self.info.name, instructions=instructions, **params)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _merge_results(name: str, results: list[JobResult], output, **details) -> WorkloadRun:
        counters = JobCounters()
        for result in results:
            counters.merge(result.counters)
        return WorkloadRun(
            name=name, output=output, counters=counters, job_results=list(results),
            details=details,
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[DataAnalysisWorkload]] = {}

#: Table I order.
WORKLOAD_NAMES = [
    "Sort",
    "WordCount",
    "Grep",
    "Naive Bayes",
    "SVM",
    "K-means",
    "Fuzzy K-means",
    "IBCF",
    "HMM",
    "PageRank",
    "Hive-bench",
]


def register(cls: type[DataAnalysisWorkload]) -> type[DataAnalysisWorkload]:
    """Class decorator: add a workload to the registry."""
    name = cls.info.name
    if name in _REGISTRY:
        raise ValueError(f"workload {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def workload(name: str) -> DataAnalysisWorkload:
    """Instantiate a registered workload by its Table I name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> list[DataAnalysisWorkload]:
    """All eleven workloads in Table I order."""
    _ensure_loaded()
    return [workload(name) for name in WORKLOAD_NAMES]


def _ensure_loaded() -> None:
    """Import the workload modules so their @register decorators run."""
    from repro.workloads import (  # noqa: F401
        fuzzy_kmeans,
        grep,
        hive_bench,
        hmm,
        ibcf,
        kmeans,
        naive_bayes,
        pagerank,
        sort,
        svm,
        wordcount,
    )
