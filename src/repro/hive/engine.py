"""Hive session: tables + query execution over the MapReduce engine.

Alongside plain execution the session hosts an optional **query/result
materialization cache** (:class:`MaterializationCache`): production
warehouse traffic is dominated by recurring queries (Redbench, SNIPPETS),
so a recurring statement whose input tables have not changed can return
its materialised rows instead of recomputing the whole MapReduce stage
chain.  The cache rides the :mod:`repro.core.simcache` idioms —
content-addressed keys (:func:`~repro.hive.planner.plan_fingerprint`
over the literal-keeping canonical query plus every input table's
uid/version), hits required to be bit-identical to cold runs, and an
escape hatch (``REPRO_RESULT_CACHE=0`` or ``enabled=False``).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.cluster.cluster import HadoopCluster
from repro.hive.parser import (
    CreateTableAs,
    DropTable,
    parse_query,
    parse_statement,
    split_statements,
)
from repro.hive.planner import QueryPlan, plan_fingerprint, plan_query, template_digest
from repro.hive.schema import Column, Table
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.engine import JobResult, LocalEngine


@dataclass
class QueryExecution:
    """Result of one SQL statement.

    ``cached`` marks a materialization-cache hit: ``rows``/``columns``
    are bit-identical to a cold run, ``job_results`` is empty (nothing
    was scheduled) and ``saved_s`` carries the simulated duration the
    cold execution had cost.
    """

    sql: str
    columns: list[str]
    rows: list[tuple]
    plan: QueryPlan
    job_results: list[JobResult] = field(default_factory=list)
    cached: bool = False
    saved_s: float = 0.0

    @property
    def counters(self) -> JobCounters:
        """Counters merged across all stages."""
        merged = JobCounters()
        for result in self.job_results:
            merged.merge(result.counters)
        return merged

    def total_duration_s(self) -> float:
        return sum(
            r.timeline.duration_s for r in self.job_results if r.timeline is not None
        )


def result_cache_enabled(default: bool = True) -> bool:
    """Honour the ``REPRO_RESULT_CACHE`` escape hatch (0/false/off disable)."""
    value = os.environ.get("REPRO_RESULT_CACHE")
    if value is None:
        return default
    return value.strip().lower() not in {"0", "false", "off", "no", ""}


@dataclass
class CacheStats:
    """Hit/miss and latency-win accounting for one bucket (or overall)."""

    hits: int = 0
    misses: int = 0
    #: simulated seconds *not* re-run because a hit served the rows
    saved_s: float = 0.0
    #: simulated seconds actually spent executing on misses
    executed_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "saved_s": self.saved_s,
            "executed_s": self.executed_s,
        }


@dataclass(frozen=True)
class _CacheEntry:
    """One materialised result: immutable rows + the cold cost."""

    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    cold_duration_s: float
    template: str


class MaterializationCache:
    """In-memory content-addressed cache of query results.

    Keys come from :func:`~repro.hive.planner.plan_fingerprint`, so a hit
    requires the same canonical statement (literals included) *and*
    unchanged input tables.  Results are stored as immutable tuples and
    copied out on every hit, so callers can never corrupt an entry.

    ``bucket`` is an accounting label (e.g. a Redbench repetitiveness
    bucket): while set, hits/misses/latency wins are also tallied
    per-bucket in :attr:`by_bucket`, which is how the per-bucket payoff
    curves are measured.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = result_cache_enabled() if enabled is None else enabled
        self._entries: dict[str, _CacheEntry] = {}
        self.stats = CacheStats()
        self.bucket: str | None = None
        self.by_bucket: dict[str, CacheStats] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _tallies(self) -> list[CacheStats]:
        tallies = [self.stats]
        if self.bucket is not None:
            tallies.append(self.by_bucket.setdefault(self.bucket, CacheStats()))
        return tallies

    def lookup(self, key: str) -> _CacheEntry | None:
        entry = self._entries.get(key)
        if entry is not None:
            for stats in self._tallies():
                stats.hits += 1
                stats.saved_s += entry.cold_duration_s
        return entry

    def record_miss(self, executed_s: float) -> None:
        if not (math.isfinite(executed_s) and executed_s >= 0):
            raise ValueError("executed_s must be finite and non-negative")
        for stats in self._tallies():
            stats.misses += 1
            stats.executed_s += executed_s

    def store(self, key: str, execution: QueryExecution) -> None:
        self._entries[key] = _CacheEntry(
            columns=tuple(execution.columns),
            rows=tuple(tuple(row) for row in execution.rows),
            cold_duration_s=execution.total_duration_s(),
            template=template_digest(execution.plan.query),
        )

    def clear(self) -> int:
        """Explicit invalidation; returns the number of entries dropped."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def to_dict(self) -> dict:
        return {
            "entries": len(self._entries),
            "stats": self.stats.to_dict(),
            "by_bucket": {
                name: stats.to_dict() for name, stats in sorted(self.by_bucket.items())
            },
        }


class HiveSession:
    """A warehouse session: CREATE-like table registration plus SELECTs.

    With a :class:`~repro.cluster.cluster.HadoopCluster` attached, every
    compiled stage is also scheduled on the cluster, so Hive queries
    produce job timelines exactly like hand-written MapReduce jobs.
    """

    def __init__(
        self,
        engine: LocalEngine | None = None,
        cluster: HadoopCluster | None = None,
        result_cache: MaterializationCache | None = None,
    ):
        self.engine = engine or LocalEngine()
        self.cluster = cluster
        self.result_cache = result_cache
        self.tables: dict[str, Table] = {}

    # -- DDL-ish -------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column | tuple[str, str]]) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        cols = [c if isinstance(c, Column) else Column(*c) for c in columns]
        table = Table(name, cols)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def load_rows(self, name: str, rows) -> None:
        self.table(name).extend(rows)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no such table: {name!r}") from None

    # -- queries -------------------------------------------------------------

    def explain(self, sql: str) -> str:
        query = parse_query(sql)
        return plan_query(query, self.tables).describe()

    def execute_statement(self, sql: str) -> QueryExecution | None:
        """Run one statement of any kind.

        SELECTs return a :class:`QueryExecution`; ``CREATE TABLE … AS``
        materialises the result as a new table (column types inferred
        from the first row) and returns the underlying execution; ``DROP
        TABLE`` returns None.
        """
        statement = parse_statement(sql)
        if isinstance(statement, DropTable):
            self.drop_table(statement.table)
            return None
        if isinstance(statement, CreateTableAs):
            execution = self._run_query(statement.query, sql)
            columns = [
                Column(_safe_column_name(name), _infer_type(execution.rows, index))
                for index, name in enumerate(execution.columns)
            ]
            table = self.create_table(statement.table, columns)
            table.extend(execution.rows)
            return execution
        return self._run_query(statement, sql)

    def execute_script(self, script: str) -> list[QueryExecution]:
        """Run a ;-separated script; returns the SELECT/CTAS executions."""
        executions = []
        for sql in split_statements(script):
            execution = self.execute_statement(sql)
            if execution is not None:
                executions.append(execution)
        return executions

    def execute(self, sql: str) -> QueryExecution:
        """Parse, plan and run one SELECT; return rows and job results."""
        query = parse_query(sql)
        return self._run_query(query, sql)

    def _run_query(self, query, sql: str) -> QueryExecution:
        plan = plan_query(query, self.tables)
        cache = self.result_cache
        key = None
        if cache is not None and cache.enabled:
            key = plan_fingerprint(query, self.tables)
            entry = cache.lookup(key)
            if entry is not None:
                self._record_cache(hit=True)
                return QueryExecution(
                    sql=sql,
                    columns=list(entry.columns),
                    rows=list(entry.rows),
                    plan=plan,
                    job_results=[],
                    cached=True,
                    saved_s=entry.cold_duration_s,
                )
        rows: list[tuple] | None = None
        job_results: list[JobResult] = []
        for stage in plan.stages:
            records = stage.input_builder(rows)
            result = self.engine.execute(stage.job, records, cluster=self.cluster)
            job_results.append(result)
            rows = [value for _key, value in result.output]
        assert rows is not None
        if query.order_by is not None and query.order_by.descending:
            rows = rows[::-1]
        if query.limit is not None:
            rows = rows[: query.limit]
        execution = QueryExecution(
            sql=sql,
            columns=plan.output_columns,
            rows=rows,
            plan=plan,
            job_results=job_results,
        )
        if key is not None:
            cache.record_miss(execution.total_duration_s())
            cache.store(key, execution)
            self._record_cache(hit=False)
        return execution

    def _record_cache(self, hit: bool) -> None:
        """Count a cache outcome on the attached cluster's master procfs."""
        if self.cluster is None:
            return
        master = getattr(self.cluster, "master", None)
        if master is None:  # e.g. a FaultyCluster wrapper
            master = getattr(getattr(self.cluster, "cluster", None), "master", None)
        if master is not None:
            if hit:
                master.procfs.record_result_cache_hit()
            else:
                master.procfs.record_result_cache_miss()


def _safe_column_name(name: str) -> str:
    """Make an output-column label a valid identifier (CTAS columns).

    Unaliased aggregates render as e.g. ``sum(adRevenue)``; Hive likewise
    rewrites them (``_c1``) — we keep the readable base instead.
    """
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"c_{cleaned}"
    return cleaned.strip("_") or "col"


def _infer_type(rows: list[tuple], index: int) -> str:
    """Infer a column type from the first non-None value."""
    for row in rows:
        value = row[index]
        if value is None:
            continue
        if isinstance(value, bool):
            return "int"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "double"
        return "string"
    return "string"
