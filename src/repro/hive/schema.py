"""Warehouse schema objects: typed columns and row tables.

Tables carry two pieces of identity the result-materialization cache
keys on: a process-wide unique ``uid`` (so a dropped-and-recreated table
of the same name can never serve a stale cached result) and a mutation
``version`` that bumps on every insert (so a cache entry is only valid
for the exact table contents it was computed against).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

#: Supported column types and their Python representations.
TYPES = {
    "string": str,
    "int": int,
    "double": float,
}


@dataclass(frozen=True)
class Column:
    """One table column."""

    name: str
    type: str = "string"

    def __post_init__(self) -> None:
        if self.type not in TYPES:
            raise ValueError(f"unsupported column type {self.type!r}; one of {sorted(TYPES)}")
        if not self.name.isidentifier():
            raise ValueError(f"column name must be an identifier, got {self.name!r}")

    def coerce(self, value):
        """Coerce *value* to the column's Python type (None passes through)."""
        if value is None:
            return None
        return TYPES[self.type](value)


#: process-wide table identity counter (see :class:`Table`).
_TABLE_UIDS = itertools.count()


class Table:
    """An in-warehouse table: schema + rows (tuples in column order).

    ``uid`` is unique per Table object for the process lifetime;
    ``version`` counts mutations (one bump per inserted row).  Together
    they version the table's contents for the result cache.
    """

    def __init__(self, name: str, columns: list[Column], rows: list[tuple] | None = None):
        if not name.isidentifier():
            raise ValueError(f"table name must be an identifier, got {name!r}")
        if not columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}
        self.rows: list[tuple] = []
        self.uid = next(_TABLE_UIDS)
        self.version = 0
        if rows:
            for row in rows:
                self.insert(row)

    def column_index(self, column_name: str) -> int:
        try:
            return self._index[column_name]
        except KeyError:
            known = ", ".join(self._index)
            raise KeyError(
                f"table {self.name!r} has no column {column_name!r} (columns: {known})"
            ) from None

    def has_column(self, column_name: str) -> bool:
        return column_name in self._index

    def insert(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} != table {self.name!r} width {len(self.columns)}"
            )
        self.rows.append(tuple(col.coerce(v) for col, v in zip(self.columns, row)))
        self.version += 1

    def extend(self, rows) -> None:
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.type}" for c in self.columns)
        return f"<Table {self.name}({cols}) rows={len(self.rows)}>"
