"""Plan fingerprint stability (property-based).

The Redbench template identity: the same SQL modulo literals and
whitespace must canonicalize to the same *template* digest, while the
literal-keeping *query* digest separates different parameters, and the
full cache key (:func:`plan_fingerprint`) additionally tracks every
input table's identity and version.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hive import (
    HiveSession,
    canonical_query,
    parse_query,
    plan_fingerprint,
    query_digest,
    template_digest,
)

literals = st.integers(min_value=0, max_value=10_000)
spaces = st.text(alphabet=" ", min_size=1, max_size=4)


def spaced(sql: str, ws: str) -> str:
    return sql.replace(" ", ws)


def make_session() -> HiveSession:
    s = HiveSession()
    s.create_table(
        "rankings",
        [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
    )
    s.create_table(
        "uservisits",
        [
            ("sourceIP", "string"),
            ("destURL", "string"),
            ("adRevenue", "double"),
            ("searchWord", "string"),
        ],
    )
    return s


class TestTemplateDigest:
    @given(a=literals, b=literals)
    @settings(max_examples=40, deadline=None)
    def test_literal_independence(self, a, b):
        """Same statement template, any literals → same template digest."""
        sql_a = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {a}"
        sql_b = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {b}"
        assert template_digest(sql_a) == template_digest(sql_b)

    @given(value=literals, ws=spaces)
    @settings(max_examples=40, deadline=None)
    def test_whitespace_independence(self, value, ws):
        sql = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {value}"
        assert template_digest(sql) == template_digest(spaced(sql, ws))

    @given(a=literals, b=literals)
    @settings(max_examples=40, deadline=None)
    def test_query_digest_separates_literals(self, a, b):
        sql_a = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {a}"
        sql_b = f"SELECT pageURL, pageRank FROM rankings WHERE pageRank > {b}"
        if a == b:
            assert query_digest(sql_a) == query_digest(sql_b)
        else:
            assert query_digest(sql_a) != query_digest(sql_b)

    def test_different_templates_have_different_digests(self):
        assert template_digest(
            "SELECT pageURL FROM rankings WHERE pageRank > 1"
        ) != template_digest(
            "SELECT pageURL FROM rankings WHERE avgDuration > 1"
        )

    def test_join_template_is_literal_independent(self):
        a = template_digest(
            "SELECT uv.sourceIP, SUM(uv.adRevenue) AS t FROM rankings r "
            "JOIN uservisits uv ON r.pageURL = uv.destURL "
            "WHERE r.pageRank > 50 GROUP BY uv.sourceIP ORDER BY t DESC LIMIT 10"
        )
        b = template_digest(
            "SELECT uv.sourceIP, SUM(uv.adRevenue) AS t FROM rankings r "
            "JOIN uservisits uv ON r.pageURL = uv.destURL "
            "WHERE r.pageRank > 99 GROUP BY uv.sourceIP ORDER BY t DESC LIMIT 99"
        )
        assert a == b

    def test_canonical_form_masks_literals_on_request(self):
        sql = "SELECT pageURL FROM rankings WHERE pageRank > 123 LIMIT 7"
        masked = canonical_query(parse_query(sql), mask_literals=True)
        kept = canonical_query(parse_query(sql))
        assert "123" not in masked and "7" not in masked
        assert "123" in kept and "7" in kept


class TestPlanFingerprint:
    SQL = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100"

    def test_stable_for_identical_state(self):
        session = make_session()
        query = parse_query(self.SQL)
        assert plan_fingerprint(query, session.tables) == plan_fingerprint(
            query, session.tables
        )

    def test_version_bump_changes_the_key(self):
        session = make_session()
        query = parse_query(self.SQL)
        before = plan_fingerprint(query, session.tables)
        session.load_rows("rankings", [("url", 1, 1)])
        assert plan_fingerprint(query, session.tables) != before

    def test_fresh_table_object_changes_the_key(self):
        # drop-and-recreate yields a new uid: same name, same (zero)
        # version, different key — the staleness guard.
        a = plan_fingerprint(parse_query(self.SQL), make_session().tables)
        b = plan_fingerprint(parse_query(self.SQL), make_session().tables)
        assert a != b

    def test_untouched_tables_do_not_leak_into_the_key(self):
        session = make_session()
        query = parse_query(self.SQL)
        before = plan_fingerprint(query, session.tables)
        session.load_rows("uservisits", [("ip", "url", 0.5, "w")])
        assert plan_fingerprint(query, session.tables) == before

    def test_join_keys_track_both_tables(self):
        session = make_session()
        sql = (
            "SELECT uv.sourceIP, SUM(uv.adRevenue) AS t FROM rankings r "
            "JOIN uservisits uv ON r.pageURL = uv.destURL GROUP BY uv.sourceIP"
        )
        query = parse_query(sql)
        before = plan_fingerprint(query, session.tables)
        session.load_rows("uservisits", [("ip", "url", 0.5, "w")])
        assert plan_fingerprint(query, session.tables) != before

    def test_unknown_table_is_an_error(self):
        from repro.hive.planner import HivePlanError

        with pytest.raises(HivePlanError):
            plan_fingerprint(
                parse_query("SELECT a FROM nowhere"), make_session().tables
            )
