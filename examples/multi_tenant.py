#!/usr/bin/env python3
"""FIFO vs Fair scheduling of the same heavy-tailed multi-user trace.

The paper measures each workload as the only job on a dedicated
cluster; real data centers run many users' jobs at once.  This example
plays one trace — a Sort elephant from the batch pool, four interactive
mice arriving during its long map phase — through the shared cluster
twice: once under Hadoop 1.x's default FIFO scheduler, once under the
fair scheduler (interactive pool with a minimum share).  Same jobs,
same arrivals, same outputs — very different waits.

Run:  python examples/multi_tenant.py
"""

from repro.cluster.scheduler import FairScheduler, FifoScheduler
from repro.cluster.tenancy import (
    TraceJob,
    WorkloadTrace,
    default_pools,
    run_mix,
)

CLUSTER = dict(num_slaves=2, map_slots=4, reduce_slots=2, block_size=64 * 1024)

TRACE = WorkloadTrace(
    (
        TraceJob(0, "Sort", 0.3, 0.00, "bo", "batch", "large"),
        TraceJob(1, "Grep", 0.05, 0.02, "ada", "interactive", "small"),
        TraceJob(2, "WordCount", 0.05, 0.04, "carol", "interactive", "small"),
        TraceJob(3, "Grep", 0.05, 0.06, "ada", "interactive", "small"),
        TraceJob(4, "WordCount", 0.05, 0.08, "deepak", "interactive", "small"),
    ),
    seed=0,
    arrival_rate_per_s=0.0,
)


def main() -> None:
    fifo = run_mix(TRACE, FifoScheduler(), **CLUSTER)
    fair = run_mix(TRACE, FairScheduler(pools=default_pools(TRACE)), **CLUSTER)

    print("one Sort elephant + four interactive mice, 2 slaves x 4 map slots\n")
    print(f"{'job':<4s}{'workload':<12s}{'pool':<13s}{'user':<8s}"
          f"{'FIFO slowdown':>14s}{'Fair slowdown':>14s}")
    print("-" * 65)
    for fifo_report, fair_report in zip(fifo.reports, fair.reports):
        tj = fifo_report.trace_job
        print(f"{tj.index:<4d}{tj.workload:<12s}{tj.pool:<13s}{tj.user:<8s}"
              f"{fifo_report.slowdown:>13.2f}x{fair_report.slowdown:>13.2f}x")

    print("\nper-pool mean wait / slowdown:")
    for name in TRACE.pools():
        f_stats, z_stats = fifo.by_pool()[name], fair.by_pool()[name]
        print(f"  {name:<13s}fifo {f_stats['mean_wait_s']:.3f}s /"
              f" {f_stats['mean_slowdown']:.2f}x"
              f"   fair {z_stats['mean_wait_s']:.3f}s /"
              f" {z_stats['mean_slowdown']:.2f}x")

    print(f"\nsmall-job mean slowdown: "
          f"fifo {fifo.mean_slowdown(size_class='small'):.2f}x"
          f" -> fair {fair.mean_slowdown(size_class='small'):.2f}x")
    print(f"Jain fairness index:     "
          f"fifo {fifo.jain_fairness():.3f}"
          f" -> fair {fair.jain_fairness():.3f}")
    print(f"outputs identical across schedulers: "
          f"{fifo.outputs == fair.outputs}")
    print("\nreading: FIFO parks the mice behind the elephant's map waves;"
          "\nfair sharing hands them slots as they free, at a small cost to"
          "\nthe elephant. Scheduling changes when, never what, jobs compute.")


if __name__ == "__main__":
    main()
