#!/usr/bin/env python3
"""Extend DCBench with your own workload.

The characterization framework is open: anything that implements the
DataAnalysisWorkload interface — a real MapReduce job plus a declared
micro-architectural profile — can be run on the cluster model and
characterized on the simulated core next to the paper's workloads.

This example adds an *inverted-index builder* (a search-engine indexing
job the paper's domain analysis motivates) and compares it against
WordCount and Grep.

Run:  python examples/custom_workload.py
"""

from repro.cluster import make_cluster
from repro.core import DCBench, characterize
from repro.core.suite import SuiteEntry
from repro.mapreduce import JobConf, LocalEngine, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo


def _index_map(doc_id, text):
    for position, word in enumerate(text.split()):
        yield word, (doc_id, position)


def _index_reduce(word, postings):
    yield word, tuple(sorted(postings))


class InvertedIndexWorkload(DataAnalysisWorkload):
    """Build an inverted index with positions — a Nutch-indexing cousin."""

    info = WorkloadInfo(
        name="InvertedIndex",
        input_description="synthetic documents",
        input_gb_low=150,
        retired_instructions_1e9=2500,
        source="this example",
        scenarios=(("search engine", "Index construction"),),
        table1_row=12,
    )

    def run(self, scale=1.0, cluster=None, engine=None):
        engine = engine or LocalEngine()
        docs = datagen.generate_documents(max(1, int(800 * scale)))
        job = MapReduceJob(
            _index_map,
            _index_reduce,
            JobConf(name="inverted-index", num_reduces=8,
                    map_cost_per_record=5e-6, reduce_cost_per_record=2e-6),
        )
        result = engine.execute(job, docs, cluster=cluster, input_name="index-input")
        index = dict(result.output)
        return self._merge_results(self.info.name, [result], index, terms=len(index))

    def uarch_profile(self):
        return {
            # tokenise + append to per-term posting lists
            "load_fraction": 0.28,
            "store_fraction": 0.14,
            "regions": (
                MemoryRegion("corpus", 128 << 20, 0.2, "sequential"),
                MemoryRegion("posting-lists", 16 << 20, 0.4, "random", burst=4,
                             hot_fraction=0.05, hot_weight=0.9),
            ),
            "kernel_fraction": 0.05,
            "branch_regularity": 0.96,
        }


def main() -> None:
    custom = InvertedIndexWorkload()

    # -- run it for real on a cluster --
    cluster = make_cluster(4, block_size=64 * 1024)
    run = custom.run(scale=0.5, cluster=cluster)
    print(f"built an index of {run.details['terms']} terms "
          f"in {run.duration_s:.3f}s simulated")

    # -- characterize it next to the paper's workloads --
    suite = DCBench.default()
    entries = [
        SuiteEntry(name=custom.info.name, group="data-analysis", impl=custom),
        suite.entry("WordCount"),
        suite.entry("Grep"),
    ]
    print(f"\n{'workload':<16s}{'IPC':>6s}{'L1I':>7s}{'L2':>7s}{'kern':>7s}{'branch':>8s}")
    for entry in entries:
        m = characterize(entry, instructions=100_000).metrics
        print(f"{entry.name:<16s}{m.ipc:>6.2f}{m.l1i_mpki:>7.1f}{m.l2_mpki:>7.1f}"
              f"{m.kernel_instruction_fraction:>7.1%}{m.branch_misprediction_ratio:>8.2%}")


if __name__ == "__main__":
    main()
