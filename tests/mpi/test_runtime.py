"""Tests for the MPI runtime collectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.runtime import MpiRuntime


def make(num_ranks=4) -> MpiRuntime:
    return MpiRuntime(num_ranks)


class TestConstruction:
    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            MpiRuntime(0)

    def test_rejects_bad_cpu_speed(self):
        with pytest.raises(ValueError):
            MpiRuntime(4, cpu_speed=0)

    def test_ranks_map_round_robin(self):
        rt = MpiRuntime(10)
        assert rt.node_of(0) is rt.node_of(8)
        assert rt.node_of(0) is not rt.node_of(1)


class TestCompute:
    def test_runs_fn_per_rank(self):
        rt = make()
        assert rt.compute(lambda rank: rank * 2) == [0, 2, 4, 6]

    def test_cost_advances_clocks(self):
        rt = make()
        rt.compute(lambda r: None, cost=1.0)
        assert all(clock >= 1.0 for clock in rt.clocks)

    def test_per_rank_cost(self):
        rt = make()
        rt.compute(lambda r: None, cost=lambda r: float(r))
        assert rt.clocks[0] == 0.0
        assert rt.clocks[3] == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            make().compute(lambda r: None, cost=-1.0)


class TestCollectives:
    def test_barrier_synchronises(self):
        rt = make()
        rt.compute(lambda r: None, cost=lambda r: float(r))
        rt.barrier()
        assert len(set(rt.clocks)) == 1
        assert rt.clocks[0] >= 3.0

    def test_broadcast_returns_value_and_costs_time(self):
        rt = make()
        assert rt.broadcast({"w": [1, 2, 3]}) == {"w": [1, 2, 3]}
        assert rt.elapsed() > 0

    def test_broadcast_rejects_bad_root(self):
        with pytest.raises(ValueError):
            make().broadcast(1, root=9)

    def test_allreduce_sum(self):
        rt = make()
        assert rt.allreduce([1, 2, 3, 4], lambda a, b: a + b) == 10

    def test_allreduce_non_power_of_two(self):
        rt = MpiRuntime(5)
        assert rt.allreduce([1] * 5, lambda a, b: a + b) == 5

    def test_allreduce_single_rank(self):
        rt = MpiRuntime(1)
        assert rt.allreduce([7], lambda a, b: a + b) == 7

    def test_allreduce_wrong_arity(self):
        with pytest.raises(ValueError):
            make().allreduce([1, 2], lambda a, b: a + b)

    def test_alltoall_transposes(self):
        rt = make()
        send = [[f"{i}->{j}" for j in range(4)] for i in range(4)]
        recv = rt.alltoall(send)
        for i in range(4):
            for j in range(4):
                assert recv[j][i] == send[i][j]

    def test_alltoall_rejects_ragged(self):
        with pytest.raises(ValueError):
            make().alltoall([[1, 2], [3]])

    def test_gather(self):
        rt = make()
        assert rt.gather(["a", "b", "c", "d"]) == ["a", "b", "c", "d"]

    def test_stats_accumulate(self):
        rt = make()
        rt.allreduce([1, 2, 3, 4], lambda a, b: a + b)
        assert rt.stats.messages > 0
        assert rt.stats.bytes_sent > 0
        assert "allreduce" in rt.stats.collectives

    def test_bigger_payloads_take_longer(self):
        small, big = make(), make()
        small.broadcast("x")
        big.broadcast("x" * 500_000)
        assert big.elapsed() > small.elapsed()

    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=9))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_matches_python_sum(self, values):
        rt = MpiRuntime(len(values))
        assert rt.allreduce(values, lambda a, b: a + b) == sum(values)
