"""Open-loop service traffic with graceful-degradation controls.

The paper's workloads are batch analytics, but the cluster that runs
them also fronts interactive services — point lookups, small scans and
scoring requests whose arrival process is *open loop*: clients issue
requests on their own clock, independent of how fast the cluster is
answering.  Under overload an open-loop queue grows without bound, so a
production frontend degrades gracefully instead of falling over:

* **admission control** refuses requests once the queue is deep enough
  that serving them is hopeless;
* **load shedding** drops a seeded fraction of traffic above a queue
  threshold, trading completeness for latency;
* **deadlines** kill requests that can no longer answer in time, both
  while queued and mid-service, freeing capacity for requests that can;
* **bounded retries** with exponential backoff give killed requests a
  second chance without re-amplifying the overload.

:func:`run_service` plays a seeded arrival process (Poisson, diurnal, or
bursty Markov-modulated Poisson) over a bank of identical servers and
reports the per-request latency distribution (p50/p95/p99/p999),
goodput, utilization and SLO attainment.  Every control is off by
default-shaped knobs on :class:`ServePolicy`; the degradation events are
counted in the frontend's simulated ``/proc``
(:meth:`~repro.perf.procfs.ProcFs.render_overload`).  All randomness
comes from rng streams seeded per concern (``serve-arrivals``,
``serve-classes``, ``serve-shed``), so a report is a pure function of
its arguments.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field

from repro.perf.procfs import ProcFs

__all__ = [
    "ArrivalProcess",
    "RequestClass",
    "RequestRecord",
    "ServePolicy",
    "ServeReport",
    "default_request_classes",
    "percentile",
    "request_classes_from_trace",
    "run_service",
]

#: the latency quantiles a service dashboard pins on its front page
PERCENTILES = {"p50": 50.0, "p95": 95.0, "p99": 99.0, "p999": 99.9}


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile of *values* (NaN for an empty list).

    Nearest-rank is what latency dashboards actually report: the p-th
    percentile is an observed sample, never an interpolation between
    two samples.
    """
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = math.ceil(p / 100 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RequestClass:
    """One kind of service request: a name, a service demand, a mix weight."""

    name: str
    demand_s: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name.strip():
            raise ValueError("request class name must be non-empty")
        if not (math.isfinite(self.demand_s) and self.demand_s > 0):
            raise ValueError("service demand must be finite and positive")
        if not (math.isfinite(self.weight) and self.weight > 0):
            raise ValueError("mix weight must be finite and positive")


def default_request_classes() -> tuple[RequestClass, ...]:
    """A pinned interactive mix: mice dominate, scoring requests are rare.

    Mirrors the heavy-tailed size mix of the batch trace generator —
    most requests are tiny, a few are two orders of magnitude larger —
    scaled down to interactive service demands.
    """
    return (
        RequestClass("point-lookup", 0.08, 0.45),
        RequestClass("grep", 0.18, 0.30),
        RequestClass("aggregation", 0.45, 0.20),
        RequestClass("ml-scoring", 1.2, 0.05),
    )


def request_classes_from_trace(
    trace,
    num_slaves: int = 4,
    map_slots: int = 8,
    reduce_slots: int = 4,
    block_size: int = 256 * 1024,
) -> tuple[RequestClass, ...]:
    """Derive request classes from a batch :class:`WorkloadTrace`.

    Each distinct ``(workload, scale)`` in the trace becomes one class:
    its service demand is the workload's solo (uncontended) duration on
    a fresh cluster of the given shape, its weight the number of trace
    jobs of that kind.  Shadow runs are memoized across calls, keyed on
    the **full** ``(workload, scale, engine config)`` tuple — recipe-
    generated traces repeat the same templates across many calls and
    cluster shapes, and a key that ignored the cluster shape would hand
    one shape's solo duration to another.
    """
    classes = []
    counts: dict[tuple[str, float], int] = {}
    for tjob in trace.jobs:
        key = (tjob.workload, tjob.scale)
        counts[key] = counts.get(key, 0) + 1
    for (name, scale), weight in sorted(counts.items()):
        demand_s = _solo_demand_s(
            name, scale, num_slaves, map_slots, reduce_slots, block_size
        )
        classes.append(RequestClass(f"{name}@{scale:g}", demand_s, float(weight)))
    return tuple(classes)


#: cross-call shadow-run memo: full (workload, scale, engine-config) key →
#: solo duration.  The engine config MUST be part of the key (regression
#: test: tests/cluster/test_serve.py::TestRequestClassMemo).
_SOLO_DEMANDS: dict[tuple[str, float, int, int, int, int], float] = {}


def _solo_demand_s(
    name: str,
    scale: float,
    num_slaves: int,
    map_slots: int,
    reduce_slots: int,
    block_size: int,
) -> float:
    from repro.cluster.cluster import make_cluster
    from repro.workloads.base import workload

    key = (name, scale, num_slaves, map_slots, reduce_slots, block_size)
    if key not in _SOLO_DEMANDS:
        shadow = make_cluster(
            num_slaves=num_slaves,
            map_slots=map_slots,
            reduce_slots=reduce_slots,
            block_size=block_size,
        )
        _SOLO_DEMANDS[key] = workload(name).run(scale=scale, cluster=shadow).duration_s
    return _SOLO_DEMANDS[key]


@dataclass(frozen=True)
class ArrivalProcess:
    """A seeded open-loop arrival process.

    ``poisson`` is the memoryless baseline.  ``diurnal`` modulates the
    rate sinusoidally (period/amplitude) the way user-facing traffic
    follows the day; ``bursty`` is a two-phase Markov-modulated Poisson
    process — quiet background rate with exponentially-distributed
    bursts at ``burst_factor`` times the quiet rate — the shape that
    actually breaks provisioned-for-the-mean services.  Both modulated
    patterns are generated by thinning a peak-rate Poisson stream, so
    the mean rate stays ``rate_per_s`` in every pattern.
    """

    rate_per_s: float
    pattern: str = "poisson"
    diurnal_period_s: float = 60.0
    diurnal_amplitude: float = 0.6
    burst_factor: float = 4.0
    burst_fraction: float = 0.2
    burst_mean_s: float = 2.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.rate_per_s) and self.rate_per_s > 0):
            raise ValueError("arrival rate must be finite and positive")
        if self.pattern not in ("poisson", "diurnal", "bursty"):
            raise ValueError("pattern must be poisson, diurnal or bursty")
        if not (math.isfinite(self.diurnal_period_s) and self.diurnal_period_s > 0):
            raise ValueError("diurnal period must be finite and positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if not (math.isfinite(self.burst_factor) and self.burst_factor >= 1):
            raise ValueError("burst factor must be finite and >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst fraction must be in (0, 1)")
        if not (math.isfinite(self.burst_mean_s) and self.burst_mean_s > 0):
            raise ValueError("burst mean must be finite and positive")

    def rate_at(self, t: float) -> float:
        """The instantaneous mean rate at time *t* (diurnal pattern only)."""
        if self.pattern == "diurnal":
            return self.rate_per_s * (
                1 + self.diurnal_amplitude
                * math.sin(2 * math.pi * t / self.diurnal_period_s)
            )
        return self.rate_per_s

    def arrivals(self, num_requests: int, seed: int = 0) -> list[float]:
        """The first *num_requests* arrival instants, deterministically."""
        if num_requests < 0:
            raise ValueError("request count must be non-negative")
        rng = random.Random(f"serve-arrivals:{seed}")
        times: list[float] = []
        if self.pattern == "poisson":
            t = 0.0
            while len(times) < num_requests:
                t += rng.expovariate(self.rate_per_s)
                times.append(t)
            return times
        if self.pattern == "diurnal":
            peak = self.rate_per_s * (1 + self.diurnal_amplitude)
            t = 0.0
            while len(times) < num_requests:
                t += rng.expovariate(peak)
                if rng.random() < self.rate_at(t) / peak:
                    times.append(t)
            return times
        # bursty: two-phase MMPP thinned against the burst-phase rate.
        # Rates are chosen so the long-run mean is rate_per_s:
        #   frac * hi + (1 - frac) * lo = rate,  hi = burst_factor * lo
        lo = self.rate_per_s / (
            self.burst_fraction * self.burst_factor + 1 - self.burst_fraction
        )
        hi = lo * self.burst_factor
        mean_on = self.burst_mean_s
        mean_off = mean_on * (1 - self.burst_fraction) / self.burst_fraction
        in_burst = False
        phase_end = rng.expovariate(1 / mean_off)
        t = 0.0
        while len(times) < num_requests:
            t += rng.expovariate(hi)
            while t >= phase_end:
                in_burst = not in_burst
                phase_end += rng.expovariate(
                    1 / (mean_on if in_burst else mean_off)
                )
            if in_burst or rng.random() < lo / hi:
                times.append(t)
        return times


@dataclass(frozen=True)
class ServePolicy:
    """The frontend's graceful-degradation knobs.

    The defaults are a protected production posture; build an
    anything-goes frontend (the overload control group) with
    :meth:`unprotected`.
    """

    admission_control: bool = True
    max_queue_depth: int = 64
    deadline_s: float = 8.0
    deadline_admission: bool = True
    shed_rate: float = 0.0
    shed_threshold: int = 16
    kill_at_deadline: bool = True
    retry_budget: int = 1
    retry_backoff_base_s: float = 0.25
    retry_backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max queue depth must be at least 1")
        if not (math.isfinite(self.deadline_s) and self.deadline_s > 0):
            raise ValueError("deadline must be finite and positive")
        if not 0 <= self.shed_rate <= 1:
            raise ValueError("shed rate must be in [0, 1]")
        if self.shed_threshold < 0:
            raise ValueError("shed threshold must be non-negative")
        if self.retry_budget < 0:
            raise ValueError("retry budget must be non-negative")
        if not (
            math.isfinite(self.retry_backoff_base_s)
            and self.retry_backoff_base_s >= 0
        ):
            raise ValueError("retry backoff base must be finite and non-negative")
        if not (
            math.isfinite(self.retry_backoff_factor)
            and self.retry_backoff_factor >= 1
        ):
            raise ValueError("retry backoff factor must be finite and >= 1")

    @classmethod
    def unprotected(cls, deadline_s: float = 8.0) -> "ServePolicy":
        """No admission, no shedding, no kills — queues grow unbounded.

        The deadline is kept purely as the SLO yardstick so attainment
        is measured against the same target as a protected frontend.
        """
        return cls(
            admission_control=False,
            deadline_s=deadline_s,
            deadline_admission=False,
            shed_rate=0.0,
            kill_at_deadline=False,
            retry_budget=0,
        )


@dataclass
class RequestRecord:
    """The fate of one request (across all of its attempts)."""

    index: int
    request_class: str
    arrival_s: float
    outcome: str  # "completed" | "shed" | "killed"
    attempts: int
    start_s: float | None = None
    finish_s: float | None = None
    latency_s: float | None = None
    deadline_met: bool = False


@dataclass
class ServeReport:
    """What an open-loop service run looked like from the frontend."""

    servers: int
    policy: ServePolicy
    offered: int
    completed: int
    shed: int
    killed: int
    retries: int
    latency_percentiles: dict[str, float]
    makespan_s: float
    goodput_rps: float
    utilization: float
    slo_attainment: float
    procfs: ProcFs = field(repr=False, default_factory=ProcFs)
    records: list[RequestRecord] = field(repr=False, default_factory=list)

    @property
    def p99_s(self) -> float:
        return self.latency_percentiles["p99"]

    def to_dict(self) -> dict:
        return {
            "servers": self.servers,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "killed": self.killed,
            "retries": self.retries,
            "latency_percentiles": dict(self.latency_percentiles),
            "makespan_s": self.makespan_s,
            "goodput_rps": self.goodput_rps,
            "utilization": self.utilization,
            "slo_attainment": self.slo_attainment,
            "requests_shed": self.procfs.requests_shed,
            "deadline_kills": self.procfs.deadline_kills,
        }


def run_service(
    classes: tuple[RequestClass, ...] | None = None,
    process: ArrivalProcess | None = None,
    num_requests: int = 200,
    servers: int = 4,
    policy: ServePolicy | None = None,
    seed: int = 0,
    limping_servers: tuple[tuple[int, float], ...] = (),
) -> ServeReport:
    """Play an open-loop arrival process through a bank of servers.

    Requests are dispatched FIFO to the earliest-free server; the queue
    depth a request observes is the number of already-admitted requests
    still waiting to start.  ``limping_servers`` maps server indices to
    fail-slow service-time multipliers (the serving-tier analogue of a
    limping node).  Latency and SLO attainment are always measured from
    a request's *first* arrival, so retries pay their backoff.
    """
    classes = classes if classes is not None else default_request_classes()
    process = process if process is not None else ArrivalProcess(rate_per_s=8.0)
    policy = policy if policy is not None else ServePolicy()
    if not classes:
        raise ValueError("need at least one request class")
    if servers < 1:
        raise ValueError("need at least one server")
    factors = [1.0] * servers
    for index, factor in limping_servers:
        if not 0 <= index < servers:
            raise ValueError(f"unknown limping server {index}")
        if not (math.isfinite(factor) and factor >= 1):
            raise ValueError("limp factors must be finite and >= 1")
        factors[index] = max(factors[index], factor)

    arrival_times = process.arrivals(num_requests, seed)
    class_rng = random.Random(f"serve-classes:{seed}")
    chosen = (
        class_rng.choices(
            classes, weights=[c.weight for c in classes], k=num_requests
        )
        if num_requests
        else []
    )
    shed_rng = random.Random(f"serve-shed:{seed}")
    procfs = ProcFs(node_name="frontend")

    free = [0.0] * servers
    admitted_starts: list[float] = []
    busy_s = 0.0
    retries = 0
    last_event = arrival_times[0] if arrival_times else 0.0
    records: dict[int, RequestRecord] = {}
    # (submit_time, request index, attempt number, first arrival, class)
    events: list[tuple[float, int, int, float, RequestClass]] = [
        (t, i, 0, t, cls) for i, (t, cls) in enumerate(zip(arrival_times, chosen))
    ]
    heapq.heapify(events)

    def finish(index, cls, first, outcome, attempts, start=None, end=None):
        met = (
            outcome == "completed"
            and end is not None
            and end <= first + policy.deadline_s
        )
        records[index] = RequestRecord(
            index=index,
            request_class=cls.name,
            arrival_s=first,
            outcome=outcome,
            attempts=attempts,
            start_s=start,
            finish_s=end,
            latency_s=None if end is None else end - first,
            deadline_met=met,
        )

    def retry(index, attempt, first, cls, at) -> bool:
        if attempt >= policy.retry_budget:
            return False
        nonlocal retries
        retries += 1
        backoff = policy.retry_backoff_base_s * (
            policy.retry_backoff_factor ** attempt
        )
        heapq.heappush(events, (at + backoff, index, attempt + 1, first, cls))
        return True

    while events:
        submit, index, attempt, first, cls = heapq.heappop(events)
        last_event = max(last_event, submit)
        deadline = submit + policy.deadline_s
        depth = sum(1 for s in admitted_starts if s > submit)
        if policy.admission_control and depth >= policy.max_queue_depth:
            procfs.record_request_shed()
            finish(index, cls, first, "shed", attempt + 1)
            continue
        if (
            policy.shed_rate > 0
            and depth >= policy.shed_threshold
            and shed_rng.random() < policy.shed_rate
        ):
            procfs.record_request_shed()
            finish(index, cls, first, "shed", attempt + 1)
            continue
        server = min(range(servers), key=lambda i: free[i])
        start = max(submit, free[server])
        demand = cls.demand_s * factors[server]
        if policy.deadline_admission and start + demand > deadline:
            # Hopeless on arrival: refusing now is cheaper than killing
            # at the deadline after burning queue space or server time.
            procfs.record_request_shed()
            finish(index, cls, first, "shed", attempt + 1)
            continue
        if policy.kill_at_deadline and start >= deadline:
            # Timed out while still queued; the server never saw it.
            procfs.record_deadline_kill()
            if not retry(index, attempt, first, cls, deadline):
                finish(index, cls, first, "killed", attempt + 1)
            continue
        admitted_starts.append(start)
        if policy.kill_at_deadline and start + demand > deadline:
            # Killed mid-service: the time already spent is pure waste.
            free[server] = deadline
            busy_s += deadline - start
            last_event = max(last_event, deadline)
            procfs.record_deadline_kill()
            if not retry(index, attempt, first, cls, deadline):
                finish(index, cls, first, "killed", attempt + 1, start=start)
            continue
        end = start + demand
        free[server] = end
        busy_s += demand
        last_event = max(last_event, end)
        finish(index, cls, first, "completed", attempt + 1, start=start, end=end)

    ordered = [records[i] for i in sorted(records)]
    latencies = [r.latency_s for r in ordered if r.outcome == "completed"]
    offered = len(ordered)
    completed = len(latencies)
    shed = sum(1 for r in ordered if r.outcome == "shed")
    killed = sum(1 for r in ordered if r.outcome == "killed")
    origin = arrival_times[0] if arrival_times else 0.0
    makespan = max(last_event - origin, 0.0)
    return ServeReport(
        servers=servers,
        policy=policy,
        offered=offered,
        completed=completed,
        shed=shed,
        killed=killed,
        retries=retries,
        latency_percentiles={
            label: percentile(latencies, p) for label, p in PERCENTILES.items()
        },
        makespan_s=makespan,
        goodput_rps=completed / makespan if makespan > 0 else 0.0,
        utilization=busy_s / (servers * makespan) if makespan > 0 else 0.0,
        slo_attainment=(
            sum(1 for r in ordered if r.deadline_met) / offered if offered else 0.0
        ),
        procfs=procfs,
        records=ordered,
    )
