"""Chaos harness: real workloads under seeded mixed-fault schedules.

Every cell of the matrix runs a real workload twice through the
LocalEngine — healthy and under a seeded chaos plan — and checks the
resilience contract: bit-identical output, no time travel (faults never
make the pinned schedules faster), and accounting that proves the faults
were actually hit.  The seeds are pinned: fault-induced rescheduling can
occasionally *improve* a greedy schedule (Graham's scheduling
anomalies — a retried map's output lands on a less contended disk), so
the suite fixes schedules where the injected damage dominates.
"""

import pytest

from repro.cluster import (
    FaultPlan,
    FaultyCluster,
    JobFailedError,
    RetryPolicy,
    make_cluster,
)
from repro.cluster.chaos import chaos_plan, run_chaos
from repro.workloads import workload

WORKLOADS = ("WordCount", "Sort", "PageRank")
SEEDS = (1, 2, 3, 4, 6)

_results: dict[tuple[str, int], object] = {}


def chaos(name: str, seed: int):
    key = (name, seed)
    if key not in _results:
        _results[key] = run_chaos(name, seed=seed)
    return _results[key]


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
class TestChaosMatrix:
    def test_output_is_bit_identical(self, name, seed):
        assert chaos(name, seed).identical_output

    def test_faults_never_speed_the_job_up(self, name, seed):
        result = chaos(name, seed)
        assert result.chaotic_duration_s >= result.baseline_duration_s

    def test_injected_faults_were_hit(self, name, seed):
        accounting = chaos(name, seed).accounting
        assert accounting["failed_attempts"] >= 1
        assert accounting["wasted_seconds"] > 0


class TestChaosProperties:
    def test_same_seed_is_exactly_reproducible(self):
        a = run_chaos("WordCount", seed=3)
        b = run_chaos("WordCount", seed=3)
        assert a.chaotic_duration_s == b.chaotic_duration_s
        assert a.accounting == b.accounting
        assert a.plan == b.plan

    def test_matrix_covers_every_fault_class(self):
        plans = [chaos(name, seed).plan for name in WORKLOADS for seed in SEEDS]
        assert all(plan.map_failures for plan in plans)
        assert any(plan.reduce_failures for plan in plans)
        assert any(plan.straggler_nodes for plan in plans)
        assert any(plan.node_crashes for plan in plans)
        assert any(plan.shuffle_failures for plan in plans)
        assert any(plan.lost_replicas for plan in plans)

    def test_matrix_exercises_recovery_paths(self):
        accounts = [
            chaos(name, seed).accounting for name in WORKLOADS for seed in SEEDS
        ]
        assert any(a["nodes_crashed"] for a in accounts)
        assert any(a["maps_reexecuted"] for a in accounts)
        assert any(a["shuffle_fetch_failures"] for a in accounts)
        assert any(a["fetch_escalations"] for a in accounts)
        assert any(a["re_replicated_bytes"] for a in accounts)
        assert any(a["speculative_wins"] for a in accounts)

    def test_chaos_plan_validates_inputs(self):
        with pytest.raises(ValueError):
            chaos_plan(1, num_maps=0, num_reduces=2, node_names=["slave1"])
        with pytest.raises(ValueError):
            chaos_plan(1, num_maps=4, num_reduces=2, node_names=[])

    def test_exhausted_attempts_abort_the_workload(self):
        plan = FaultPlan(
            map_failure_counts=((0, 4),),
            policy=RetryPolicy(max_attempts=4),
        )
        cluster = FaultyCluster(make_cluster(4, block_size=64 * 1024), plan)
        with pytest.raises(JobFailedError) as excinfo:
            workload("WordCount").run(scale=0.3, cluster=cluster)
        assert excinfo.value.task_id == "m_000000"
        assert excinfo.value.attempts == 4
