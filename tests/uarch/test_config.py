"""Tests for the machine configuration (the paper's Table III)."""

import pytest

from repro.uarch.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    TlbConfig,
    XEON_E5645,
    scaled_machine,
)


class TestCacheConfig:
    def test_table_iii_l1i_geometry(self):
        assert XEON_E5645.l1i.size_bytes == 32 * 1024
        assert XEON_E5645.l1i.associativity == 4
        assert XEON_E5645.l1i.line_bytes == 64

    def test_table_iii_l1d_geometry(self):
        assert XEON_E5645.l1d.size_bytes == 32 * 1024
        assert XEON_E5645.l1d.associativity == 8

    def test_table_iii_l2_geometry(self):
        assert XEON_E5645.l2.size_bytes == 256 * 1024
        assert XEON_E5645.l2.associativity == 8

    def test_table_iii_l3_geometry(self):
        assert XEON_E5645.l3.size_bytes == 12 * 1024 * 1024
        assert XEON_E5645.l3.associativity == 16

    def test_num_sets(self):
        cache = CacheConfig("c", 32 * 1024, 4, 64)
        assert cache.num_sets == 128
        assert cache.num_lines == 512

    def test_l3_sets_not_power_of_two(self):
        # The real 12 MB L3 has 12288 sets; the model must accept it.
        assert XEON_E5645.l3.num_sets == 12288

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, 4, 64)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 64)


class TestTlbConfig:
    def test_table_iii_tlbs(self):
        assert XEON_E5645.itlb.entries == 64
        assert XEON_E5645.itlb.associativity == 4
        assert XEON_E5645.dtlb.entries == 64
        assert XEON_E5645.l2tlb.entries == 512

    def test_reach(self):
        assert XEON_E5645.itlb.reach_bytes == 64 * 4096

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            TlbConfig("bad", 64, 7)


class TestCoreConfig:
    def test_defaults_are_westmere_like(self):
        core = CoreConfig()
        assert core.fetch_width == 4
        assert core.rob_entries == 128
        assert core.rs_entries == 36

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_width=0)
        with pytest.raises(ValueError):
            CoreConfig(rob_entries=-1)


class TestMachineDescribe:
    def test_describe_matches_table_iii_rows(self):
        rows = XEON_E5645.describe()
        assert rows["CPU Type"] == "Intel Xeon E5645"
        assert rows["# Cores"] == "6 cores@2.4G"
        assert rows["# threads"] == "12 threads"
        assert rows["# Sockets"] == "2"
        assert rows["ITLB"] == "4-way set associative, 64 entries"
        assert rows["L2 TLB"] == "4-way associative, 512 entries"
        assert "32KB" in rows["L1 ICache"]
        assert "256 KB" in rows["L2 Cache"]
        assert "12 MB" in rows["L3 Cache"]
        assert rows["Memory"] == "32 GB , DDR3"


class TestScaledMachine:
    def test_scale_one_is_identity(self):
        assert scaled_machine(1) is XEON_E5645

    def test_scale_divides_capacities(self):
        m = scaled_machine(8)
        assert m.l1i.size_bytes == XEON_E5645.l1i.size_bytes // 8
        assert m.l3.size_bytes == XEON_E5645.l3.size_bytes // 8
        assert m.itlb.entries == XEON_E5645.itlb.entries // 8
        assert m.l2tlb.entries == XEON_E5645.l2tlb.entries // 8

    def test_scale_preserves_associativity_and_lines(self):
        m = scaled_machine(4)
        assert m.l2.associativity == XEON_E5645.l2.associativity
        assert m.l2.line_bytes == XEON_E5645.l2.line_bytes
        assert m.dtlb.associativity == XEON_E5645.dtlb.associativity

    def test_scale_preserves_latencies(self):
        m = scaled_machine(8)
        assert m.memory_latency == XEON_E5645.memory_latency
        assert m.l3.hit_latency == XEON_E5645.l3.hit_latency

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_machine(0)

    def test_rejects_non_dividing_scale(self):
        with pytest.raises(ValueError):
            scaled_machine(7)

    def test_name_records_scaling(self):
        assert "1/8" in scaled_machine(8).name


class TestCustomMachine:
    def test_machine_is_composable(self):
        m = MachineConfig(
            name="tiny",
            l3=CacheConfig("L3", 1024 * 1024, 16, 64, hit_latency=30),
        )
        assert m.l3.num_sets == 1024
        assert m.l1i.size_bytes == 32 * 1024  # untouched defaults
