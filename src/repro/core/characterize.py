"""Characterize workloads on the simulated core — the measurement arc.

``characterize(entry)`` is the reproduction of the paper's Section III-D
methodology: build the workload's instruction stream, run it through a
core configured like the Xeon E5645 (Table III), discard a ramp-up
window, and read the ~20 hardware events into the Figure 3–12 metrics.

Because our traces are short relative to real runs (hundreds of thousands
of micro-ops instead of 10^12), both the machine's cache/TLB capacities
and the workload's declared footprints are divided by ``scale``
(default 8) so every footprint-to-capacity ratio matches the paper's
setup; latencies, widths and buffer sizes are untouched.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import Metrics
from repro.core.suite import DCBench, SuiteEntry
from repro.perf.session import PerfReading, PerfSession
from repro.uarch.config import MachineConfig, scaled_machine
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace

#: Default trace length per workload (micro-ops).
DEFAULT_INSTRUCTIONS = 200_000

#: Default machine/footprint scaling factor.
DEFAULT_SCALE = 8


@dataclass
class Characterization:
    """Everything one characterization run produced."""

    name: str
    group: str
    result: SimulationResult
    metrics: Metrics
    reading: PerfReading

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Characterization {self.name} ipc={self.metrics.ipc:.2f} "
            f"l1i={self.metrics.l1i_mpki:.1f} l2={self.metrics.l2_mpki:.1f}>"
        )


def characterize(
    entry: SuiteEntry,
    instructions: int = DEFAULT_INSTRUCTIONS,
    scale: int = DEFAULT_SCALE,
    machine: MachineConfig | None = None,
    warmup: int | None = None,
    seed: int | None = None,
) -> Characterization:
    """Measure one suite entry on a fresh simulated core.

    ``machine`` overrides the scaled Table III machine (ablation studies
    pass modified configs here — in that case ``scale`` is still used to
    shrink the *workload* footprints, so pass a machine scaled to match).
    """
    if machine is None:
        machine = scaled_machine(scale)
    spec = entry.trace_spec(instructions, seed=seed).scaled(scale)
    core = Core(machine)
    result = core.run(SyntheticTrace(spec), warmup=warmup)
    metrics = Metrics.from_result(result)
    reading = PerfSession(machine=machine).measure_result(result)
    return Characterization(
        name=entry.name, group=entry.group, result=result, metrics=metrics, reading=reading
    )


def characterize_suite(
    suite: DCBench | None = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    scale: int = DEFAULT_SCALE,
    machine: MachineConfig | None = None,
) -> list[Characterization]:
    """Characterize every entry of *suite* (default: the full DCBench)."""
    suite = suite or DCBench.default()
    return [
        characterize(entry, instructions=instructions, scale=scale, machine=machine)
        for entry in suite
    ]
