"""Cross-subsystem integration invariants.

These tie the layers together per workload: the functional engine, the
cluster timing model, HDFS placement, and the characterization arc must
agree about the same execution.
"""

import pytest

from repro.cluster import make_cluster
from repro.core import DCBench, characterize
from repro.mapreduce.io import records_bytes
from repro.workloads import WORKLOAD_NAMES, workload


@pytest.fixture(scope="module")
def clustered_runs():
    """One small clustered run per Table I workload."""
    runs = {}
    for name in WORKLOAD_NAMES:
        cluster = make_cluster(3, block_size=32 * 1024)
        runs[name] = (workload(name).run(scale=0.15, cluster=cluster), cluster)
    return runs


class TestEngineClusterConsistency:
    def test_every_workload_produces_jobs_and_timelines(self, clustered_runs):
        for name, (run, _cluster) in clustered_runs.items():
            assert run.job_results, name
            assert len(run.timelines) == len(run.job_results), name

    def test_timelines_are_ordered_and_contiguous(self, clustered_runs):
        for name, (run, _cluster) in clustered_runs.items():
            previous_end = 0.0
            for timeline in run.timelines:
                assert timeline.start_s == pytest.approx(previous_end, abs=1e-9), name
                assert timeline.map_phase_end_s >= timeline.start_s, name
                assert timeline.end_s >= timeline.map_phase_end_s, name
                previous_end = timeline.end_s

    def test_map_input_bytes_match_hdfs_files(self, clustered_runs):
        for name, (run, cluster) in clustered_runs.items():
            total_input = sum(
                m.input_bytes for jr in run.job_results for m in jr.work.maps
            )
            total_files = sum(f.size_bytes for f in cluster.hdfs.files.values())
            # Every map split's bytes come from an HDFS file of this run.
            assert total_input <= total_files + 1, name

    def test_shuffle_counter_matches_reduce_work(self, clustered_runs):
        for name, (run, _cluster) in clustered_runs.items():
            for jr in run.job_results:
                assert jr.counters.shuffle_bytes == sum(
                    r.shuffle_bytes for r in jr.work.reduces
                ), name

    def test_output_bytes_counter_matches_output(self, clustered_runs):
        for name, (run, _cluster) in clustered_runs.items():
            for jr in run.job_results:
                assert jr.counters.reduce_output_bytes == records_bytes(jr.output), name

    def test_disk_and_network_activity_recorded(self, clustered_runs):
        write_heavy = 0
        for name, (run, cluster) in clustered_runs.items():
            # multi-slave runs with replication must touch the network
            assert cluster.network.bytes_moved > 0, name
            if sum(n.procfs.writes_completed for n in cluster.slaves) > 0:
                write_heavy += 1
        # At this tiny scale the lightest writers (Grep, HMM) stay below
        # one merged 16 KB request, but most workloads must flush writes.
        assert write_heavy >= 8

    def test_task_counts_match_work(self, clustered_runs):
        for name, (run, _cluster) in clustered_runs.items():
            for jr in run.job_results:
                assert jr.timeline.map_tasks == len(jr.work.maps), name
                assert jr.timeline.reduce_tasks == len(jr.work.reduces), name


class TestCharacterizationConsistency:
    @pytest.fixture(scope="class")
    def char(self):
        return characterize(DCBench.default().entry("WordCount"), instructions=60_000)

    def test_reading_and_metrics_agree(self, char):
        reading = char.reading
        assert reading["cycles"] == char.result.cycles
        assert char.metrics.ipc == pytest.approx(
            reading["instructions"] / reading["cycles"]
        )
        assert char.metrics.l2_mpki == pytest.approx(
            reading.per_kilo_instructions("l2_rqsts.miss")
        )
        assert char.metrics.branch_misprediction_ratio == pytest.approx(
            reading.ratio("branch-misses", "branches")
        )

    def test_stall_events_match_result_fields(self, char):
        reading = char.reading
        assert reading["resource_stalls.rs_full"] == char.result.rs_full_stall_cycles
        assert reading["rat_stalls.any"] == char.result.rat_stall_cycles
        assert reading["ild_stall.any"] == char.result.fetch_stall_cycles

    def test_trace_spec_scaling_consistency(self):
        entry = DCBench.default().entry("Sort")
        paper_scale = entry.trace_spec(1000)
        scaled = paper_scale.scaled(8)
        assert scaled.code_footprint == paper_scale.code_footprint // 8
        for a, b in zip(paper_scale.regions, scaled.regions):
            assert b.size_bytes == pytest.approx(a.size_bytes / 8, rel=0.01)
        # behaviourals unchanged
        assert scaled.kernel_fraction == paper_scale.kernel_fraction
        assert scaled.load_fraction == paper_scale.load_fraction
