"""Engine micro-benchmarks: reference vs fast vs warm-cache timings.

A scaled-down ``bench-sim`` run (the CLI twin is ``python -m repro
bench-sim``, which times the full 26-workload suite at 200k μops and
writes the repo-root ``BENCH_uarch.json``).  Here we time a representative
workload subset with a smaller budget so the perf tier stays quick, and
assert the structural invariants of the fast path:

* every engine comparison in the report is bit-identical,
* the fast engine is no slower than the reference engine,
* a warm cache hit is at least an order of magnitude faster than a
  reference simulation.
"""

from __future__ import annotations

import json

import pytest

from conftest import run_once
from repro.perf.bench import run_bench, write_report

#: One workload per behavioural family: streaming analytics, iterative ML,
#: latency-bound service, desktop, and two HPCC corners.
BENCH_WORKLOADS = [
    "WordCount",
    "K-means",
    "Media Streaming",
    "SPECINT",
    "HPCC-STREAM",
    "HPCC-RandomAccess",
]

BENCH_INSTRUCTIONS = 60_000


@pytest.fixture(scope="module")
def bench_report(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("bench-cache")
    return run_bench(
        instructions=BENCH_INSTRUCTIONS,
        workloads=BENCH_WORKLOADS,
        cache_root=str(cache_root),
    )


def test_bench_sim_report(benchmark, bench_report, tmp_path):
    """Write and sanity-check a BENCH_uarch.json from the sampled run."""
    path = run_once(
        benchmark, lambda: write_report(bench_report, str(tmp_path / "BENCH_uarch.json"))
    )
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["schema"] == 1
    assert payload["totals"]["workloads"] == len(BENCH_WORKLOADS)
    for row in payload["workloads"]:
        assert row["bit_identical"], f"{row['name']}: engines disagree"
        assert row["uops_per_sec_fast"] > 0
    totals = payload["totals"]
    print(
        f"\nengine speedup (cold) {totals['engine_speedup_cold']:.2f}x, "
        f"fast path (warm cache) {totals['fastpath_speedup_warm']:.1f}x, "
        f"cache hit rate {totals['cache_hit_rate']:.0%}"
    )


def test_fast_engine_not_slower(bench_report):
    totals = bench_report.totals()
    assert totals["bit_identical"]
    assert totals["engine_speedup_cold"] > 1.0, totals


def test_warm_cache_order_of_magnitude(bench_report):
    totals = bench_report.totals()
    assert totals["fastpath_speedup_warm"] >= 10.0, totals
    # Each workload probes the cache twice: the populating miss, then a hit.
    assert totals["cache_hit_rate"] == pytest.approx(0.5)
