"""Table II: application scenarios of the data-analysis workloads.

Checks the paper's central claim about workload choice: most workloads
are intersections of the three dominant application domains.
"""

from conftest import run_once

from repro.analysis.domains import COMMERCE, SEARCH, SOCIAL, top_domains
from repro.core.report import render_table2
from repro.workloads import all_workloads

DOMAIN_CANON = {
    "search engine": SEARCH,
    "social network": SOCIAL,
    "electronic commerce": COMMERCE,
}


def test_table2(benchmark):
    def harness():
        return {
            wl.info.name: {DOMAIN_CANON[d] for d, _ in wl.info.scenarios}
            for wl in all_workloads()
        }

    domains_per_workload = run_once(benchmark, harness)
    print()
    print(render_table2())

    top3 = set(top_domains(3))
    # Every scenario belongs to one of the top-three domains.
    for name, domains in domains_per_workload.items():
        assert domains, f"{name} has no scenarios"
        assert domains <= top3
    # "most of our chosen workloads are intersections among three domains":
    multi_domain = [n for n, d in domains_per_workload.items() if len(d) >= 2]
    assert len(multi_domain) >= 6
