"""Tests for the deterministic event bus and the bus-driven dispatcher.

Two load-bearing contracts:

* **Engine equivalence** — ``MultiJobCluster.run(engine="events")`` must
  be bit-identical to the pre-refactor loop (``engine="legacy"``): same
  timelines, same /proc counters, same clock, over randomized job mixes
  (the hypothesis property) and real workload chains.
* **Deterministic replay** — the same mix produces the same delivered
  event log, and :func:`replay` re-dispatches a recorded log so a fresh
  observer reconstructs exactly the per-job history the live run saw.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.eventbus import (
    EVENT_ATTEMPT_FINISHED,
    EVENT_DISPATCH,
    EVENT_JOB_FINISHED,
    EVENT_SUBMIT,
    EVENT_TYPES,
    Event,
    EventBus,
    replay,
)
from repro.cluster.scheduler import FairScheduler, FifoScheduler, MultiJobCluster


def procfs_state(cluster):
    """Every observable /proc variable of every slave, samples included."""
    out = []
    for node in cluster.slaves:
        proc = node.procfs
        out.append(
            (
                {k: v for k, v in vars(proc).items() if k != "samples"},
                list(proc.samples),
            )
        )
    return out


def small_cluster():
    return make_cluster(2, map_slots=4, reduce_slots=2, block_size=64 * 1024)


def synthetic_job(name, n_maps=2, cpu=0.05, n_reduces=1):
    return JobWork(
        name,
        maps=[MapWork(1024, cpu, 1024) for _ in range(n_maps)],
        reduces=[ReduceWork(1024, cpu, 1024) for _ in range(n_reduces)],
    )


# -- the bus itself ------------------------------------------------------------


class TestEventBus:
    def test_delivery_is_fifo_within_a_priority(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EVENT_SUBMIT, lambda e: seen.append(e.payload["job"]))
        for name in ("a", "b", "c"):
            bus.publish(EVENT_SUBMIT, job=name)
        bus.pump()
        assert seen == ["a", "b", "c"]

    def test_lower_priority_drains_first(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EVENT_SUBMIT, lambda e: seen.append(("submit", e.seq)))
        bus.subscribe(EVENT_DISPATCH, lambda e: seen.append(("dispatch", e.seq)))
        bus.publish(EVENT_DISPATCH, priority=1)
        bus.publish(EVENT_SUBMIT, priority=0)
        bus.pump()
        assert [kind for kind, _ in seen] == ["submit", "dispatch"]

    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EVENT_SUBMIT, lambda e: seen.append("first"))
        bus.subscribe(EVENT_SUBMIT, lambda e: seen.append("second"))
        bus.publish(EVENT_SUBMIT)
        bus.pump()
        assert seen == ["first", "second"]

    def test_unknown_event_type_rejected_everywhere(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.publish("rebalance")
        with pytest.raises(ValueError):
            bus.subscribe("rebalance", lambda e: None)

    def test_non_scalar_payload_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.publish(EVENT_SUBMIT, nodes=["slave1"])
        with pytest.raises(TypeError):
            bus.subscribe(EVENT_SUBMIT, "not callable")

    def test_events_published_by_handlers_are_delivered(self):
        bus = EventBus()
        seen = []
        bus.subscribe(
            EVENT_SUBMIT,
            lambda e: bus.publish(EVENT_JOB_FINISHED, job=e.payload["job"]),
        )
        bus.subscribe(EVENT_JOB_FINISHED, lambda e: seen.append(e.payload["job"]))
        bus.publish(EVENT_SUBMIT, job="j0")
        delivered = bus.pump()
        assert seen == ["j0"]
        assert delivered == 2

    def test_pump_runaway_guard(self):
        bus = EventBus()
        bus.subscribe(EVENT_DISPATCH, lambda e: bus.publish(EVENT_DISPATCH))
        bus.publish(EVENT_DISPATCH)
        with pytest.raises(RuntimeError):
            bus.pump(max_events=50)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        handler = lambda e: seen.append(e.type)  # noqa: E731
        bus.subscribe(EVENT_SUBMIT, handler)
        bus.unsubscribe(EVENT_SUBMIT, handler)
        bus.publish(EVENT_SUBMIT)
        bus.pump()
        assert seen == []
        assert bus.subscribers(EVENT_SUBMIT) == ()

    def test_log_records_delivered_events_only(self):
        bus = EventBus()
        bus.publish(EVENT_SUBMIT, job="a")
        bus.publish(EVENT_SUBMIT, job="b")
        assert bus.log == []
        assert len(bus) == 2
        bus.process_one()
        assert [e.payload["job"] for e in bus.log] == ["a"]

    def test_describe_excludes_seq(self):
        a = Event(priority=0, seq=0, type=EVENT_SUBMIT, time_s=0.0, payload={"j": 1})
        b = Event(priority=0, seq=9, type=EVENT_SUBMIT, time_s=2.0, payload={"j": 1})
        assert a.describe() == b.describe()

    def test_taxonomy_is_closed_and_unique(self):
        assert len(set(EVENT_TYPES)) == len(EVENT_TYPES)

    def test_replay_dispatches_in_log_order(self):
        bus = EventBus()
        for name in ("a", "b"):
            bus.publish(EVENT_SUBMIT, job=name)
        bus.publish(EVENT_JOB_FINISHED, job="a")
        bus.pump()
        seen = []
        replayed = replay(
            bus.log,
            {
                EVENT_SUBMIT: lambda e: seen.append(("submit", e.payload["job"])),
                EVENT_JOB_FINISHED: lambda e: seen.append(("done", e.payload["job"])),
            },
        )
        assert seen == [("submit", "a"), ("submit", "b"), ("done", "a")]
        assert replayed == bus.log


# -- engine equivalence: bus-driven == legacy dispatch -------------------------


def run_both_engines(make_jobs, scheduler_factory=FifoScheduler):
    """Run the same submission sequence through both engines."""
    results = {}
    for engine in ("events", "legacy"):
        cluster = small_cluster()
        multi = MultiJobCluster(cluster, scheduler_factory())
        make_jobs(multi)
        outcome = multi.run(engine=engine)
        results[engine] = (cluster, outcome)
    return results["events"], results["legacy"]


class TestEngineEquivalence:
    def test_single_job(self):
        (ec, eo), (lc, lo) = run_both_engines(
            lambda m: m.submit(synthetic_job("j0"))
        )
        assert [r.timeline for r in eo.reports] == [r.timeline for r in lo.reports]
        assert procfs_state(ec) == procfs_state(lc)
        assert ec.clock == lc.clock

    def test_chain_with_arrivals(self):
        def build(multi):
            first = multi.submit(synthetic_job("a", n_maps=4), arrival_s=0.0)
            multi.submit(synthetic_job("b"), after=first, arrival_s=0.1)
            multi.submit(synthetic_job("c", n_reduces=0), arrival_s=0.05)

        (ec, eo), (lc, lo) = run_both_engines(build)
        assert [r.to_dict() for r in eo.reports] == [r.to_dict() for r in lo.reports]
        assert procfs_state(ec) == procfs_state(lc)
        assert ec.clock == lc.clock
        assert ec.network.bytes_moved == lc.network.bytes_moved

    def test_events_engine_is_the_default_and_logs(self):
        cluster = small_cluster()
        multi = MultiJobCluster(cluster, FifoScheduler())
        multi.submit(synthetic_job("j0"))
        outcome = multi.run()
        types = [e.type for e in outcome.events]
        assert EVENT_SUBMIT in types
        assert EVENT_ATTEMPT_FINISHED in types
        assert EVENT_JOB_FINISHED in types

    def test_legacy_engine_has_no_event_log(self):
        cluster = small_cluster()
        multi = MultiJobCluster(cluster, FifoScheduler())
        multi.submit(synthetic_job("j0"))
        assert multi.run(engine="legacy").events == ()

    def test_unknown_engine_rejected(self):
        multi = MultiJobCluster(small_cluster(), FifoScheduler())
        multi.submit(synthetic_job("j0"))
        with pytest.raises(ValueError):
            multi.run(engine="threads")

    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(1, 4),  # maps
                st.integers(0, 2),  # reduces
                st.floats(0.0, 0.15, allow_nan=False),  # cpu seconds
                st.floats(0.0, 0.5, allow_nan=False),  # arrival
                st.sampled_from(["alice", "bob"]),
                st.sampled_from(["batch", "adhoc"]),
                st.sampled_from([None, 0]),  # chain to previous job?
            ),
            min_size=1,
            max_size=6,
        ),
        scheduler=st.sampled_from([FifoScheduler, FairScheduler]),
    )
    @settings(max_examples=20, deadline=None)
    def test_randomized_mixes_are_bit_identical(self, jobs, scheduler):
        def build(multi):
            previous = None
            for i, (m, r, cpu, arrival, user, pool, chain) in enumerate(jobs):
                job = multi.submit(
                    synthetic_job(f"j{i}", n_maps=m, cpu=cpu, n_reduces=r),
                    arrival_s=arrival,
                    user=user,
                    pool=pool,
                    after=previous if chain is not None else None,
                )
                previous = job

        (ec, eo), (lc, lo) = run_both_engines(build, scheduler)
        assert [rep.timeline for rep in eo.reports] == [
            rep.timeline for rep in lo.reports
        ]
        assert procfs_state(ec) == procfs_state(lc)
        assert ec.clock == lc.clock
        assert ec.network.bytes_moved == lc.network.bytes_moved


# -- deterministic event logs --------------------------------------------------


class TestDeterministicLog:
    def build(self, multi):
        first = multi.submit(synthetic_job("a", n_maps=3))
        multi.submit(synthetic_job("b"), after=first)
        multi.submit(synthetic_job("c"), arrival_s=0.2)

    def run_once(self):
        cluster = small_cluster()
        multi = MultiJobCluster(cluster, FifoScheduler())
        self.build(multi)
        return multi.run()

    def test_same_mix_same_history(self):
        one = self.run_once()
        two = self.run_once()
        assert [e.describe() for e in one.events] == [
            e.describe() for e in two.events
        ]

    def test_replayed_log_reconstructs_per_job_history(self):
        outcome = self.run_once()
        live = {}
        for event in outcome.events:
            job = event.payload.get("job_id")
            if job is not None:
                live.setdefault(job, []).append(event.type)

        rebuilt = {}

        def observe(event):
            job = event.payload.get("job_id")
            if job is not None:
                rebuilt.setdefault(job, []).append(event.type)

        replay(list(outcome.events), {t: observe for t in EVENT_TYPES})
        assert rebuilt == live
        # Every job's history starts with its submission and ends with
        # its commit.
        for types in rebuilt.values():
            assert types[0] == EVENT_SUBMIT
            assert types[-1] == EVENT_JOB_FINISHED
