"""Figure 1: top sites in the web, by application domain.

Paper values: Search Engine 40 %, Social Network 25 %, Electronic
Commerce 15 %, Media Streaming 5 %, Others 15 %.
"""

import pytest

from conftest import run_once

from repro.analysis.domains import (
    COMMERCE,
    OTHERS,
    SEARCH,
    SOCIAL,
    STREAMING,
    domain_shares,
    top_domains,
)

PAPER_SHARES = {
    SEARCH: 0.40,
    SOCIAL: 0.25,
    COMMERCE: 0.15,
    STREAMING: 0.05,
    OTHERS: 0.15,
}


def test_fig01(benchmark):
    shares = run_once(benchmark, domain_shares)
    print()
    print("Figure 1: Top sites in the web")
    for share in shares:
        paper = PAPER_SHARES[share.category]
        print(f"{share.category:<22s} measured {share.share:>5.0%}  paper {paper:>5.0%}  "
              f"({len(share.sites)} sites)")

    measured = {s.category: s.share for s in shares}
    for category, paper_value in PAPER_SHARES.items():
        assert measured[category] == pytest.approx(paper_value, abs=1e-9)
    assert top_domains(3) == [SEARCH, SOCIAL, COMMERCE]
