"""Tests for the CSV/JSON exports and the command-line interface."""

import csv
import io
import json

import pytest

from repro.__main__ import build_parser, main
from repro.core import DCBench, characterize
from repro.core.export import COLUMNS, to_csv, to_json


@pytest.fixture(scope="module")
def chars():
    suite = DCBench.default()
    return [
        characterize(suite.entry(name), instructions=20_000)
        for name in ("WordCount", "SPECWeb")
    ]


class TestExports:
    def test_csv_roundtrip(self, chars):
        text = to_csv(chars)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["workload"] == "WordCount"
        assert set(rows[0]) == set(COLUMNS)
        assert float(rows[0]["ipc"]) > 0

    def test_json_roundtrip(self, chars):
        data = json.loads(to_json(chars))
        assert [row["workload"] for row in data] == ["WordCount", "SPECWeb"]
        assert data[1]["group"] == "service"
        stall_total = sum(data[0][f"stall_{c}"] for c in
                          ("fetch", "rat", "load", "rs_full", "store", "rob_full"))
        assert stall_total == pytest.approx(1.0)

    def test_csv_and_json_agree(self, chars):
        csv_rows = list(csv.DictReader(io.StringIO(to_csv(chars))))
        json_rows = json.loads(to_json(chars))
        for c_row, j_row in zip(csv_rows, json_rows):
            assert float(c_row["l2_mpki"]) == pytest.approx(j_row["l2_mpki"])


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Naive Bayes" in out and "HPCC-STREAM" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table III" in out

    def test_run(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1", "--slaves", "2"]) == 0
        out = capsys.readouterr().out
        assert "Grep" in out
        assert "Map input records" in out

    def test_characterize_table(self, capsys):
        assert main(["characterize", "Grep", "--instructions", "15000"]) == 0
        out = capsys.readouterr().out
        assert "Grep" in out and "ipc" in out

    def test_characterize_csv(self, capsys):
        assert main(
            ["characterize", "Grep", "--instructions", "15000", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        rows = list(csv.DictReader(io.StringIO(out)))
        assert rows[0]["workload"] == "Grep"

    def test_characterize_json(self, capsys):
        assert main(
            ["characterize", "Grep", "--instructions", "15000", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["workload"] == "Grep"

    def test_domains(self, capsys):
        assert main(["domains"]) == 0
        out = capsys.readouterr().out
        assert "Search Engine" in out and "40%" in out

    def test_profile(self, capsys):
        assert main(["profile", "Sort", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "# workload: Sort" in out
        assert "overhead" in out

    def test_colocate(self, capsys):
        assert main(["colocate", "Grep", "WordCount", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out and "Grep" in out and "WordCount" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["characterize", "NotAWorkload"])


class TestRunFlagValidation:
    """Fault-injection flags reject malformed values with argparse errors."""

    @staticmethod
    def rejects(argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error

    def test_rejects_nan_fault_rate(self, capsys):
        self.rejects(["run", "Grep", "--faults", "nan"])
        assert "rate in [0, 1]" in capsys.readouterr().err

    def test_rejects_negative_fault_rate(self):
        self.rejects(["run", "Grep", "--faults", "-0.1"])

    def test_rejects_fault_rate_above_one(self):
        self.rejects(["run", "Grep", "--faults", "1.5"])

    def test_rejects_non_numeric_fault_rate(self):
        self.rejects(["run", "Grep", "--faults", "many"])

    def test_rejects_negative_crash_time(self):
        self.rejects(["run", "Grep", "--crash-node", "slave1",
                      "--crash-time", "-1"])

    def test_rejects_nan_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-crash-time", "nan"])

    def test_rejects_infinite_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-crash-time", "inf"])

    def test_crash_time_requires_crash_node(self, capsys):
        self.rejects(["run", "Grep", "--crash-time", "1.0"])
        assert "--crash-time requires --crash-node" in capsys.readouterr().err

    def test_recovery_requires_master_crash_time(self, capsys):
        self.rejects(["run", "Grep", "--recovery", "resume"])
        assert "requires --master-crash-time" in capsys.readouterr().err

    def test_master_downtime_requires_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-downtime", "0.5"])

    def test_rejects_unknown_recovery_mode(self):
        self.rejects(["run", "Grep", "--master-crash-time", "1",
                      "--recovery", "reboot"])

    def test_rejects_unknown_crash_node(self, capsys):
        self.rejects(["run", "Grep", "--slaves", "2", "--crash-node", "slave9"])
        err = capsys.readouterr().err
        assert "slave9" in err and "slave1, slave2" in err

    def test_master_crash_run_succeeds(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1",
                     "--master-crash-time", "0.05", "--recovery", "resume"]) == 0
        out = capsys.readouterr().out
        assert "resilience accounting" in out
        assert "master_crashes" in out
        assert "recovery_downtime_s" in out

    def test_node_crash_run_succeeds(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1",
                     "--crash-node", "slave2", "--crash-time", "0.02"]) == 0
        assert "resilience accounting" in capsys.readouterr().out
