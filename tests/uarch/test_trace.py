"""Tests for the trace specification and synthesizer."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.isa import OpClass
from repro.uarch.trace import (
    KERNEL_CODE_BASE,
    MAX_DEP_DISTANCE,
    MemoryRegion,
    SyntheticTrace,
    TraceSpec,
    USER_CODE_BASE,
)


def tiny_spec(**kw) -> TraceSpec:
    defaults = dict(name="t", instructions=5000)
    defaults.update(kw)
    return TraceSpec(**defaults)


class TestMemoryRegionValidation:
    def test_defaults_valid(self):
        r = MemoryRegion("r", 1024)
        assert r.pattern == "sequential"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0),
            dict(size_bytes=-5),
            dict(weight=-1.0),
            dict(pattern="zigzag"),
            dict(stride=0),
            dict(burst=0),
            dict(hot_fraction=0.0),
            dict(hot_fraction=1.5),
            dict(hot_weight=-0.1),
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        base = dict(name="r", size_bytes=1024)
        base.update(kwargs)
        with pytest.raises(ValueError):
            MemoryRegion(**base)


class TestTraceSpecValidation:
    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            tiny_spec(instructions=0)

    def test_rejects_mix_over_one(self):
        with pytest.raises(ValueError):
            tiny_spec(load_fraction=0.6, store_fraction=0.5)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            tiny_spec(kernel_fraction=1.2)

    def test_rejects_tiny_block_len(self):
        with pytest.raises(ValueError):
            tiny_spec(mean_block_len=1.0)

    def test_rejects_empty_regions(self):
        with pytest.raises(ValueError):
            tiny_spec(regions=())

    def test_with_instructions(self):
        spec = tiny_spec().with_instructions(99)
        assert spec.instructions == 99
        assert spec.name == "t"

    def test_scaled_divides_footprints(self):
        spec = tiny_spec(
            code_footprint=64 * 1024,
            regions=(MemoryRegion("r", 1 << 20),),
        ).scaled(8)
        assert spec.code_footprint == 8 * 1024
        assert spec.regions[0].size_bytes == (1 << 20) // 8

    def test_scaled_one_is_identity(self):
        spec = tiny_spec()
        assert spec.scaled(1) is spec

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tiny_spec().scaled(0)

    def test_scaled_floors_small_footprints(self):
        spec = tiny_spec(code_footprint=2048).scaled(8)
        assert spec.code_footprint >= 1024


class TestGeneration:
    def test_yields_exactly_n_ops(self):
        trace = SyntheticTrace(tiny_spec(instructions=777))
        assert len(list(trace)) == 777
        assert len(trace) == 777

    def test_deterministic_across_iterations(self):
        trace = SyntheticTrace(tiny_spec())
        first = [(u.op, u.pc, u.addr, u.taken, u.target, u.dep1, u.dep2, u.kernel) for u in trace]
        second = [(u.op, u.pc, u.addr, u.taken, u.target, u.dep1, u.dep2, u.kernel) for u in trace]
        assert first == second

    def test_different_seeds_differ(self):
        a = SyntheticTrace(tiny_spec(seed=1)).materialize()
        b = SyntheticTrace(tiny_spec(seed=2)).materialize()
        assert any(
            (x.op, x.pc, x.addr) != (y.op, y.pc, y.addr) for x, y in zip(a, b)
        )

    def test_instruction_mix_close_to_spec(self):
        spec = tiny_spec(
            instructions=40_000,
            load_fraction=0.3,
            store_fraction=0.1,
            kernel_fraction=0.0,
        )
        ops = SyntheticTrace(spec).materialize()
        loads = sum(1 for u in ops if u.op == OpClass.LOAD)
        stores = sum(1 for u in ops if u.op == OpClass.STORE)
        branches = sum(1 for u in ops if u.op == OpClass.BRANCH)
        n = len(ops)
        # Memory fractions apply to non-branch slots; expect to land within
        # a few points once the ~1/mean_block_len branch share is removed.
        non_branch = n - branches
        assert loads / non_branch == pytest.approx(0.3, abs=0.03)
        assert stores / non_branch == pytest.approx(0.1, abs=0.02)
        assert branches / n == pytest.approx(1 / spec.mean_block_len, abs=0.05)

    def test_kernel_fraction_close_to_spec(self):
        for target in (0.04, 0.24, 0.45):
            spec = tiny_spec(instructions=60_000, kernel_fraction=target)
            ops = SyntheticTrace(spec).materialize()
            measured = sum(u.kernel for u in ops) / len(ops)
            assert measured == pytest.approx(target, rel=0.15)

    def test_zero_kernel_fraction_has_no_kernel_ops(self):
        ops = SyntheticTrace(tiny_spec(kernel_fraction=0.0)).materialize()
        assert not any(u.kernel for u in ops)

    def test_kernel_ops_live_in_kernel_code(self):
        ops = SyntheticTrace(tiny_spec(kernel_fraction=0.3)).materialize()
        for u in ops:
            if u.kernel:
                assert u.pc >= KERNEL_CODE_BASE
            else:
                assert USER_CODE_BASE <= u.pc < KERNEL_CODE_BASE

    def test_user_pcs_within_footprint(self):
        spec = tiny_spec(code_footprint=16 * 1024, kernel_fraction=0.0)
        for u in SyntheticTrace(spec).materialize():
            # Sequential drift may pass slightly beyond the footprint within
            # a basic block, never beyond it plus a max block.
            assert USER_CODE_BASE <= u.pc <= USER_CODE_BASE + 16 * 1024 + 64 * 4

    def test_memory_ops_have_addresses(self):
        for u in SyntheticTrace(tiny_spec()).materialize():
            if u.op in (OpClass.LOAD, OpClass.STORE):
                assert u.addr > 0
            elif u.op != OpClass.BRANCH:
                assert u.addr == 0

    def test_branches_have_targets(self):
        for u in SyntheticTrace(tiny_spec()).materialize():
            if u.op == OpClass.BRANCH:
                assert u.target > 0

    def test_dep_distances_bounded(self):
        for i, u in enumerate(SyntheticTrace(tiny_spec()).materialize()):
            assert 0 <= u.dep1 <= min(i, MAX_DEP_DISTANCE)
            assert 0 <= u.dep2 <= min(i, MAX_DEP_DISTANCE)

    def test_stats_populated_after_iteration(self):
        trace = SyntheticTrace(tiny_spec(instructions=3000))
        list(trace)
        assert trace.stats.instructions == 3000
        assert trace.stats.loads > 0
        assert trace.stats.branches > 0

    def test_sequential_region_addresses_advance(self):
        spec = tiny_spec(
            regions=(MemoryRegion("seq", 1 << 16, pattern="sequential"),),
            kernel_fraction=0.0,
        )
        addrs = [u.addr for u in SyntheticTrace(spec).materialize() if u.addr]
        diffs = [b - a for a, b in zip(addrs, addrs[1:])]
        # Sequential region: nearly all gaps equal the access size.
        assert sum(1 for d in diffs if d == spec.access_bytes) / len(diffs) > 0.9

    def test_strided_region_uses_stride(self):
        spec = tiny_spec(
            regions=(MemoryRegion("str", 1 << 20, pattern="strided", stride=256),),
            kernel_fraction=0.0,
        )
        addrs = [u.addr for u in SyntheticTrace(spec).materialize() if u.op == OpClass.LOAD]
        diffs = {b - a for a, b in zip(addrs, addrs[1:])}
        assert 256 in diffs

    def test_random_region_spreads(self):
        spec = tiny_spec(
            instructions=20_000,
            regions=(MemoryRegion("rnd", 1 << 22, pattern="random", burst=1),),
            kernel_fraction=0.0,
        )
        addrs = [u.addr for u in SyntheticTrace(spec).materialize() if u.op == OpClass.LOAD]
        pages = {a >> 12 for a in addrs}
        assert len(pages) > 100

    def test_hot_skew_concentrates_accesses(self):
        hot = tiny_spec(
            instructions=20_000,
            regions=(
                MemoryRegion(
                    "rnd", 1 << 22, pattern="random", burst=1, hot_fraction=0.01, hot_weight=0.95
                ),
            ),
            kernel_fraction=0.0,
        )
        uniform = tiny_spec(
            instructions=20_000,
            regions=(MemoryRegion("rnd", 1 << 22, pattern="random", burst=1),),
            kernel_fraction=0.0,
        )
        pages_hot = {u.addr >> 12 for u in SyntheticTrace(hot).materialize() if u.addr}
        pages_uni = {u.addr >> 12 for u in SyntheticTrace(uniform).materialize() if u.addr}
        assert len(pages_hot) < len(pages_uni) / 2

    def test_pointer_region_serialises_behind_previous_load(self):
        spec = tiny_spec(
            regions=(MemoryRegion("ptr", 1 << 20, pattern="pointer", burst=1),),
            kernel_fraction=0.0,
            dep_density=0.0,
        )
        ops = SyntheticTrace(spec).materialize()
        loads = [(i, u) for i, u in enumerate(ops) if u.op == OpClass.LOAD]
        chained = sum(1 for i, u in loads[1:] if u.dep1 > 0)
        assert chained / max(1, len(loads) - 1) > 0.8

    def test_region_weights_respected(self):
        spec = tiny_spec(
            instructions=30_000,
            regions=(
                MemoryRegion("a", 1 << 16, weight=3.0),
                MemoryRegion("b", 1 << 16, weight=1.0),
            ),
            kernel_fraction=0.0,
        )
        ops = SyntheticTrace(spec).materialize()
        # Region bases are disjoint; region a comes first.
        a_hits = sum(1 for u in ops if u.addr and u.addr < 0x10000000 + (1 << 16) + 4096)
        total = sum(1 for u in ops if u.addr)
        assert a_hits / total == pytest.approx(0.75, abs=0.05)


class TestTraceProperties:
    @given(
        st.integers(min_value=100, max_value=3000),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_seed_yields_exact_length(self, n, seed):
        trace = SyntheticTrace(tiny_spec(instructions=n, seed=seed))
        assert sum(1 for _ in trace) == n

    @given(st.floats(min_value=0.0, max_value=0.6))
    @settings(max_examples=15, deadline=None)
    def test_kernel_fraction_tracks_target(self, f):
        spec = tiny_spec(instructions=20_000, kernel_fraction=f)
        ops = SyntheticTrace(spec).materialize()
        measured = sum(u.kernel for u in ops) / len(ops)
        assert abs(measured - f) < 0.08
