"""Tests for the sampled profiler."""

import pytest

from repro.perf.sampling import FlatProfile, profile_trace
from repro.uarch.trace import MemoryRegion, TraceSpec


def spec(**kw) -> TraceSpec:
    defaults = dict(name="p", instructions=30_000)
    defaults.update(kw)
    return TraceSpec(**defaults)


class TestProfileTrace:
    def test_sample_count_matches_period(self):
        profile = profile_trace(spec(instructions=10_000), period=100)
        assert profile.samples == 100

    def test_prime_period_default(self):
        profile = profile_trace(spec(instructions=9_700))
        assert profile.samples == 100

    def test_kernel_share_tracks_kernel_fraction(self):
        profile = profile_trace(spec(kernel_fraction=0.3), period=53)
        assert profile.kernel_share == pytest.approx(0.3, abs=0.08)

    def test_zero_kernel(self):
        profile = profile_trace(spec(kernel_fraction=0.0), period=53)
        assert profile.kernel_share == 0.0

    def test_hot_code_concentrates_samples(self):
        concentrated = profile_trace(
            spec(code_footprint=512 * 1024, hot_code_fraction=0.02, hot_code_weight=0.98,
                 kernel_fraction=0.0),
            period=31,
        )
        flat = profile_trace(
            spec(code_footprint=512 * 1024, hot_code_fraction=0.9, hot_code_weight=0.5,
                 kernel_fraction=0.0),
            period=31,
        )
        assert concentrated.coverage(10) > flat.coverage(10)

    def test_small_footprint_fewer_blocks(self):
        small = profile_trace(spec(code_footprint=2048, kernel_fraction=0.0), period=31)
        big = profile_trace(
            spec(code_footprint=1 << 20, hot_code_fraction=0.8, kernel_fraction=0.0),
            period=31,
        )
        assert small.distinct_blocks() < big.distinct_blocks()

    def test_blocks_are_aligned(self):
        profile = profile_trace(spec(), period=41, block_bytes=256)
        assert all(base % 256 == 0 for base in profile.blocks)

    def test_block_counts_sum_to_samples(self):
        profile = profile_trace(spec(), period=41)
        assert sum(profile.blocks.values()) == profile.samples

    def test_render_contains_header_and_modes(self):
        text = profile_trace(spec(kernel_fraction=0.3), period=31).render(5)
        assert "# workload: p" in text
        assert "kernel" in text

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            profile_trace(spec(), period=0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            profile_trace(spec(), block_bytes=100)

    def test_empty_profile_metrics(self):
        profile = FlatProfile("x", 97, 256)
        assert profile.kernel_share == 0.0
        assert profile.coverage() == 0.0
        assert profile.hot_blocks() == []
