"""Figure 9: L2 cache misses per thousand instructions.

Paper shape: data-analysis ≈ 11 L2 MPKI on average versus ≈ 60 for the
services — "the data analysis workloads own better locality than the
service workloads" — and higher than (most of) HPCC, whose programs vary
dramatically.
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig09(benchmark, suite_chars, chars_by_name, service_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(9, suite_chars))
    print()
    print(render_metric_table(9, suite_chars))

    da_avg = series["avg"]
    svc_avg = sum(c.metrics.l2_mpki for c in service_chars) / len(service_chars)
    # Services miss L2 several times more often than the DA workloads.
    assert svc_avg > 2 * da_avg
    assert 40 < svc_avg < 110  # paper: ~60
    assert 5 < da_avg < 35     # paper: ~11
    # Most HPCC programs sit below the DA average (cache-tuned kernels);
    # the locality spectrum still varies dramatically across the seven.
    below = [c for c in hpcc_chars if c.metrics.l2_mpki < da_avg]
    assert len(below) >= 4
    hpcc_values = [c.metrics.l2_mpki for c in hpcc_chars]
    assert max(hpcc_values) > 10 * (min(hpcc_values) + 0.01)
