"""Indexed fast path for the multi-job cluster simulator.

:class:`FastMultiJobCluster` replays :class:`MultiJobCluster`'s dispatch
loop — FIFO/Fair/Capacity semantics, delay scheduling, preemption
timeouts, speculation, fault and topology hooks, the event log — while
replacing every per-round O(jobs) / O(nodes) rescan with an index:

* **job-ready floors** live in a min-heap; a job is examined only when
  the dispatch clock reaches its floor, instead of every submission
  being rescanned every round;
* **node/slot state** is summarized per node (earliest-free time) and
  indexed by a min segment tree, so delay-scheduling slot picks and the
  earliest-slot-time query are O(log nodes) instead of O(nodes × slots);
* **running attempts** live in an end-time heap mirroring the reference
  loop's permanent ``end_s <= now`` filter, so expiring attempts cost
  O(log running) instead of an O(running) rebuild per round;
* **map-completion maxima** reuse ``ScheduledJob.last_map_end_s`` (also
  maintained by the reference engine), and jobs whose map phase is done
  wait in a small set rather than being re-discovered by scanning.

The fast path is bit-identical to the reference by construction: it
overrides only *where* candidates come from, never *how* they are
charged — task charging, preemption bookkeeping, fault handling and
event publication all run the inherited reference code.  Equivalence
(reports, timelines, /proc counters including sample streams, clock,
event logs) is property-tested in ``tests/cluster/test_clusterpath.py``
and re-checked by the ``bench-cluster`` CLI on every benchmark run.

Nodes named by the fault plan (crash or partition targets) are excluded
from the segment tree and brute-forced with the reference formula —
fault plans name a handful of nodes, so dispatch stays logarithmic in
the healthy majority.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.cluster.attempts import JobFailedError
from repro.cluster.cluster import MapWork
from repro.cluster.eventbus import EVENT_STAGE_READY
from repro.cluster.node import Node
from repro.cluster.scheduler import (
    MultiJobCluster,
    RunningTask,
    ScheduledJob,
    SchedulerState,
)

__all__ = ["FastMultiJobCluster"]

_INF = float("inf")


class _LazyWriteProbe:
    """Per-job disk-write accounting from first-touch notes.

    The reference probe snapshots every slave before a charge window and
    diffs every slave after — two O(nodes) sweeps per task.  Charging is
    single-threaded, so recording a node's counter the first time a
    charge function announces it (before any of its writes land) yields
    the same before-value without touching untouched nodes.
    """

    __slots__ = ("_before",)

    def __init__(self) -> None:
        self._before: dict[str, tuple[Node, int]] = {}

    def note(self, node: Node) -> None:
        if node.name not in self._before:
            self._before[node.name] = (node, node.procfs.writes_completed)

    def settle(self, job: ScheduledJob) -> None:
        for name, (node, before) in self._before.items():
            delta = node.procfs.writes_completed - before
            if delta:
                job.disk_writes[name] = job.disk_writes.get(name, 0) + delta


class _MinSegTree:
    """Min segment tree over node indices with leftmost-index queries.

    Supports the two queries delay scheduling needs: the global minimum
    with its leftmost index, and the leftmost index whose value is at
    most a bound — both in O(log n), both resolving ties exactly like
    the reference's first-wins strict-< scan over ``cluster.slaves``.
    """

    __slots__ = ("size", "tree")

    def __init__(self, values: list[float]) -> None:
        size = 1
        while size < len(values):
            size *= 2
        tree = [_INF] * (2 * size)
        tree[size : size + len(values)] = values
        for i in range(size - 1, 0, -1):
            tree[i] = min(tree[2 * i], tree[2 * i + 1])
        self.size = size
        self.tree = tree

    def update(self, index: int, value: float) -> None:
        tree = self.tree
        i = index + self.size
        tree[i] = value
        i >>= 1
        while i:
            merged = min(tree[2 * i], tree[2 * i + 1])
            if tree[i] == merged:
                break
            tree[i] = merged
            i >>= 1

    def min_value(self) -> float:
        return self.tree[1]

    def leftmost_leq(self, bound: float) -> int | None:
        """Leftmost index with value <= *bound*, or None."""
        tree = self.tree
        if tree[1] > bound:
            return None
        i = 1
        while i < self.size:
            i = 2 * i if tree[2 * i] <= bound else 2 * i + 1
        return i - self.size


class _LazyState(SchedulerState):
    """SchedulerState that materializes ``running_tasks`` on demand.

    FIFO (and any non-preempting scheduler that ignores running state)
    never reads ``running_tasks``, so the common dispatch round skips
    the O(running) list build entirely.
    """

    def __init__(self, now, runnable, materialize, total_map_slots):
        self.now = now
        self.runnable = runnable
        self.total_map_slots = total_map_slots
        self._materialize = materialize
        self._materialized = None

    @property
    def running_tasks(self) -> list[RunningTask]:
        if self._materialized is None:
            self._materialized = self._materialize()
        return self._materialized


class FastMultiJobCluster(MultiJobCluster):
    """Drop-in :class:`MultiJobCluster` with indexed dispatch rounds.

    Same constructor, same :meth:`submit` / :meth:`submit_chain` /
    :meth:`run` surface, bit-identical outcomes; select it with
    ``run_mix(..., engine="fast")``.
    """

    _fast_ready = False

    # -- index construction ----------------------------------------------------

    def _fast_init(self) -> None:
        cluster = self.cluster
        self._slaves = cluster.slaves
        self._slave_names = [node.name for node in self._slaves]
        self._node_idx = cluster._slave_index
        # per-node slot counts never change mid-run; don't re-sum the
        # whole cluster every round
        self._total_map_slots = cluster.total_map_slots
        faults = self._faults
        special: set[int] = set()
        if faults is not None:
            for name in faults.crash_at:
                special.add(self._node_idx[name])
            for name in faults.windows:
                special.add(self._node_idx[name])
        #: fault-plan nodes, brute-forced with the reference formula
        self._special = sorted(special)
        self._special_set = special
        self._node_min = [min(node.map_slot_free) for node in self._slaves]
        self._segtree = _MinSegTree(
            [
                _INF if i in special else value
                for i, value in enumerate(self._node_min)
            ]
        )
        self._rack_members: dict[str, list[int]] = {}
        topology = cluster.topology
        if topology is not None and not topology.is_flat:
            for i, name in enumerate(self._slave_names):
                if topology.has_node(name):
                    self._rack_members.setdefault(
                        topology.rack_of(name), []
                    ).append(i)
        # job-side indexes
        self._children: dict[ScheduledJob, list[ScheduledJob]] = {}
        self._floors: dict[ScheduledJob, float] = {}
        self._active: dict[ScheduledJob, float] = {}
        self._future: list[tuple[float, int, ScheduledJob]] = []
        self._pending_announce: list[ScheduledJob] = []
        self._awaiting: set[ScheduledJob] = set()
        self._run_heap: list[tuple[float, int, RunningTask]] = []
        self._removed: set[int] = set()
        self._rt_counter = 0
        for job in self.jobs:
            if job.depends_on is not None:
                self._children.setdefault(job.depends_on, []).append(job)
            else:
                floor = max(self._origin, job.arrival_s)
                self._floors[job] = floor
                heappush(self._future, (floor, job.seq, job))
                self._pending_announce.append(job)
        self._fast_ready = True

    # -- node-index maintenance ------------------------------------------------

    def _touch(self, idx: int) -> None:
        earliest = min(self._slaves[idx].map_slot_free)
        if earliest != self._node_min[idx]:
            self._node_min[idx] = earliest
            if idx not in self._special_set:
                self._segtree.update(idx, earliest)

    def _set_map_slot(self, node: Node, slot: int, at: float) -> None:
        node.map_slot_free[slot] = at
        self._touch(self._node_idx[node.name])

    def _node_time_at(self, idx: int, at: float, faulty: bool) -> float | None:
        """One node's candidate start time (the reference's per-node
        formula): earliest slot vs the floor, shifted past a partition,
        None when the node is dead by then."""
        t = self._node_min[idx]
        if t < at:
            t = at
        if faulty and idx in self._special_set:
            faults = self._faults
            name = self._slave_names[idx]
            window = faults.partition_at(name, t)
            if window is not None:
                t = window[1]
            if faults.dead_at(name, t):
                return None
        return t

    def _best_any_slot(self, at: float, faulty: bool) -> tuple[int | None, float]:
        """Globally earliest ``(node index, time)`` — the lexicographic
        minimum of ``(max(node_min, at), index)``, exactly what the
        reference's strict-< first-wins scan selects."""
        tree = self._segtree
        minimum = tree.min_value()
        if minimum <= at:
            best_idx, best_time = tree.leftmost_leq(at), at
        elif minimum < _INF:
            best_idx, best_time = tree.leftmost_leq(minimum), minimum
        else:
            best_idx, best_time = None, _INF
        if faulty:
            for idx in self._special:
                t = self._node_time_at(idx, at, True)
                if t is None:
                    continue
                if t < best_time or (t == best_time and (best_idx is None or idx < best_idx)):
                    best_idx, best_time = idx, t
        return best_idx, best_time

    def _pick_indexed(
        self,
        task: MapWork,
        at: float,
        locality_wait: float,
        rack_wait: float,
        faulty: bool,
    ) -> tuple[Node, int, float]:
        """Delay-scheduling slot pick over the index (both fault modes)."""
        cluster = self.cluster
        best_idx, best_time = self._best_any_slot(at, faulty)
        if best_idx is None:
            # only reachable under faults: every node is crash-dead
            raise JobFailedError("no live node left to run map tasks")
        local_idx, local_time = None, _INF
        if task.preferred_nodes:
            node_idx = self._node_idx
            for name in task.preferred_nodes:
                idx = node_idx.get(name)
                if idx is None:
                    continue
                t = self._node_time_at(idx, at, faulty)
                if t is None:
                    continue
                if t < local_time or (t == local_time and idx < local_idx):
                    local_idx, local_time = idx, t
            if local_idx is not None and local_time <= best_time + locality_wait:
                node = self._slaves[local_idx]
                return node, node.earliest_map_slot(), local_time
        preferred_racks = cluster._preferred_racks(task)
        if preferred_racks:
            rack_idx, rack_time = None, _INF
            for rack in preferred_racks:
                for idx in self._rack_members.get(rack, ()):
                    t = self._node_time_at(idx, at, faulty)
                    if t is None:
                        continue
                    if t < rack_time or (t == rack_time and idx < rack_idx):
                        rack_idx, rack_time = idx, t
            if (
                rack_idx is not None
                and rack_time <= best_time + locality_wait + rack_wait
            ):
                node = self._slaves[rack_idx]
                return node, node.earliest_map_slot(), rack_time
        node = self._slaves[best_idx]
        return node, node.earliest_map_slot(), best_time

    # -- reference-hook overrides ----------------------------------------------

    def _write_probe(self) -> _LazyWriteProbe:
        return _LazyWriteProbe()

    def _earliest_slot_time(self) -> float:
        best = self._segtree.min_value()
        faults = self._faults
        if faults is not None:
            for idx in self._special:
                t = self._node_min[idx]
                if faults.dead_at(self._slave_names[idx], t):
                    continue
                if t < best:
                    best = t
        return best if best < _INF else self.cluster.clock

    def _charge_map_clean(self, task, floor, wait, rack_wait, probe):
        # mirrors HadoopCluster._charge_map_task with the indexed pick
        node, slot, ready = self._pick_indexed(
            task, floor, wait, rack_wait, faulty=False
        )
        task_start = ready if ready > floor else floor
        end = self.cluster._charge_map_on(task, node, task_start, probe=probe)
        node.map_slot_free[slot] = end
        self._touch(self._node_idx[node.name])
        return task_start, end, node, slot

    def _pick_live_map_slot(self, task, at, locality_wait, rack_wait=None):
        if rack_wait is None:
            rack_wait = self.cluster.rack_locality_wait_s
        return self._pick_indexed(task, at, locality_wait, rack_wait, faulty=True)

    # -- running-attempt index -------------------------------------------------

    def _materialize_running(self) -> list[RunningTask]:
        removed = self._removed
        return [
            rt
            for _end, _count, rt in self._run_heap
            if id(rt) not in removed and rt.job.status != "failed"
        ]

    def _drop_finished(self, now: float) -> None:
        """Permanently drop attempts with ``end_s <= now`` (the heap
        twin of the reference loop's running-list filter)."""
        heap = self._run_heap
        removed = self._removed
        while heap and heap[0][0] <= now:
            _end, _count, rt = heappop(heap)
            removed.discard(id(rt))

    def _observe_starvation(self, obs: float, floors) -> None:
        self._obs_t = obs
        runnable = [job for job, floor in floors.items() if floor <= obs]
        if not runnable:
            return
        running = [rt for rt in self._materialize_running() if rt.end_s > obs]
        state = SchedulerState(obs, runnable, running, self._total_map_slots)
        victims = self.scheduler.tasks_to_preempt(obs, state)
        if victims:
            self._drop_finished(obs)
            self._running = running
            self._apply_preemptions(obs, state, victims)

    def _apply_preemptions(self, now, state, victims) -> None:
        super()._apply_preemptions(now, state, victims)
        for rt in victims:
            # stays in the end-time heap until its end expires; the
            # tombstone hides it from materializations meanwhile
            self._removed.add(id(rt))
            job = rt.job
            if job in self._awaiting:
                # a finished map went back to pending: the job queues
                # for map dispatch again
                self._awaiting.discard(job)
                self._active[job] = self._floors[job]

    def _fail_job(self, job, exc) -> None:
        super()._fail_job(job, exc)
        if self._fast_ready:
            self._active.pop(job, None)
            self._awaiting.discard(job)

    def _finishable(self) -> list[ScheduledJob]:
        return sorted(
            self._awaiting, key=lambda job: (job.last_map_end_s, job.seq)
        )

    # -- job lifecycle bookkeeping ---------------------------------------------

    def _on_job_resolved(self, job: ScheduledJob) -> None:
        """After a finish attempt: release dependents of a completed job."""
        if job.status != "completed":
            return
        for child in self._children.get(job, ()):
            if child.status != "pending":
                continue
            floor = max(self._origin, child.arrival_s, job.finished_s)
            self._floors[child] = floor
            heappush(self._future, (floor, child.seq, child))
            self._pending_announce.append(child)

    def _flush_announcements(self) -> None:
        """Publish STAGE_READY for newly-floored jobs in submission
        order — the order the reference's top-of-round jobs scan emits."""
        self._pending_announce.sort(key=lambda job: job.seq)
        for job in self._pending_announce:
            self._ready_announced.add(job.job_id)
            floor = self._floors[job]
            self._publish(
                EVENT_STAGE_READY,
                time_s=floor,
                job_id=job.job_id,
                floor_s=floor,
            )
        self._pending_announce.clear()

    # -- the indexed dispatch round --------------------------------------------

    def _run_round(self) -> bool:
        if not self._fast_ready:
            self._fast_init()
        if self._pending_announce:
            self._flush_announcements()
        active, future = self._active, self._future
        if not active and not future:
            # no dispatchable map work left: run deferred reduce phases
            ready = self._finishable()
            if not ready:
                return False
            for job in ready:
                self._finish_or_fail(job)
                self._awaiting.discard(job)
                self._on_job_resolved(job)
            return True
        min_floor = future[0][0] if future else _INF
        for floor in active.values():
            if floor < min_floor:
                min_floor = floor
        now = self._earliest_slot_time()
        if min_floor > now:
            now = min_floor
        while future and future[0][0] <= now:
            floor, _seq, job = heappop(future)
            active[job] = floor
        if self.scheduler.preemption:
            obs = self._next_observation(active, now)
            if obs is not None:
                self._observe_starvation(obs, active)
                return True
        caught_up = sorted(
            (job for job in self._awaiting if job.last_map_end_s <= now),
            key=lambda job: (job.last_map_end_s, job.seq),
        )
        if caught_up:
            for job in caught_up:
                self._finish_or_fail(job)
                self._awaiting.discard(job)
                self._on_job_resolved(job)
            return True
        runnable = [job for job, floor in active.items() if floor <= now]
        self._drop_finished(now)
        state = _LazyState(
            now, runnable, self._materialize_running, self._total_map_slots
        )
        victims = self.scheduler.tasks_to_preempt(now, state)
        if victims:
            self._running = state.running_tasks
            self._apply_preemptions(now, state, victims)
            return True
        job = self.scheduler.pick_job(now, runnable, state)
        if job not in runnable:
            raise RuntimeError(
                f"{self.scheduler.name} picked a job that is not runnable"
            )
        self._running = []
        try:
            self._dispatch_map(job, active[job])
        except JobFailedError as exc:
            self._fail_job(job, exc)
        else:
            rt = self._running.pop()
            heappush(self._run_heap, (rt.end_s, self._rt_counter, rt))
            self._rt_counter += 1
            if not job.pending:
                # all maps dispatched: park until the reduce phase
                del active[job]
                self._awaiting.add(job)
        return True
