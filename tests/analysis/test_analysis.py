"""Tests for the domain study, speedup study, and findings checks."""

import pytest

from repro.analysis import (
    TOP_SITES,
    classify_sites,
    domain_shares,
    evaluate_findings,
    speedup_study,
    top_domains,
)
from repro.analysis.domains import COMMERCE, OTHERS, SEARCH, SOCIAL, STREAMING
from repro.core import DCBench, characterize
from repro.workloads import workload


class TestDomains:
    def test_twenty_sites(self):
        assert len(TOP_SITES) == 20

    def test_figure_1_shares(self):
        shares = {s.category: s.share for s in domain_shares()}
        # The paper's pie: 40 / 25 / 15 / 5 / 15.
        assert shares[SEARCH] == pytest.approx(0.40)
        assert shares[SOCIAL] == pytest.approx(0.25)
        assert shares[COMMERCE] == pytest.approx(0.15)
        assert shares[STREAMING] == pytest.approx(0.05)
        assert shares[OTHERS] == pytest.approx(0.15)

    def test_shares_sum_to_one(self):
        assert sum(s.share for s in domain_shares()) == pytest.approx(1.0)

    def test_top_three_domains(self):
        # "we focus on the top three application domains" (§II-C).
        assert top_domains(3) == [SEARCH, SOCIAL, COMMERCE]

    def test_classification_covers_all_sites(self):
        grouped = classify_sites()
        assert sum(len(v) for v in grouped.values()) == 20
        assert "google.com" in grouped[SEARCH]
        assert "facebook.com" in grouped[SOCIAL]
        assert "amazon.com" in grouped[COMMERCE]
        assert "youtube.com" in grouped[STREAMING]

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            classify_sites(((1, "example.com", "Gopherspace"),))


class TestSpeedup:
    @pytest.fixture(scope="class")
    def small_study(self):
        # Three representative workloads keep the test quick.
        wls = [workload(n) for n in ("Sort", "K-means", "SVM")]
        return speedup_study(wls, slave_counts=(1, 4, 8), scale=0.5)

    def test_baseline_speedup_is_one(self, small_study):
        for name in small_study.durations:
            assert small_study.speedup(name, 1) == pytest.approx(1.0)

    def test_speedup_monotone_non_decreasing(self, small_study):
        for name in small_study.durations:
            series = small_study.series(name)
            assert series == sorted(series)

    def test_speedups_exceed_parallel_floor(self, small_study):
        lo, hi = small_study.max_spread()
        assert lo > 1.5
        assert hi <= 8.0

    def test_workloads_diverse(self, small_study):
        # "the data analysis workloads are diverse in terms of
        # performance characteristics" (§II-B).
        lo, hi = small_study.max_spread()
        assert hi - lo > 0.5

    def test_rejects_unsorted_slave_counts(self):
        with pytest.raises(ValueError):
            speedup_study([workload("Grep")], slave_counts=(4, 1))


class TestFindings:
    @pytest.fixture(scope="class")
    def chars(self):
        suite = DCBench.default()
        names = [
            "Naive Bayes", "WordCount", "Sort", "K-means",
            "Data Serving", "SPECWeb", "Web Search",
            "HPCC-HPL", "HPCC-STREAM", "HPCC-DGEMM",
        ]
        return [characterize(suite.entry(n), instructions=60_000) for n in names]

    def test_findings_hold_on_sample(self, chars):
        findings = evaluate_findings(chars)
        assert findings.ipc_ordering
        assert findings.stall_split
        assert findings.frontend_pressure
        assert findings.cache_effectiveness
        assert findings.branch_prediction
        assert findings.all_hold()

    def test_findings_values_consistent(self, chars):
        f = evaluate_findings(chars)
        assert f.service_max_ipc < f.da_avg_ipc < f.hpl_ipc
        assert f.da_avg_l2_mpki < f.service_avg_l2_mpki
        assert f.da_avg_mispredict < f.service_avg_mispredict

    def test_findings_need_all_groups(self):
        suite = DCBench.default()
        only_da = [characterize(suite.entry("Grep"), instructions=5_000)]
        with pytest.raises(ValueError):
            evaluate_findings(only_da)
