"""The out-of-order core: one-pass cycle timing model with stall attribution.

:class:`Core` streams a micro-op trace through the modelled pipeline:

1. **Fetch** (:class:`~repro.uarch.frontend.FetchEngine`): L1I + ITLB +
   branch-redirect timing, producing each op's fetch cycle.
2. **Rename/dispatch**: bounded by rename width, occasional RAT stalls
   (partial-register / read-port conflicts), and free entries in the RS,
   ROB and load/store buffers — waits are charged to the matching Figure 6
   stall counter, and like the hardware counters the categories may
   overlap (the paper normalises them; so do we).
3. **Issue/execute**: ops become ready when their producers complete; loads
   and stores translate through the DTLB and walk the L1D/L2/L3 hierarchy.
4. **Retire**: in-order, bounded by retire width; the final retire cycle is
   the run's cycle count.

The model is one-pass (O(n) with small heaps) rather than cycle-by-cycle,
which keeps multi-hundred-thousand-op traces simulable in seconds of pure
Python while preserving the structural bottlenecks the paper measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.uarch.backend import BufferTracker, ExecutionModel, RingTracker
from repro.uarch.branch import BRANCH_MISFETCH, BRANCH_MISPREDICT, BranchUnit
from repro.uarch.caches import Cache, CacheHierarchy
from repro.uarch.config import MachineConfig, XEON_E5645
from repro.uarch.frontend import FRONT_DEPTH, FetchEngine
from repro.uarch.isa import OpClass
from repro.uarch.tlb import PageWalker, Tlb, TlbHierarchy
from repro.uarch.trace import MAX_DEP_DISTANCE, SyntheticTrace, TraceSpec

#: Extra cycles a retired store occupies its buffer entry while draining.
STORE_DRAIN_LATENCY = 4

#: Cycles charged per RAT (partial-register / read-port) conflict.
RAT_STALL_PENALTY = 3


@dataclass
class SimulationResult:
    """Raw counters and derived metrics from one trace simulation.

    Field names follow the paper's counter vocabulary: "stall" fields are
    cycle counts, "misses"/"walks" are event counts.
    """

    name: str
    machine: str
    instructions: int = 0
    cycles: int = 0
    kernel_instructions: int = 0
    loads: int = 0
    stores: int = 0
    # cache events
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    l3_accesses: int = 0
    l3_misses: int = 0
    # TLB events
    itlb_walks: int = 0
    dtlb_walks: int = 0
    # branch events
    branches: int = 0
    branch_mispredictions: int = 0
    # Figure 6 stall categories (cycle counts; may overlap)
    fetch_stall_cycles: int = 0
    rat_stall_cycles: int = 0
    load_stall_cycles: int = 0
    rs_full_stall_cycles: int = 0
    store_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0
    # not part of the six categories, reported for completeness
    mispredict_stall_cycles: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    # -- derived metrics (the paper's figures) ------------------------------

    def ipc(self) -> float:
        """Figure 3: instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def kernel_fraction(self) -> float:
        """Figure 4: fraction of instructions retired in kernel mode."""
        return self.kernel_instructions / self.instructions if self.instructions else 0.0

    def l1i_mpki(self) -> float:
        """Figure 7: L1I misses per kilo-instruction."""
        return 1000.0 * self.l1i_misses / self.instructions if self.instructions else 0.0

    def itlb_walks_pki(self) -> float:
        """Figure 8: ITLB-miss completed page walks per kilo-instruction."""
        return 1000.0 * self.itlb_walks / self.instructions if self.instructions else 0.0

    def l2_mpki(self) -> float:
        """Figure 9: L2 misses per kilo-instruction."""
        return 1000.0 * self.l2_misses / self.instructions if self.instructions else 0.0

    def l3_hit_ratio_of_l2_misses(self) -> float:
        """Figure 10: (L2 misses − L3 misses) / L2 misses (Equation 1)."""
        if self.l2_misses == 0:
            return 0.0
        return max(0.0, (self.l2_misses - self.l3_misses) / self.l2_misses)

    def dtlb_walks_pki(self) -> float:
        """Figure 11: DTLB-miss completed page walks per kilo-instruction."""
        return 1000.0 * self.dtlb_walks / self.instructions if self.instructions else 0.0

    def branch_misprediction_ratio(self) -> float:
        """Figure 12: mispredicted branches / retired branches."""
        return self.branch_mispredictions / self.branches if self.branches else 0.0

    def stall_breakdown(self) -> dict[str, float]:
        """Figure 6: the six stall categories, normalised to sum to 1."""
        raw = {
            "fetch": self.fetch_stall_cycles,
            "rat": self.rat_stall_cycles,
            "load": self.load_stall_cycles,
            "rs_full": self.rs_full_stall_cycles,
            "store": self.store_stall_cycles,
            "rob_full": self.rob_full_stall_cycles,
        }
        total = sum(raw.values())
        if total == 0:
            return {key: 0.0 for key in raw}
        return {key: value / total for key, value in raw.items()}

    def frontend_stall_share(self) -> float:
        """Share of stalls before the out-of-order part (fetch + RAT)."""
        breakdown = self.stall_breakdown()
        return breakdown["fetch"] + breakdown["rat"]

    def backend_stall_share(self) -> float:
        """Share of stalls in the out-of-order part (RS + ROB + buffers)."""
        return 1.0 - self.frontend_stall_share() if any(self.stall_breakdown().values()) else 0.0


class Core:
    """One simulated out-of-order core built from a :class:`MachineConfig`."""

    def __init__(self, machine: MachineConfig = XEON_E5645) -> None:
        self.machine = machine
        # Shared unified L2/L3 between the instruction and data paths.
        self.l2 = Cache(machine.l2)
        self.l3 = Cache(machine.l3)
        self.l1i = Cache(machine.l1i)
        self.l1d = Cache(machine.l1d)
        self.icache_path = CacheHierarchy(
            self.l1i, self.l2, self.l3, machine.memory_latency, prefetch=machine.prefetch
        )
        self.dcache_path = CacheHierarchy(
            self.l1d, self.l2, self.l3, machine.memory_latency, prefetch=machine.prefetch
        )
        walk_latency = machine.page_walk_latency
        if machine.virtualized:
            # Nested paging: every guest walk level needs EPT walks.
            walk_latency *= machine.nested_walk_multiplier
        self.walker = PageWalker(walk_latency)
        self.l2tlb = Tlb(machine.l2tlb)
        self.itlb = TlbHierarchy(Tlb(machine.itlb), self.l2tlb, self.walker)
        self.dtlb = TlbHierarchy(Tlb(machine.dtlb), self.l2tlb, self.walker)
        self.branch_unit = BranchUnit(machine.core)
        self.execution = ExecutionModel()

    def run(
        self,
        trace,
        rat_conflict_ratio: float | None = None,
        name: str | None = None,
        warmup: int | None = None,
    ) -> SimulationResult:
        """Simulate *trace* (an iterable of micro-ops) and return counters.

        ``rat_conflict_ratio`` defaults to the trace spec's
        ``partial_register_ratio`` when the trace is a
        :class:`~repro.uarch.trace.SyntheticTrace`.

        ``warmup`` instructions are executed but excluded from every
        counter — the paper's "ramp-up period ... then start collecting".
        It defaults to 20 % of the trace when the trace length is known.
        """
        spec = getattr(trace, "spec", None)
        if rat_conflict_ratio is None:
            rat_conflict_ratio = getattr(spec, "partial_register_ratio", 0.0)
        if name is None:
            name = getattr(spec, "name", "trace")
        if warmup is None:
            try:
                warmup = len(trace) // 5
            except TypeError:
                warmup = 0

        core_cfg = self.machine.core
        fetch = FetchEngine(
            self.icache_path,
            self.itlb,
            self.branch_unit,
            core_cfg.fetch_width,
            core_cfg.mispredict_penalty,
        )
        rs = BufferTracker(core_cfg.rs_entries)
        rob = RingTracker(core_cfg.rob_entries)
        load_buffer = BufferTracker(core_cfg.load_buffer_entries)
        store_buffer = BufferTracker(core_cfg.store_buffer_entries)
        rng = random.Random((getattr(spec, "seed", 0) or 0) + 0x5A17)

        result = SimulationResult(name=name, machine=self.machine.name)
        execution = self.execution
        dcache = self.dcache_path
        dtlb = self.dtlb
        branch_unit = self.branch_unit

        ring_size = MAX_DEP_DISTANCE + 1
        complete_ring = [0] * ring_size
        retire_ring_size = max(core_cfg.retire_width + 1, 2)
        retire_ring = [0] * retire_ring_size
        last_retire = 0

        dispatch_cycle = -1
        dispatch_in_cycle = 0
        rat_sampled_cycle = -1
        rename_width = core_cfg.rename_width
        retire_width = core_cfg.retire_width
        virtualized = self.machine.virtualized
        vm_transition = self.machine.vm_transition_cycles
        vm_exits = 0
        vm_exit_cycles = 0
        prev_kernel = False

        i = 0
        baseline = self._counter_snapshot(fetch)
        baseline_result = (0, 0, 0)  # kernel_instructions, loads, stores
        baseline_stalls = (0, 0, 0, 0, 0)  # rat, rs, rob, load, store
        baseline_retire = 0
        dram_free = 0
        dram_occupancy = self.machine.dram_cycles_per_line
        # Baseline against the hierarchy's cumulative transfer counter —
        # a reused core must not re-charge traffic from earlier runs.
        dram_seen = dcache.dram_transfers
        port_load = 0
        port_store = 0
        port_fp = 0

        for uop in trace:
            op = uop.op
            if virtualized and uop.kernel and not prev_kernel:
                # Syscall entry under virtualization: privileged I/O work
                # traps to the hypervisor (VM exit + resume).
                fetch.fetch_time += vm_transition
                fetch.slots_used = 0
                vm_exits += 1
                vm_exit_cycles += vm_transition
            prev_kernel = uop.kernel
            fetch_cycle = fetch.fetch(uop)
            base = fetch_cycle + FRONT_DEPTH

            # Rename width: at most rename_width ops begin dispatch per cycle.
            if base <= dispatch_cycle:
                if dispatch_in_cycle >= rename_width:
                    base = dispatch_cycle + 1
                    dispatch_in_cycle = 0
                else:
                    base = dispatch_cycle
            else:
                dispatch_in_cycle = 0

            # RAT conflicts: sampled once per dispatch cycle.
            if rat_conflict_ratio > 0.0 and base != rat_sampled_cycle:
                rat_sampled_cycle = base
                if rng.random() < rat_conflict_ratio:
                    result.rat_stall_cycles += RAT_STALL_PENALTY
                    base += RAT_STALL_PENALTY
                    dispatch_in_cycle = 0

            # Back-end structural constraints.
            t = base
            slot = rs.earliest_slot(base)
            if slot > base:
                result.rs_full_stall_cycles += slot - base
                if slot > t:
                    t = slot
            slot = rob.earliest_slot(base)
            if slot > base:
                result.rob_full_stall_cycles += slot - base
                if slot > t:
                    t = slot
            if op == OpClass.LOAD:
                slot = load_buffer.earliest_slot(base)
                if slot > base:
                    result.load_stall_cycles += slot - base
                    if slot > t:
                        t = slot
            elif op == OpClass.STORE:
                slot = store_buffer.earliest_slot(base)
                if slot > base:
                    result.store_stall_cycles += slot - base
                    if slot > t:
                        t = slot

            if t == dispatch_cycle:
                dispatch_in_cycle += 1
            else:
                dispatch_cycle = t
                dispatch_in_cycle = 1

            # Operand readiness.
            ready = t + 1
            dep = uop.dep1
            if dep:
                producer = complete_ring[(i - dep) % ring_size]
                if producer > ready:
                    ready = producer
            dep = uop.dep2
            if dep:
                producer = complete_ring[(i - dep) % ring_size]
                if producer > ready:
                    ready = producer

            # Execute.  Issue ports: one load, one store, one FP/MUL/DIV
            # pipe and ALU capacity modelled as reciprocal-throughput
            # counters; the op issues when ready *and* its port is free.
            if op == OpClass.LOAD:
                issue = ready if ready > port_load else port_load
                port_load = issue + 1
                tlb_latency = dtlb.translate(uop.addr)
                mem_latency = dcache.access(uop.addr)
                complete = issue + tlb_latency + mem_latency
                # Memory bandwidth: every DRAM line transfer (demand or
                # prefetch) occupies the channel; an access that caused
                # transfers cannot complete before the channel drains.
                transfers = dcache.dram_transfers - dram_seen
                if transfers:
                    dram_seen = dcache.dram_transfers
                    dram_free = (dram_free if dram_free > issue else issue) + (
                        transfers * dram_occupancy
                    )
                    if complete < dram_free:
                        complete = dram_free
                load_buffer.occupy(complete)
                result.loads += 1
            elif op == OpClass.STORE:
                issue = ready if ready > port_store else port_store
                port_store = issue + 1
                tlb_latency = dtlb.translate(uop.addr)
                complete = issue + 1 + tlb_latency
                # The store drains to the cache after retiring; the buffer
                # entry is held until the write completes.
                mem_latency = dcache.access(uop.addr)
                drain_done = complete + STORE_DRAIN_LATENCY + mem_latency
                transfers = dcache.dram_transfers - dram_seen
                if transfers:
                    dram_seen = dcache.dram_transfers
                    dram_free = (dram_free if dram_free > issue else issue) + (
                        transfers * dram_occupancy
                    )
                    if drain_done < dram_free:
                        drain_done = dram_free
                store_buffer.occupy(drain_done)
                result.stores += 1
            elif op == OpClass.BRANCH:
                issue = ready
                complete = issue + execution.latency(op)
                outcome = branch_unit.resolve(uop.pc, uop.taken, uop.target)
                if outcome == BRANCH_MISPREDICT:
                    fetch.redirect(complete)
                elif outcome == BRANCH_MISFETCH:
                    fetch.misfetch()
            elif op == OpClass.ALU:
                issue = ready
                complete = issue + 1
            else:
                # FP / MUL / DIV share one pipe; DIV is unpipelined.
                issue = ready if ready > port_fp else port_fp
                latency = execution.latency(op)
                port_fp = issue + (latency if op == OpClass.DIV else 1)
                complete = issue + latency

            rs.occupy(issue)
            complete_ring[i % ring_size] = complete

            # In-order retirement, bounded by retire width.
            retire = complete
            if retire < last_retire:
                retire = last_retire
            width_gate = retire_ring[(i - retire_width) % retire_ring_size] + 1 if i >= retire_width else 0
            if retire < width_gate:
                retire = width_gate
            retire_ring[i % retire_ring_size] = retire
            last_retire = retire
            rob.push_release(retire)

            if uop.kernel:
                result.kernel_instructions += 1
            i += 1
            if i == warmup:
                # End of ramp-up: rebase every counter here.
                baseline = self._counter_snapshot(fetch)
                baseline_result = (result.kernel_instructions, result.loads, result.stores)
                baseline_stalls = (
                    result.rat_stall_cycles,
                    result.rs_full_stall_cycles,
                    result.rob_full_stall_cycles,
                    result.load_stall_cycles,
                    result.store_stall_cycles,
                )
                baseline_retire = last_retire

        end = self._counter_snapshot(fetch)
        result.instructions = i - (warmup if i > warmup else 0)
        result.cycles = max(last_retire - (baseline_retire if i > warmup else 0), 1)
        result.kernel_instructions -= baseline_result[0]
        result.loads -= baseline_result[1]
        result.stores -= baseline_result[2]
        result.rat_stall_cycles -= baseline_stalls[0]
        result.rs_full_stall_cycles -= baseline_stalls[1]
        result.rob_full_stall_cycles -= baseline_stalls[2]
        result.load_stall_cycles -= baseline_stalls[3]
        result.store_stall_cycles -= baseline_stalls[4]
        delta = {key: end[key] - baseline[key] for key in end}
        result.fetch_stall_cycles = delta["icache_stall"] + delta["itlb_stall"]
        result.mispredict_stall_cycles = delta["mispredict_stall"]
        result.l1i_accesses = delta["l1i_hits"] + delta["l1i_misses"]
        result.l1i_misses = delta["l1i_misses"]
        result.l1d_accesses = delta["l1d_hits"] + delta["l1d_misses"]
        result.l1d_misses = delta["l1d_misses"]
        result.l2_accesses = delta["l2_hits"] + delta["l2_misses"]
        result.l2_misses = delta["l2_misses"]
        result.l3_accesses = delta["l3_hits"] + delta["l3_misses"]
        result.l3_misses = delta["l3_misses"]
        result.itlb_walks = delta["itlb_walks"]
        result.dtlb_walks = delta["dtlb_walks"]
        result.branches = delta["branches"]
        result.branch_mispredictions = delta["mispredictions"]
        result.extra["itlb_stall_cycles"] = delta["itlb_stall"]
        result.extra["icache_stall_cycles"] = delta["icache_stall"]
        result.extra["dram_transfers"] = delta["dram_transfers"]
        result.extra["warmup_instructions"] = warmup if i > warmup else 0
        if virtualized:
            result.extra["vm_exits"] = vm_exits
            result.extra["vm_exit_cycles"] = vm_exit_cycles
        return result

    def _counter_snapshot(self, fetch) -> dict[str, int]:
        """Snapshot of every monotonic hardware counter (for warmup rebasing)."""
        return {
            "l1i_hits": self.l1i.hits,
            "l1i_misses": self.l1i.misses,
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
            "itlb_walks": self.itlb.completed_walks,
            "dtlb_walks": self.dtlb.completed_walks,
            "branches": self.branch_unit.branches,
            "mispredictions": self.branch_unit.mispredictions,
            "icache_stall": fetch.icache_stall_cycles,
            "itlb_stall": fetch.itlb_stall_cycles,
            "mispredict_stall": fetch.mispredict_stall_cycles,
            "dram_transfers": self.icache_path.dram_transfers + self.dcache_path.dram_transfers,
        }


def simulate(
    spec_or_trace,
    machine: MachineConfig = XEON_E5645,
    engine: str = "reference",
) -> SimulationResult:
    """Convenience wrapper: build a fresh core and run one trace on it.

    ``engine`` selects the implementation: ``"reference"`` is this module's
    per-μop interpreter; ``"fast"`` is the batched engine in
    :mod:`repro.perf.fastpath`, bit-identical by contract.  The fast engine
    needs a spec-backed trace (it replays generation in batch form), so
    arbitrary micro-op iterables always use the reference path.
    """
    if isinstance(spec_or_trace, TraceSpec):
        trace = SyntheticTrace(spec_or_trace)
    elif hasattr(spec_or_trace, "__iter__"):
        trace = spec_or_trace
    else:
        raise TypeError("expected a TraceSpec or an iterable of micro-ops")
    if engine == "fast":
        if isinstance(trace, SyntheticTrace):
            from repro.perf.fastpath import run_fast

            return run_fast(Core(machine), trace)
        engine = "reference"
    if engine != "reference":
        raise ValueError(f"unknown engine: {engine!r}")
    return Core(machine).run(trace)
