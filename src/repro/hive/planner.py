"""Query planner: compile a parsed :class:`~repro.hive.parser.Query` into
MapReduce stages.

The compilation mirrors Hive's classic plans:

* scan + WHERE + projection → a **map-only** job;
* JOIN … ON → a **reduce-side join**: both tables' mappers emit
  (join-key, tagged row), the reducer forms the cross product per key;
* GROUP BY / aggregates → a map+combine+reduce job with partial
  aggregation states (SUM/COUNT/AVG/MIN/MAX);
* ORDER BY [LIMIT] → a final single-reducer total-order job.

Each stage is a real :class:`~repro.mapreduce.job.MapReduceJob`; the
session executes them in order, feeding one stage's output records to the
next, so a Hive query exercises the full MapReduce code path the paper's
Hive-bench exercises.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.hive.parser import (
    Aggregate,
    And,
    ColumnRef,
    Or,
    Predicate,
    Query,
    parse_query,
    condition_predicates,
)
from repro.hive.schema import Table
from repro.mapreduce.job import JobConf, MapReduceJob


class HivePlanError(ValueError):
    """Raised when a query cannot be planned against the given tables."""


@dataclass
class Stage:
    """One MapReduce stage of a plan."""

    name: str
    job: MapReduceJob
    #: builds this stage's input records; receives the previous stage's
    #: output rows (or None for the first stage).
    input_builder: Callable[[list | None], list[tuple[object, object]]]
    #: number of reduce tasks (0 = map-only), for plan description
    description: str = ""


@dataclass
class QueryPlan:
    """An ordered list of stages plus the output schema."""

    stages: list[Stage]
    output_columns: list[str]
    query: Query = None

    def describe(self) -> str:
        lines = [f"plan with {len(self.stages)} stage(s):"]
        for i, stage in enumerate(self.stages):
            lines.append(f"  stage {i + 1}: {stage.name} — {stage.description}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# canonicalization and fingerprints
# ---------------------------------------------------------------------------
#
# The materialization cache (repro.hive.engine) and the workload-recipe
# recorder (repro.recipes.instances) both need a *stable identity* for a
# query.  Two granularities:
#
# * the **template digest** masks every literal — two statements that
#   differ only in parameter values (and whitespace, alias spelling,
#   AND/OR operand order) share a template, the unit Redbench clusters
#   users on;
# * the **query digest** keeps the literals — the semantic identity a
#   result cache must key on, since different parameters mean different
#   rows.


def _canonical_condition(condition, alias_map: dict, mask: bool) -> str:
    if isinstance(condition, Predicate):
        ref = _canonical_ref(condition.column, alias_map)
        if mask:
            return f"({ref} {condition.op} ?)"
        if condition.op == "in":
            values = ",".join(sorted(repr(v) for v in condition.value))
            return f"({ref} in ({values}))"
        return f"({ref} {condition.op} {condition.value!r})"
    connective = " and " if isinstance(condition, And) else " or "
    parts = sorted(
        _canonical_condition(child, alias_map, mask) for child in condition.children
    )
    return "(" + connective.join(parts) + ")"


def _canonical_ref(ref: ColumnRef, alias_map: dict) -> str:
    table = alias_map.get(ref.table, ref.table)
    return f"{table}.{ref.column}" if table else ref.column


def canonical_query(query: Query, mask_literals: bool = False) -> str:
    """A whitespace/alias/operand-order independent rendering of *query*.

    With ``mask_literals`` every predicate literal and the LIMIT count
    collapse to ``?`` — the Redbench notion of a query *template*.
    """
    alias_map = {}
    if query.table_alias:
        alias_map[query.table_alias] = query.table
    if query.join is not None and query.join.alias:
        alias_map[query.join.alias] = query.join.table
    items = []
    for item in query.items:
        expr = item.expr
        if isinstance(expr, Aggregate):
            arg = _canonical_ref(expr.arg, alias_map) if expr.arg else "*"
            rendered = f"{expr.func}({arg})"
        else:
            rendered = _canonical_ref(expr, alias_map)
        if item.output_name() != rendered:
            rendered += f" as {item.output_name()}"
        items.append(rendered)
    parts = [f"select {', '.join(items) if items else '*'}", f"from {query.table}"]
    if query.join is not None:
        join_keys = sorted(
            (
                _canonical_ref(query.join.left, alias_map),
                _canonical_ref(query.join.right, alias_map),
            )
        )
        parts.append(f"join {query.join.table} on {join_keys[0]} = {join_keys[1]}")
    if query.where is not None:
        parts.append(f"where {_canonical_condition(query.where, alias_map, mask_literals)}")
    if query.group_by:
        parts.append(
            "group by " + ", ".join(_canonical_ref(r, alias_map) for r in query.group_by)
        )
    if query.order_by is not None:
        direction = "desc" if query.order_by.descending else "asc"
        parts.append(f"order by {query.order_by.column} {direction}")
    if query.limit is not None:
        parts.append("limit ?" if mask_literals else f"limit {query.limit}")
    return " ".join(parts)


def template_digest(sql_or_query: str | Query) -> str:
    """Literal-masked template identity: same SQL modulo literals,
    whitespace, alias spelling and AND/OR operand order → same digest."""
    query = sql_or_query if isinstance(sql_or_query, Query) else parse_query(sql_or_query)
    canonical = canonical_query(query, mask_literals=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def query_digest(sql_or_query: str | Query) -> str:
    """Semantic identity with literals kept (the result-cache half-key)."""
    query = sql_or_query if isinstance(sql_or_query, Query) else parse_query(sql_or_query)
    canonical = canonical_query(query, mask_literals=False)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def plan_fingerprint(query: Query, tables: dict[str, Table]) -> str:
    """Cache key for one planned query: the literal-keeping query digest
    folded with the identity (uid) and mutation version of every input
    table, so any table change — or a drop-and-recreate under the same
    name — yields a fresh key."""
    digest = hashlib.sha256(canonical_query(query, mask_literals=False).encode())
    names = [query.table] + ([query.join.table] if query.join is not None else [])
    for name in sorted(set(names)):
        table = tables.get(name)
        if table is None:
            raise HivePlanError(f"unknown table {name!r}")
        digest.update(f"|{name}:{table.uid}:{table.version}".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# column resolution
# ---------------------------------------------------------------------------


class _Resolver:
    """Maps column references to (side, index) in the working row."""

    def __init__(self, query: Query, tables: dict[str, Table]):
        if query.table not in tables:
            raise HivePlanError(f"unknown table {query.table!r}")
        self.left = tables[query.table]
        self.left_names = {query.table, query.table_alias or query.table}
        self.right = None
        self.right_names: set[str] = set()
        if query.join is not None:
            if query.join.table not in tables:
                raise HivePlanError(f"unknown table {query.join.table!r}")
            self.right = tables[query.join.table]
            self.right_names = {query.join.table, query.join.alias or query.join.table}
        self.left_width = len(self.left.columns)

    def resolve(self, ref: ColumnRef) -> int:
        """Index of *ref* within the combined working row."""
        side, index = self.resolve_side(ref)
        return index if side == "L" else self.left_width + index

    def resolve_side(self, ref: ColumnRef) -> tuple[str, int]:
        if ref.table is not None:
            if ref.table in self.left_names:
                return "L", self.left.column_index(ref.column)
            if ref.table in self.right_names:
                if self.right is None:
                    raise HivePlanError(f"no joined table named {ref.table!r}")
                return "R", self.right.column_index(ref.column)
            raise HivePlanError(f"unknown table qualifier {ref.table!r}")
        in_left = self.left.has_column(ref.column)
        # `is not None`, not truthiness: an empty Table has len() == 0.
        in_right = self.right.has_column(ref.column) if self.right is not None else False
        if in_left and in_right:
            raise HivePlanError(f"ambiguous column {ref.column!r}; qualify it")
        if in_left:
            return "L", self.left.column_index(ref.column)
        if in_right:
            return "R", self.right.column_index(ref.column)
        raise HivePlanError(f"unknown column {ref.column!r}")

    @property
    def working_columns(self) -> list[str]:
        cols = [c.name for c in self.left.columns]
        if self.right is not None:
            cols += [c.name for c in self.right.columns]
        return cols


# ---------------------------------------------------------------------------
# predicate evaluation
# ---------------------------------------------------------------------------


def _like_matcher(pattern: str) -> Callable[[object], bool]:
    """SQL LIKE with % wildcards (the Hive-bench grep pattern shape)."""
    parts = pattern.split("%")
    if len(parts) == 1:
        return lambda v: isinstance(v, str) and v == pattern

    def match(value) -> bool:
        if not isinstance(value, str):
            return False
        pos = 0
        if parts[0]:
            if not value.startswith(parts[0]):
                return False
            pos = len(parts[0])
        for part in parts[1:-1]:
            if part:
                found = value.find(part, pos)
                if found < 0:
                    return False
                pos = found + len(part)
        if parts[-1]:
            return value.endswith(parts[-1]) and len(value) - len(parts[-1]) >= pos
        return True

    return match


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_predicate(pred: Predicate, index: int) -> Callable[[tuple], bool]:
    if pred.op == "like":
        matcher = _like_matcher(str(pred.value))
        return lambda row: matcher(row[index])
    if pred.op == "between":
        low, high = pred.value
        return lambda row: row[index] is not None and low <= row[index] <= high
    if pred.op == "in":
        allowed = set(pred.value)
        return lambda row: row[index] in allowed
    compare = _COMPARATORS[pred.op]
    value = pred.value
    return lambda row: row[index] is not None and compare(row[index], value)


def _compile_condition(condition, resolver: "_Resolver") -> Callable[[tuple], bool]:
    """Compile a Predicate/And/Or tree into a combined-row checker."""
    if isinstance(condition, Predicate):
        return _compile_predicate(condition, resolver.resolve(condition.column))
    if isinstance(condition, And):
        checks = [_compile_condition(c, resolver) for c in condition.children]
        return lambda row: all(check(row) for check in checks)
    if isinstance(condition, Or):
        checks = [_compile_condition(c, resolver) for c in condition.children]
        return lambda row: any(check(row) for check in checks)
    raise HivePlanError(f"unknown condition node {type(condition).__name__}")


def _conjuncts(condition) -> list:
    """Split a condition into top-level AND conjuncts."""
    if condition is None:
        return []
    if isinstance(condition, And):
        return list(condition.children)
    return [condition]


# ---------------------------------------------------------------------------
# aggregation machinery
# ---------------------------------------------------------------------------


def _agg_init(func: str, value):
    if func == "count":
        return 1
    if func == "avg":
        return (value, 1) if value is not None else (0.0, 0)
    return value


def _agg_merge(func: str, a, b):
    if func == "count":
        return a + b
    if func == "sum":
        return (a or 0) + (b or 0)
    if func == "avg":
        return (a[0] + b[0], a[1] + b[1])
    if func == "min":
        return b if a is None or (b is not None and b < a) else a
    if func == "max":
        return b if a is None or (b is not None and b > a) else a
    raise HivePlanError(f"unknown aggregate {func!r}")


def _agg_final(func: str, state):
    if func == "avg":
        total, count = state
        return total / count if count else None
    return state


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------


def plan_query(query: Query, tables: dict[str, Table]) -> QueryPlan:
    """Compile *query* against *tables* into a :class:`QueryPlan`."""
    resolver = _Resolver(query, tables)
    stages: list[Stage] = []

    # ---- stage 1: scan (+ filter) or reduce-side join ----
    if query.join is None:
        stages.append(_scan_stage(query, resolver))
    else:
        stages.append(_join_stage(query, resolver))

    # ---- stage 2: aggregation ----
    if query.has_aggregation:
        stage, output_columns = _aggregate_stage(query, resolver)
        stages.append(stage)
    else:
        output_columns, projector = _projection(query, resolver)
        if projector is not None:
            stages.append(_projection_stage(query, projector))

    # ---- stage 3: order by / limit ----
    if query.order_by is not None:
        if query.order_by.column not in output_columns:
            raise HivePlanError(
                f"ORDER BY column {query.order_by.column!r} is not in the output "
                f"columns {output_columns}"
            )
        stages.append(_order_stage(query, output_columns))

    return QueryPlan(stages=stages, output_columns=output_columns, query=query)


def _split_join_conjuncts(query: Query, resolver: _Resolver):
    """Partition WHERE conjuncts for a join: pushable to the left table,
    to the right table, or evaluated post-join (conjuncts spanning both
    sides, e.g. under an OR)."""
    left, right, post = [], [], []
    for conjunct in _conjuncts(query.where):
        sides = {
            resolver.resolve_side(pred.column)[0]
            for pred in condition_predicates(conjunct)
        }
        compiled = _compile_condition(conjunct, resolver)
        if sides == {"L"}:
            left.append(compiled)
        elif sides == {"R"}:
            right.append(compiled)
        else:
            post.append(compiled)
    return left, right, post


def _scan_stage(query: Query, resolver: _Resolver) -> Stage:
    check = _compile_condition(query.where, resolver) if query.where is not None else None

    def mapper(_key, row):
        if check is not None and not check(row):
            return
        yield None, row

    job = MapReduceJob(
        mapper, None, JobConf(name=f"scan-{query.table}", num_reduces=0)
    )
    table = resolver.left

    def input_builder(_prev):
        return [(i, row) for i, row in enumerate(table.rows)]

    return Stage(
        name="scan",
        job=job,
        input_builder=input_builder,
        description=(
            f"map-only scan of {query.table} with "
            f"{len(query.predicates)} predicate(s)"
        ),
    )


def _join_stage(query: Query, resolver: _Resolver) -> Stage:
    left_side, left_idx = resolver.resolve_side(query.join.left)
    right_side, right_idx = resolver.resolve_side(query.join.right)
    if left_side == right_side:
        raise HivePlanError("JOIN condition must reference both tables")
    if left_side == "R":
        left_idx, right_idx = right_idx, left_idx
    left_checks, right_checks, post_checks = _split_join_conjuncts(query, resolver)
    right_pad = (None,) * (len(resolver.right.columns) if resolver.right is not None else 0)

    def mapper(tag, row):
        if tag == "L":
            for check in left_checks:
                if not check(row + right_pad):
                    return
            yield row[left_idx], ("L", row)
        else:
            combined_offset_row = (None,) * resolver.left_width + row
            for check in right_checks:
                if not check(combined_offset_row):
                    return
            yield row[right_idx], ("R", row)

    def reducer(_key, tagged_rows):
        lefts = [row for tag, row in tagged_rows if tag == "L"]
        rights = [row for tag, row in tagged_rows if tag == "R"]
        for lrow in lefts:
            for rrow in rights:
                combined = lrow + rrow
                # Conjuncts spanning both tables (e.g. under an OR) run
                # against the joined row.
                if all(check(combined) for check in post_checks):
                    yield None, combined

    job = MapReduceJob(
        mapper,
        reducer,
        JobConf(name=f"join-{query.table}-{query.join.table}", num_reduces=4, sort_keys=True),
    )
    left_table, right_table = resolver.left, resolver.right

    def input_builder(_prev):
        records = [("L", row) for row in left_table.rows]
        records += [("R", row) for row in right_table.rows]
        return records

    return Stage(
        name="join",
        job=job,
        input_builder=input_builder,
        description=(
            f"reduce-side join {query.table} ⋈ {query.join.table} on "
            f"{query.join.left} = {query.join.right}"
        ),
    )


def _aggregate_stage(query: Query, resolver: _Resolver) -> tuple[Stage, list[str]]:
    group_indices = [resolver.resolve(ref) for ref in query.group_by]
    aggs = query.aggregates
    agg_specs = [
        (agg.func, resolver.resolve(agg.arg) if agg.arg is not None else None) for agg in aggs
    ]
    # Validate select list: non-aggregate items must be group-by columns.
    group_set = {resolver.resolve(ref) for ref in query.group_by}
    plain_items = [item for item in query.items if isinstance(item.expr, ColumnRef)]
    for item in plain_items:
        if resolver.resolve(item.expr) not in group_set:
            raise HivePlanError(
                f"column {item.expr} must appear in GROUP BY or inside an aggregate"
            )

    def mapper(_key, row):
        key = tuple(row[i] for i in group_indices)
        states = tuple(
            _agg_init(func, row[idx] if idx is not None else None) for func, idx in agg_specs
        )
        yield key, states

    def combiner(key, states_list):
        merged = list(states_list[0])
        for states in states_list[1:]:
            for i, (func, _) in enumerate(agg_specs):
                merged[i] = _agg_merge(func, merged[i], states[i])
        yield key, tuple(merged)

    def reducer(key, states_list):
        merged = list(states_list[0])
        for states in states_list[1:]:
            for i, (func, _) in enumerate(agg_specs):
                merged[i] = _agg_merge(func, merged[i], states[i])
        finals = tuple(
            _agg_final(func, merged[i]) for i, (func, _) in enumerate(agg_specs)
        )
        yield None, key + finals

    job = MapReduceJob(
        mapper,
        reducer,
        JobConf(name=f"groupby-{query.table}", num_reduces=4, sort_keys=True),
        combiner=combiner,
    )

    # Output schema: group columns in declared order, then aggregates —
    # but honour the select-list order when it covers everything.
    output_columns = [str(ref.column) for ref in query.group_by]
    output_columns += [agg.default_name() for agg in aggs]

    def input_builder(prev):
        if prev is None:
            raise HivePlanError("aggregate stage needs an upstream stage")
        return [(None, row) for row in prev]

    stage = Stage(
        name="aggregate",
        job=job,
        input_builder=input_builder,
        description=(
            f"group by {', '.join(map(str, query.group_by)) or '()'} computing "
            f"{', '.join(a.default_name() for a in aggs) or 'nothing'}"
        ),
    )
    return stage, output_columns


def _projection(query: Query, resolver: _Resolver):
    """Output columns + an optional row projector for non-aggregate queries."""
    if query.select_star:
        return resolver.working_columns, None
    indices = [resolver.resolve(item.expr) for item in query.items]
    names = [item.output_name() for item in query.items]

    def projector(row):
        return tuple(row[i] for i in indices)

    return names, projector


def _projection_stage(query: Query, projector) -> Stage:
    def mapper(_key, row):
        yield None, projector(row)

    job = MapReduceJob(mapper, None, JobConf(name="project", num_reduces=0))

    def input_builder(prev):
        if prev is None:
            raise HivePlanError("projection stage needs an upstream stage")
        return [(None, row) for row in prev]

    return Stage(
        name="project",
        job=job,
        input_builder=input_builder,
        description=f"project {len(query.items)} column(s)",
    )


def _order_stage(query: Query, output_columns: list[str]) -> Stage:
    order_index = output_columns.index(query.order_by.column)
    descending = query.order_by.descending
    limit = query.limit

    def mapper(_key, row):
        yield row[order_index], row

    def reducer(_key, rows):
        for row in rows:
            yield None, row

    job = MapReduceJob(
        mapper,
        reducer,
        JobConf(name="orderby", num_reduces=1, sort_keys=True),
    )

    def input_builder(prev):
        if prev is None:
            raise HivePlanError("order stage needs an upstream stage")
        return [(None, row) for row in prev]

    stage = Stage(
        name="order",
        job=job,
        input_builder=input_builder,
        description=(
            f"total order by {query.order_by.column} "
            f"{'desc' if descending else 'asc'}"
            + (f" limit {limit}" if limit is not None else "")
        ),
    )
    return stage
