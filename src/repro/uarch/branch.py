"""Branch prediction: direction predictors and the branch target buffer.

The paper's Figure 12 reports branch misprediction ratios and its final
implication is that "a simpler branch predictor may be preferred" for data
analysis workloads.  To support that ablation we implement three classic
direction predictors — bimodal, gshare, and a tournament of the two — plus
a tagged set-associative BTB.  :class:`BranchUnit` combines a direction
predictor with the BTB and keeps the misprediction counters.
"""

from __future__ import annotations

from repro.uarch.config import CoreConfig


class BimodalPredictor:
    """Per-PC table of 2-bit saturating counters."""

    __slots__ = ("_table", "_mask")

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        # bytearray: one byte per 2-bit counter — contiguous storage, no
        # per-slot object pointers on the scalar path.
        self._table = bytearray([2]) * entries  # weakly taken
        self._mask = entries - 1

    def predict(self, pc: int) -> bool:
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._mask
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1


class GSharePredictor:
    """Global-history predictor: PC xor global history indexes 2-bit counters."""

    __slots__ = ("_table", "_mask", "_history", "_history_bits")

    def __init__(self, entries: int, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self._table = bytearray([2]) * entries
        self._mask = entries - 1
        self._history = 0
        self._history_bits = history_bits

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self._history_bits) - 1
        )


class TournamentPredictor:
    """Alpha-21264-style chooser between a bimodal and a gshare component."""

    __slots__ = ("_bimodal", "_gshare", "_chooser", "_mask")

    def __init__(self, entries: int, history_bits: int = 12) -> None:
        self._bimodal = BimodalPredictor(entries)
        self._gshare = GSharePredictor(entries, history_bits)
        self._chooser = bytearray([2]) * entries  # >=2 selects gshare
        self._mask = entries - 1

    def predict(self, pc: int) -> bool:
        if self._chooser[(pc >> 2) & self._mask] >= 2:
            return self._gshare.predict(pc)
        return self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._mask
        bi_correct = self._bimodal.predict(pc) == taken
        gs_correct = self._gshare.predict(pc) == taken
        ctr = self._chooser[idx]
        if gs_correct and not bi_correct and ctr < 3:
            self._chooser[idx] = ctr + 1
        elif bi_correct and not gs_correct and ctr > 0:
            self._chooser[idx] = ctr - 1
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)


def make_direction_predictor(kind: str, entries: int):
    """Factory for the direction predictors by name."""
    if kind == "bimodal":
        return BimodalPredictor(entries)
    if kind == "gshare":
        return GSharePredictor(entries)
    if kind == "tournament":
        return TournamentPredictor(entries)
    raise ValueError(f"unknown predictor kind: {kind!r}")


class BranchTargetBuffer:
    """Tagged set-associative BTB with LRU replacement.

    A taken branch whose target is absent from the BTB is a misfetch even
    when the direction was predicted correctly.
    """

    __slots__ = ("_sets", "_set_mask", "ways", "hits", "misses")

    def __init__(self, entries: int, associativity: int) -> None:
        if entries <= 0 or associativity <= 0 or entries % associativity:
            raise ValueError("entries must be a positive multiple of associativity")
        num_sets = entries // associativity
        if num_sets & (num_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self.ways = associativity
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> int | None:
        """Return the stored target for *pc*, or None on BTB miss."""
        key = pc >> 2
        ways = self._sets[key & self._set_mask]
        for i, (tag, target) in enumerate(ways):
            if tag == key:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        key = pc >> 2
        ways = self._sets[key & self._set_mask]
        for i, (tag, _) in enumerate(ways):
            if tag == key:
                ways.pop(i)
                break
        ways.insert(0, (key, target))
        if len(ways) > self.ways:
            ways.pop()


#: resolve() outcomes
BRANCH_OK = 0
BRANCH_MISPREDICT = 1  #: wrong direction or wrong indirect target — full flush
BRANCH_MISFETCH = 2    #: right direction, BTB missed the target — decode-time bubble


class BranchUnit:
    """Direction predictor + BTB with misprediction accounting.

    A *misprediction* (wrong direction, or a BTB hit whose stored target is
    stale — the indirect-branch case) flushes the pipeline and is what the
    paper's Figure 12 ratio counts.  A *misfetch* (correct direction but
    the target is absent from the BTB, e.g. a cold branch) is repaired at
    decode with a short bubble and is not a misprediction.
    """

    __slots__ = ("direction", "btb", "branches", "mispredictions", "misfetches")

    def __init__(self, config: CoreConfig) -> None:
        self.direction = make_direction_predictor(config.predictor, config.predictor_entries)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_associativity)
        self.branches = 0
        self.mispredictions = 0
        self.misfetches = 0

    def resolve(self, pc: int, taken: bool, target: int) -> int:
        """Predict and train on one dynamic branch.

        Returns :data:`BRANCH_OK`, :data:`BRANCH_MISPREDICT` or
        :data:`BRANCH_MISFETCH`.
        """
        self.branches += 1
        predicted_taken = self.direction.predict(pc)
        outcome = BRANCH_OK
        if predicted_taken != taken:
            outcome = BRANCH_MISPREDICT
        elif taken:
            # Direction right, but the front end also needs the target.
            stored = self.btb.lookup(pc)
            if stored is None:
                outcome = BRANCH_MISFETCH
            elif stored != target:
                # Stale target: an indirect branch that moved — full flush.
                outcome = BRANCH_MISPREDICT
        if taken:
            self.btb.install(pc, target)
        self.direction.update(pc, taken)
        if outcome == BRANCH_MISPREDICT:
            self.mispredictions += 1
        elif outcome == BRANCH_MISFETCH:
            self.misfetches += 1
        return outcome

    def misprediction_ratio(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def reset_counters(self) -> None:
        self.branches = 0
        self.mispredictions = 0
        self.misfetches = 0
