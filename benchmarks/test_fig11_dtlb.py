"""Figure 11: DTLB-miss-caused completed page walks per K-instruction.

Paper shape: most data-analysis workloads walk less than the services and
SPEC CPU2006 but more than most HPCC programs — with HPCC-RandomAccess
and HPCC-PTRANS as the HPCC exceptions and Naive Bayes as the
data-analysis exception (its probability tables are random-indexed).
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig11(benchmark, suite_chars, chars_by_name, da_chars, service_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(11, suite_chars))
    print()
    print(render_metric_table(11, suite_chars))

    svc_avg = sum(c.metrics.dtlb_walks_pki for c in service_chars) / len(service_chars)
    # Typical DA workload (median) walks less than the services.
    da_values = sorted(c.metrics.dtlb_walks_pki for c in da_chars)
    da_median = da_values[len(da_values) // 2]
    assert da_median < svc_avg
    # ... and more than most HPCC programs (RandomAccess/PTRANS excepted).
    hpcc_sans_exceptions = [
        c.metrics.dtlb_walks_pki
        for c in hpcc_chars
        if c.name not in ("HPCC-RandomAccess", "HPCC-PTRANS")
    ]
    assert da_median > sorted(hpcc_sans_exceptions)[len(hpcc_sans_exceptions) // 2]
    # The two HPCC exceptions tower over the rest of their suite.
    ra = chars_by_name["HPCC-RandomAccess"].metrics.dtlb_walks_pki
    ptrans = chars_by_name["HPCC-PTRANS"].metrics.dtlb_walks_pki
    assert ra > 3 * max(hpcc_sans_exceptions)
    assert ptrans > 3 * max(hpcc_sans_exceptions)
    # Naive Bayes is the DA exception with elevated data walks.
    bayes = chars_by_name["Naive Bayes"].metrics.dtlb_walks_pki
    assert bayes > 2 * da_median
