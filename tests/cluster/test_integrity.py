"""Gray failures: end-to-end data integrity and flaky/partitioned networks.

Three layers of coverage:

* unit tests for the integrity primitives — per-chunk CRC32 checksums,
  corruption markers, bad-block reporting (journaled, never dropping a
  block's last replica), the DataBlockScanner scrubber, attempt-id
  commit fencing and time-bounded graylisting;
* scenario tests driving real workloads through one gray-failure class
  at a time (at-rest rot → failover + repair, in-flight corruption →
  re-fetch, lossy links → retransmits, a partition → zombie fencing);
* the integrity chaos matrix: every class at once on a pinned
  workload × seed grid, asserting the integrity contract — output
  bit-identical to the fault-free run, every injected corruption
  caught, nothing left rotten — plus observational freedom: with all
  gray-failure rates zero the scheduler matches the stock cluster
  exactly, including the new ``/proc`` counters.
"""

import pytest

from repro.cluster import (
    ChecksumError,
    CommitFence,
    DataBlockScanner,
    FaultPlan,
    FaultyCluster,
    Hdfs,
    NameNodeJournal,
    NodeGraylist,
    RetryPolicy,
    make_cluster,
    replay,
)
from repro.cluster.chaos import run_integrity_chaos
from repro.cluster.node import Node
from repro.workloads import workload

WORKLOADS = ("WordCount", "Sort", "PageRank")
SEEDS = (1, 2, 4, 5)

_results: dict[tuple[str, int], object] = {}


def integrity(name: str, seed: int):
    key = (name, seed)
    if key not in _results:
        _results[key] = run_integrity_chaos(name, seed=seed)
    return _results[key]


def make_hdfs(n_nodes=4, block_size=1024, replication=3, **kw):
    nodes = [Node(f"n{i}") for i in range(n_nodes)]
    return nodes, Hdfs(nodes, block_size=block_size, replication=replication, **kw)


# ---------------------------------------------------------------------------
# Checksums and corruption markers
# ---------------------------------------------------------------------------


class TestChecksums:
    def test_checksum_chunk_math(self):
        _, hdfs = make_hdfs(bytes_per_checksum=512)
        assert hdfs.checksum_chunks(0) == 0
        assert hdfs.checksum_chunks(1) == 1
        assert hdfs.checksum_chunks(512) == 1
        assert hdfs.checksum_chunks(513) == 2
        assert hdfs.checksum_chunks(1024 * 1024) == 2048

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            make_hdfs(bytes_per_checksum=0)

    def test_corrupt_then_verify_raises(self):
        _, hdfs = make_hdfs()
        f = hdfs.create_file("f", 3000)
        victim = f.blocks[0].replicas[0]
        assert hdfs.corrupt_replica("f", 0, victim)
        assert hdfs.is_replica_corrupt("f", 0, victim)
        assert hdfs.corrupt_replica_count == 1
        with pytest.raises(ChecksumError) as excinfo:
            hdfs.verify_replica("f", 0, victim)
        assert excinfo.value.file_name == "f"
        assert excinfo.value.index == 0
        assert excinfo.value.node_name == victim

    def test_healthy_replica_verifies_and_counts_chunks(self):
        _, hdfs = make_hdfs(block_size=1024)
        f = hdfs.create_file("f", 1000)
        node = f.blocks[0].replicas[0]
        assert hdfs.verify_replica("f", 0, node) == hdfs.checksum_chunks(1000)

    def test_corrupting_missing_replica_raises(self):
        _, hdfs = make_hdfs()
        hdfs.create_file("f", 100)
        with pytest.raises(ValueError):
            hdfs.corrupt_replica("f", 0, "no-such-node")

    def test_corrupting_twice_is_idempotent(self):
        _, hdfs = make_hdfs()
        f = hdfs.create_file("f", 100)
        victim = f.blocks[0].replicas[0]
        assert hdfs.corrupt_replica("f", 0, victim)
        assert not hdfs.corrupt_replica("f", 0, victim)
        assert hdfs.corrupt_replica_count == 1


class TestBadBlockReporting:
    def test_report_drops_the_rotten_replica(self):
        _, hdfs = make_hdfs(replication=3)
        f = hdfs.create_file("f", 100)
        victim = f.blocks[0].replicas[0]
        hdfs.corrupt_replica("f", 0, victim)
        updated = hdfs.report_bad_block("f", 0, victim)
        assert updated is not None
        assert victim not in updated.replicas
        assert len(updated.replicas) == 2
        assert hdfs.corrupt_replica_count == 0

    def test_never_invalidates_the_last_replica(self):
        # CorruptReplicasMap semantics: a corrupt copy beats no copy.
        _, hdfs = make_hdfs(n_nodes=1, replication=1)
        f = hdfs.create_file("f", 100)
        only = f.blocks[0].replicas[0]
        hdfs.corrupt_replica("f", 0, only)
        assert hdfs.report_bad_block("f", 0, only) is None
        assert hdfs.files["f"].blocks[0].replicas == (only,)
        # The marker survives so a later scrub can still find it.
        assert hdfs.is_replica_corrupt("f", 0, only)

    def test_report_of_unknown_target_is_a_noop(self):
        _, hdfs = make_hdfs()
        hdfs.create_file("f", 100)
        assert hdfs.report_bad_block("ghost", 0, "n0") is None
        assert hdfs.report_bad_block("f", 99, "n0") is None
        assert hdfs.report_bad_block("f", 0, "not-a-holder") is None

    def test_report_is_journaled_and_replays(self):
        nodes, hdfs = make_hdfs(replication=3)
        journal = NameNodeJournal(hdfs)
        f = hdfs.create_file("f", 5000)
        victim = f.blocks[1].replicas[1]
        hdfs.corrupt_replica("f", 1, victim)
        hdfs.report_bad_block("f", 1, victim)
        assert any(op.op == "report_bad_block" for op in journal.edits.ops)
        recovered = replay(journal.fsimage, journal.edits.ops, nodes)
        assert recovered.files["f"].blocks[1].replicas == \
            hdfs.files["f"].blocks[1].replicas

    def test_delete_file_clears_markers(self):
        _, hdfs = make_hdfs()
        f = hdfs.create_file("f", 100)
        hdfs.corrupt_replica("f", 0, f.blocks[0].replicas[0])
        hdfs.delete_file("f")
        assert hdfs.corrupt_replica_count == 0


class TestDataBlockScanner:
    def test_scan_finds_rot_and_charges_the_disk(self):
        cluster = make_cluster(4, block_size=1024)
        hdfs = cluster.hdfs
        f = hdfs.create_file("f", 4000)
        victim_node = f.blocks[0].replicas[0]
        hdfs.corrupt_replica("f", 0, victim_node)
        node = next(n for n in cluster.slaves if n.name == victim_node)
        scanner = DataBlockScanner(hdfs)
        t, scanned, corrupt = scanner.scan_node(node, at=0.0)
        assert t > 0.0  # the re-reads took simulated disk time
        assert scanned > 0
        assert [(b.file_name, b.index) for b in corrupt] == [("f", 0)]
        assert node.procfs.scrub_bytes == scanned
        assert node.procfs.checksum_failures == 1
        assert node.procfs.checksum_verifications > 0

    def test_clean_node_scans_clean(self):
        cluster = make_cluster(4, block_size=1024)
        cluster.hdfs.create_file("f", 4000)
        scanner = DataBlockScanner(cluster.hdfs)
        _, _, corrupt = scanner.scan_node(cluster.slaves[0], at=0.0)
        assert corrupt == []


# ---------------------------------------------------------------------------
# Commit fencing and graylisting
# ---------------------------------------------------------------------------


class TestCommitFence:
    def test_granted_attempt_commits(self):
        fence = CommitFence()
        fence.grant("m_000001", 0)
        assert fence.try_commit("m_000001", 0)
        assert fence.fenced == 0

    def test_zombie_commit_is_fenced(self):
        fence = CommitFence()
        fence.grant("m_000001", 0)
        fence.revoke("m_000001", 0)
        fence.grant("m_000001", 1)
        assert not fence.try_commit("m_000001", 0)  # the zombie
        assert fence.try_commit("m_000001", 1)  # the replacement
        assert fence.fenced == 1
        assert fence.fenced_attempts == ["attempt_m_000001_0"]

    def test_newer_grant_supersedes(self):
        fence = CommitFence()
        fence.grant("r_000000", 0)
        fence.grant("r_000000", 1)
        assert not fence.try_commit("r_000000", 0)


class TestNodeGraylist:
    def test_graylisted_only_after_the_flap(self):
        gray = NodeGraylist(window_s=0.5)
        gray.record_flap("slave2", rejoin_time_s=2.0)
        assert not gray.is_graylisted("slave2", 0.0)  # before the flap
        assert not gray.is_graylisted("slave2", 1.99)
        assert gray.is_graylisted("slave2", 2.0)
        assert gray.is_graylisted("slave2", 2.49)
        assert not gray.is_graylisted("slave2", 2.5)  # window over

    def test_unknown_node_is_not_graylisted(self):
        gray = NodeGraylist(window_s=0.5)
        assert not gray.is_graylisted("slave1", 1.0)

    def test_repeat_flaps_each_get_a_window(self):
        gray = NodeGraylist(window_s=0.5)
        gray.record_flap("slave2", 1.0)
        gray.record_flap("slave2", 3.0)
        assert gray.is_graylisted("slave2", 1.2)
        assert not gray.is_graylisted("slave2", 2.0)
        assert gray.is_graylisted("slave2", 3.2)
        assert gray.nodes == ("slave2",)


# ---------------------------------------------------------------------------
# Plan validation
# ---------------------------------------------------------------------------


class TestFaultPlanValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(corruption_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corruption_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(transfer_corruption_rate=2.0)
        with pytest.raises(ValueError):
            FaultPlan(link_loss_rate=1.0)  # total loss is a partition
        with pytest.raises(ValueError):
            FaultPlan(lossy_links=(("a", "b", 1.0),))

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            FaultPlan(partitions=(("slave1", -1.0, 1.0),))
        with pytest.raises(ValueError):
            FaultPlan(partitions=(("slave1", 0.0, 0.0),))
        with pytest.raises(ValueError):
            FaultPlan(partitions=(("slave1", 0.0, float("inf")),))

    def test_gray_fields_count_as_faults_but_scrub_does_not(self):
        assert not FaultPlan().injects_faults
        assert not FaultPlan(scrub=True).injects_faults
        assert FaultPlan(corruption_rate=0.1).injects_faults
        assert FaultPlan(transfer_corruption_rate=0.1).injects_faults
        assert FaultPlan(corrupt_replicas=((0, "slave1"),)).injects_faults
        assert FaultPlan(link_loss_rate=0.1).injects_faults
        assert FaultPlan(lossy_links=(("a", "b", 0.2),)).injects_faults
        assert FaultPlan(partitions=(("slave1", 0.0, 1.0),)).injects_faults


# ---------------------------------------------------------------------------
# Scenario tests: one gray-failure class at a time, on real workloads
# ---------------------------------------------------------------------------


def run_gray(plan: FaultPlan, name="WordCount", scale=0.3):
    cluster = FaultyCluster(make_cluster(4, block_size=64 * 1024), plan)
    return cluster, workload(name).run(scale=scale, cluster=cluster)


class TestGrayScenarios:
    def test_corrupt_read_fails_over_and_repairs(self):
        baseline = workload("WordCount").run(
            scale=0.3, cluster=make_cluster(4, block_size=64 * 1024)
        )
        cluster, run = run_gray(FaultPlan(corruption_rate=0.4, seed=3))
        tl = run.timelines[0]
        assert repr(run.output) == repr(baseline.output)
        assert tl.corrupt_replicas_injected > 0
        # Every rotten replica a reader hit was caught, reported and
        # dropped; re-replication repaired the block.
        assert tl.checksum_failures > 0
        assert tl.bad_blocks_reported > 0
        assert tl.duration_s >= baseline.duration_s

    def test_scrub_catches_rot_readers_never_touched(self):
        cluster, run = run_gray(FaultPlan(corruption_rate=0.4, scrub=True, seed=3))
        tl = run.timelines[0]
        assert tl.scrubbed_bytes > 0
        # The post-job sweep leaves nothing rotten anywhere.
        assert cluster.hdfs.corrupt_replica_count == 0
        assert tl.bad_blocks_reported >= tl.corrupt_replicas_injected

    def test_transfer_corruption_is_refetched(self):
        cluster, run = run_gray(
            FaultPlan(transfer_corruption_rate=0.2, seed=5), name="Sort"
        )
        tl = run.timelines[0]
        assert tl.checksum_failures > 0
        # In-flight flips never rot anything at rest.
        assert tl.corrupt_replicas_injected == 0
        assert cluster.hdfs.corrupt_replica_count == 0

    def test_lossy_links_cost_retransmits(self):
        baseline = workload("Sort").run(
            scale=0.3, cluster=make_cluster(4, block_size=64 * 1024)
        )
        _, run = run_gray(FaultPlan(link_loss_rate=0.05, seed=2), name="Sort")
        tl = run.timelines[0]
        assert repr(run.output) == repr(baseline.output)
        assert tl.net_retransmits > 0
        assert tl.net_retransmit_bytes > 0
        assert tl.duration_s >= baseline.duration_s

    def test_partition_fences_zombies_and_graylists(self):
        baseline = workload("Sort").run(
            scale=0.5, cluster=make_cluster(4, block_size=64 * 1024)
        )
        cluster, run = run_gray(
            FaultPlan(partitions=(("slave3", 0.02, 2.0),), seed=7),
            name="Sort", scale=0.5,
        )
        tl = run.timelines[0]
        assert repr(run.output) == repr(baseline.output)
        assert tl.zombie_attempts_fenced > 0
        assert tl.nodes_partitioned == ("slave3",)
        assert tl.graylisted_nodes == ("slave3",)
        zombies = [a for a in tl.attempts if "zombie" in a.reason]
        assert len(zombies) == tl.zombie_attempts_fenced
        assert all(a.node == "slave3" for a in zombies)
        # Every fenced task also has a successful replacement attempt
        # on a reachable node.
        for z in zombies:
            replacements = [
                a for a in tl.attempts
                if a.task_id == z.task_id and a.state.name == "SUCCEEDED"
            ]
            assert len(replacements) == 1
            assert replacements[0].node != "slave3"

    def test_short_blip_goes_unnoticed(self):
        # A partition shorter than the heartbeat timeout delays the
        # attempt's completion but fences nothing.
        policy = RetryPolicy(heartbeat_timeout_s=0.5)
        cluster, run = run_gray(
            FaultPlan(partitions=(("slave3", 0.02, 0.3),), policy=policy, seed=7),
            name="Sort", scale=0.5,
        )
        tl = run.timelines[0]
        assert tl.zombie_attempts_fenced == 0
        assert tl.nodes_partitioned == ("slave3",)

    def test_public_scrub_reports_a_summary(self):
        cluster = FaultyCluster(
            make_cluster(4, block_size=64 * 1024), FaultPlan(scrub=True)
        )
        workload("WordCount").run(scale=0.3, cluster=cluster)
        hdfs = cluster.hdfs
        name = sorted(hdfs.files)[0]
        victim = hdfs.files[name].blocks[0].replicas[0]
        hdfs.corrupt_replica(name, 0, victim)
        summary = cluster.scrub()
        assert summary["corrupt_found"] == 1
        assert summary["bad_blocks_reported"] == 1
        assert summary["scrubbed_bytes"] > 0
        assert hdfs.corrupt_replica_count == 0


# ---------------------------------------------------------------------------
# Observational freedom: disabled gray machinery costs exactly nothing
# ---------------------------------------------------------------------------


class TestObservationalFreedom:
    def test_fault_free_run_matches_stock_cluster_exactly(self):
        stock = workload("Sort").run(
            scale=0.3, cluster=make_cluster(4, block_size=64 * 1024)
        )
        faulty_cluster = FaultyCluster(
            make_cluster(4, block_size=64 * 1024), FaultPlan()
        )
        gated = workload("Sort").run(scale=0.3, cluster=faulty_cluster)
        assert gated.duration_s == stock.duration_s
        tl = gated.timelines[0]
        assert tl.zombie_attempts_fenced == 0
        assert tl.checksum_failures == 0
        assert tl.net_retransmits == 0

    def test_procfs_counters_match_stock_cluster(self):
        stock_cluster = make_cluster(4, block_size=64 * 1024)
        workload("Sort").run(scale=0.3, cluster=stock_cluster)
        faulty_cluster = FaultyCluster(
            make_cluster(4, block_size=64 * 1024), FaultPlan()
        )
        workload("Sort").run(scale=0.3, cluster=faulty_cluster)
        # Both paths verify every read's checksums somewhere...
        assert sum(
            n.procfs.checksum_verifications for n in stock_cluster.slaves
        ) > 0
        for stock_node, gated_node in zip(
            stock_cluster.slaves, faulty_cluster.cluster.slaves
        ):
            s, g = stock_node.procfs, gated_node.procfs
            # ...the same number on the same node...
            assert g.checksum_verifications == s.checksum_verifications
            # ...and with no faults the failure counters stay zero.
            assert g.checksum_failures == s.checksum_failures == 0
            assert g.net_retransmits == s.net_retransmits == 0
            assert g.scrub_bytes == s.scrub_bytes == 0
            assert g.bad_block_reports == s.bad_block_reports == 0
            assert g.net_tx_bytes == s.net_tx_bytes
            assert g.bytes_written() == s.bytes_written()


# ---------------------------------------------------------------------------
# The integrity chaos matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
class TestIntegrityChaosMatrix:
    def test_output_is_bit_identical(self, name, seed):
        assert integrity(name, seed).identical_output

    def test_every_injected_corruption_is_caught(self, name, seed):
        result = integrity(name, seed)
        assert result.corrupt_injected > 0
        assert result.all_corruption_detected
        assert result.undetected_corrupt_replicas == 0

    def test_gray_failures_never_speed_the_job_up(self, name, seed):
        result = integrity(name, seed)
        assert result.chaotic_duration_s >= result.baseline_duration_s


class TestIntegrityChaosProperties:
    def test_same_seed_is_exactly_reproducible(self):
        a = run_integrity_chaos("WordCount", seed=5)
        b = run_integrity_chaos("WordCount", seed=5)
        assert a.chaotic_duration_s == b.chaotic_duration_s
        assert a.accounting == b.accounting
        assert a.plan == b.plan

    def test_matrix_exercises_every_gray_failure_class(self):
        results = [integrity(name, seed) for name in WORKLOADS for seed in SEEDS]
        assert all(r.corrupt_injected for r in results)
        assert all(r.scrubbed_bytes for r in results)
        assert any(r.zombie_attempts_fenced for r in results)
        assert any(r.net_retransmits for r in results)
        assert any(r.plan.partitions for r in results)
        assert all(r.plan.transfer_corruption_rate > 0 for r in results)

    def test_zombies_never_commit(self):
        # Wherever a zombie was fenced, the task's committed attempt ran
        # on a different, reachable node.
        for name in WORKLOADS:
            for seed in SEEDS:
                result = integrity(name, seed)
                if not result.zombie_attempts_fenced:
                    continue
                partitioned = set(result.accounting["nodes_partitioned"])
                assert partitioned
