"""Functional tests for the eleven data-analysis workloads."""

import collections

import pytest

from repro.cluster import make_cluster
from repro.uarch.trace import SyntheticTrace, TraceSpec
from repro.workloads import WORKLOAD_NAMES, all_workloads, workload
from repro.workloads import datagen
from repro.workloads.kmeans import nearest_centroid, squared_distance
from repro.workloads.fuzzy_kmeans import memberships
from repro.workloads.hmm import HmmModel, segment
from repro.workloads.ibcf import build_similarity
from repro.workloads.svm import extract_features, FEATURE_DIM


SCALE = 0.25


class TestRegistry:
    def test_eleven_workloads(self):
        assert len(WORKLOAD_NAMES) == 11
        assert len(all_workloads()) == 11

    def test_names_match_table_one(self):
        assert WORKLOAD_NAMES == [
            "Sort", "WordCount", "Grep", "Naive Bayes", "SVM", "K-means",
            "Fuzzy K-means", "IBCF", "HMM", "PageRank", "Hive-bench",
        ]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("Frobnicate")

    def test_table_one_metadata(self):
        for wl in all_workloads():
            assert 147 <= wl.info.input_gb_low <= 187
            assert wl.info.retired_instructions_1e9 > 1000
            assert wl.info.source

    def test_table_two_scenarios_present(self):
        for wl in all_workloads():
            assert wl.info.scenarios, f"{wl.info.name} lacks Table II scenarios"

    def test_trace_specs_build_and_generate(self):
        for wl in all_workloads():
            spec = wl.trace_spec(2000)
            assert isinstance(spec, TraceSpec)
            assert spec.name == wl.info.name
            assert sum(1 for _ in SyntheticTrace(spec)) == 2000

    def test_trace_specs_distinct_across_workloads(self):
        footprints = {wl.trace_spec(1000).code_footprint for wl in all_workloads()}
        kernels = {wl.trace_spec(1000).kernel_fraction for wl in all_workloads()}
        assert len(footprints) > 1
        assert len(kernels) > 2


class TestSort:
    def test_output_sorted_and_permutation(self):
        run = workload("Sort").run(scale=SCALE)
        keys = [k for k, _ in run.output]
        assert keys == sorted(keys)
        assert len(keys) == run.details["records"]

    def test_sort_kernel_fraction_highest(self):
        sort_spec = workload("Sort").trace_spec(1000)
        others = [w.trace_spec(1000) for w in all_workloads() if w.info.name != "Sort"]
        assert sort_spec.kernel_fraction == pytest.approx(0.24, abs=0.01)
        assert all(sort_spec.kernel_fraction > o.kernel_fraction for o in others)


class TestWordCount:
    def test_matches_counter_reference(self):
        run = workload("WordCount").run(scale=SCALE)
        docs = datagen.generate_documents(int(1200 * SCALE))
        expected = collections.Counter(w for _, text in docs for w in text.split())
        assert run.output == dict(expected)


class TestGrep:
    def test_matches_re_reference(self):
        import re

        wl = workload("Grep")
        run = wl.run(scale=SCALE)
        docs = datagen.generate_documents(int(1200 * SCALE), seed=14)
        pattern = re.compile(wl.pattern)
        expected = collections.Counter(
            m for _, text in docs for m in pattern.findall(text)
        )
        assert run.output == dict(expected)

    def test_custom_pattern(self):
        from repro.workloads.grep import GrepWorkload

        run = GrepWorkload(pattern=r"zz\w+").run(scale=0.1)
        assert all(match.startswith("zz") for match in run.output)


class TestNaiveBayes:
    def test_classifies_held_out_docs_well(self):
        run = workload("Naive Bayes").run(scale=SCALE)
        assert run.details["accuracy"] > 0.9

    def test_two_jobs(self):
        run = workload("Naive Bayes").run(scale=0.1)
        assert len(run.job_results) == 2

    def test_bayes_profile_is_the_documented_outlier(self):
        bayes = workload("Naive Bayes").trace_spec(1000)
        others = [
            w.trace_spec(1000) for w in all_workloads() if w.info.name != "Naive Bayes"
        ]
        # Smallest instruction footprint of the eleven (paper §IV-C).
        assert all(bayes.code_footprint < o.code_footprint for o in others)


class TestSvm:
    def test_training_beats_chance_clearly(self):
        run = workload("SVM").run(scale=0.5)
        assert run.details["accuracy"] > 0.75

    def test_one_job_per_iteration(self):
        run = workload("SVM").run(scale=0.1)
        assert len(run.job_results) == run.details["iterations"]

    def test_feature_extraction(self):
        features = extract_features("<html><body>hello world hello</body></html>")
        assert features
        assert all(0 <= i < FEATURE_DIM for i in features)
        norm = sum(v * v for v in features.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_feature_extraction_empty(self):
        assert extract_features("<html></html>") == {}


class TestKMeans:
    def test_recovers_true_centers(self):
        run = workload("K-means").run(scale=0.5)
        centroids = run.output
        true_centers = run.details["true_centers"]
        # every true center has a recovered centroid nearby
        for center in true_centers:
            best = min(squared_distance(center, c) ** 0.5 for c in centroids)
            assert best < 1.0

    def test_assignments_consistent(self):
        run = workload("K-means").run(scale=0.2)
        centroids = run.output
        for pid, cid in list(run.details["assignments"].items())[:50]:
            assert 0 <= cid < len(centroids)

    def test_nearest_centroid_helper(self):
        centroids = [(0.0, 0.0), (10.0, 10.0)]
        assert nearest_centroid((1.0, 1.0), centroids) == 0
        assert nearest_centroid((9.0, 9.0), centroids) == 1


class TestFuzzyKMeans:
    def test_memberships_sum_to_one(self):
        centroids = [(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]
        u = memberships((2.0, 2.0), centroids, m=2.0)
        assert sum(u) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in u)

    def test_membership_at_centroid_is_one(self):
        centroids = [(0.0, 0.0), (5.0, 5.0)]
        u = memberships((0.0, 0.0), centroids, m=2.0)
        assert u == [1.0, 0.0]

    def test_converges_near_true_centers(self):
        run = workload("Fuzzy K-means").run(scale=0.5)
        for center in run.details["true_centers"]:
            best = min(squared_distance(center, c) ** 0.5 for c in run.output)
            assert best < 1.5


class TestIbcf:
    def test_recommends_unrated_items(self):
        run = workload("IBCF").run(scale=0.5)
        ratings = datagen.generate_ratings(num_users=int(400 * 0.5))
        rated = collections.defaultdict(set)
        for user, (item, _) in ratings:
            rated[user].add(item)
        for user, recs in run.output.items():
            assert not (set(recs) & rated[user])

    def test_three_job_pipeline(self):
        run = workload("IBCF").run(scale=0.2)
        assert len(run.job_results) == 3

    def test_similarity_symmetric_and_bounded(self):
        cooc = {(0, 0): 4.0, (1, 1): 9.0, (0, 1): 5.0}
        sims = build_similarity(cooc)
        assert sims[(0, 1)] == pytest.approx(sims[(1, 0)])
        assert 0 < sims[(0, 1)] <= 1.0


class TestHmm:
    def test_tagging_beats_chance(self):
        run = workload("HMM").run(scale=0.5)
        assert run.details["tag_accuracy"] > 0.7

    def test_viterbi_output_shape(self):
        counts = {
            ("init", "B", ""): 5, ("init", "S", ""): 5,
            ("trans", "B", "E"): 8, ("trans", "E", "B"): 4, ("trans", "E", "S"): 2,
            ("trans", "S", "B"): 3, ("trans", "S", "S"): 3,
            ("emit", "B", "a"): 5, ("emit", "E", "b"): 5, ("emit", "S", "c"): 4,
        }
        model = HmmModel(counts, alphabet=["a", "b", "c"])
        tags = model.viterbi("abc")
        assert len(tags) == 3
        assert set(tags) <= set("BMES")

    def test_segment_helper(self):
        assert segment("abcd", "BEBE") == ["ab", "cd"]
        assert segment("abc", "SBE") == ["a", "bc"]
        assert segment("ab", "BM") == ["ab"]  # unterminated word flushed


class TestPageRank:
    def test_ranks_sum_to_one(self):
        run = workload("PageRank").run(scale=0.2)
        assert sum(run.output.values()) == pytest.approx(1.0, abs=1e-6)

    def test_popular_pages_rank_higher(self):
        run = workload("PageRank").run(scale=0.3)
        graph = datagen.generate_web_graph(int(2000 * 0.3))
        indegree = collections.Counter()
        for _, links in graph:
            for t in links:
                indegree[t] += 1
        ranks = run.output
        top_by_degree = [p for p, _ in indegree.most_common(5)]
        median_rank = sorted(ranks.values())[len(ranks) // 2]
        assert all(ranks[p] > median_rank for p in top_by_degree)

    def test_matches_networkx_reference(self):
        import networkx as nx

        run = workload("PageRank").run(scale=0.15)
        graph = datagen.generate_web_graph(int(2000 * 0.15))
        g = nx.DiGraph()
        g.add_nodes_from(p for p, _ in graph)
        for page, links in graph:
            g.add_edges_from((page, t) for t in links)
        reference = nx.pagerank(g, alpha=0.85, max_iter=200)
        ours = run.output
        # rank correlation on the top pages
        top_ref = sorted(reference, key=reference.get, reverse=True)[:10]
        top_ours = sorted(ours, key=ours.get, reverse=True)[:10]
        assert len(set(top_ref) & set(top_ours)) >= 6


class TestHiveBench:
    def test_four_queries_run(self):
        run = workload("Hive-bench").run(scale=0.3)
        assert run.details["queries"] == 4
        assert len(run.output) == 4

    def test_join_query_has_limited_output(self):
        run = workload("Hive-bench").run(scale=0.3)
        join_sql = [sql for sql in run.output if "JOIN" in sql][0]
        assert len(run.output[join_sql]) <= 10


class TestClusterRuns:
    @pytest.mark.parametrize("name", ["Sort", "WordCount", "K-means"])
    def test_cluster_run_produces_timelines(self, name):
        cluster = make_cluster(4, block_size=64 * 1024)
        run = workload(name).run(scale=0.15, cluster=cluster)
        assert run.timelines
        assert run.duration_s > 0
        assert run.disk_writes_per_second() >= 0

    def test_disk_rates_need_cluster(self):
        run = workload("Sort").run(scale=0.1)
        with pytest.raises(ValueError):
            run.disk_writes_per_second()
