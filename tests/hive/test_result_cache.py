"""Materialization cache: the observational-safety contract.

The cache must be invisible except for speed: a hit returns rows and
columns bit-identical to the cold run, any input-table change misses,
and the escape hatch (``REPRO_RESULT_CACHE=0`` / ``enabled=False``)
restores plain execution exactly.
"""

import random

import pytest

from repro.cluster import make_cluster
from repro.hive import HiveSession, MaterializationCache, result_cache_enabled
from repro.workloads.hive_bench import BENCH_QUERIES


def make_session(cache: MaterializationCache | None = None,
                 with_cluster: bool = False) -> HiveSession:
    cluster = (
        make_cluster(num_slaves=2, map_slots=4, reduce_slots=2,
                     block_size=64 * 1024)
        if with_cluster
        else None
    )
    s = HiveSession(cluster=cluster, result_cache=cache)
    s.create_table(
        "rankings",
        [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
    )
    s.create_table(
        "uservisits",
        [
            ("sourceIP", "string"),
            ("destURL", "string"),
            ("adRevenue", "double"),
            ("searchWord", "string"),
        ],
    )
    rng = random.Random(42)
    s.load_rows(
        "rankings",
        [(f"url{i}", rng.randrange(200), rng.randrange(10)) for i in range(80)],
    )
    s.load_rows(
        "uservisits",
        [
            (f"ip{rng.randrange(20)}", f"url{rng.randrange(80)}",
             round(rng.random(), 6), f"word{rng.randrange(30)}")
            for _ in range(300)
        ],
    )
    return s


class TestBitIdentity:
    @pytest.mark.parametrize("sql", BENCH_QUERIES)
    def test_hit_is_bit_identical_to_cold_run_on_every_bench_query(self, sql):
        cached = make_session(MaterializationCache(enabled=True))
        plain = make_session(cache=None)
        cold = cached.execute(sql)
        hit = cached.execute(sql)
        off = plain.execute(sql)
        assert hit.cached and not cold.cached
        assert hit.rows == cold.rows == off.rows
        assert hit.columns == cold.columns == off.columns

    def test_hit_rows_are_a_fresh_copy(self):
        session = make_session(MaterializationCache(enabled=True))
        sql = BENCH_QUERIES[1]
        session.execute(sql)
        first = session.execute(sql)
        first.rows.append(("tampered", 0))
        second = session.execute(sql)
        assert ("tampered", 0) not in second.rows

    def test_hit_carries_the_cold_cost_as_saved_s(self):
        session = make_session(MaterializationCache(enabled=True),
                               with_cluster=True)
        sql = BENCH_QUERIES[1]
        cold = session.execute(sql)
        hit = session.execute(sql)
        assert cold.total_duration_s() > 0
        assert hit.saved_s == cold.total_duration_s()
        assert hit.job_results == []  # nothing was scheduled


class TestInvalidation:
    def test_insert_invalidates(self):
        session = make_session(MaterializationCache(enabled=True))
        sql = BENCH_QUERIES[1]
        session.execute(sql)
        assert session.execute(sql).cached
        session.load_rows("rankings", [("urlX", 999, 1)])
        after = session.execute(sql)
        assert not after.cached
        assert ("urlX", 999) in after.rows

    def test_drop_and_recreate_never_serves_stale_rows(self):
        session = make_session(MaterializationCache(enabled=True))
        sql = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100"
        session.execute(sql)
        session.execute_statement("DROP TABLE rankings")
        session.create_table(
            "rankings",
            [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
        )
        session.load_rows("rankings", [("only", 500, 1)])
        fresh = session.execute(sql)
        assert not fresh.cached
        assert fresh.rows == [("only", 500)]

    def test_unrelated_table_change_does_not_invalidate(self):
        session = make_session(MaterializationCache(enabled=True))
        sql = BENCH_QUERIES[1]  # touches rankings only
        session.execute(sql)
        session.load_rows("uservisits", [("ip", "url0", 0.5, "w")])
        assert session.execute(sql).cached


class TestEscapeHatch:
    def test_disabled_cache_never_hits(self):
        cache = MaterializationCache(enabled=False)
        session = make_session(cache)
        sql = BENCH_QUERIES[1]
        a = session.execute(sql)
        b = session.execute(sql)
        assert not a.cached and not b.cached
        assert len(cache) == 0

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not result_cache_enabled()
        assert not MaterializationCache().enabled
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        assert result_cache_enabled()
        monkeypatch.delenv("REPRO_RESULT_CACHE")
        assert result_cache_enabled()

    def test_no_cache_object_is_plain_execution(self):
        session = make_session(cache=None)
        assert not session.execute(BENCH_QUERIES[1]).cached


class TestAccounting:
    def test_stats_and_bucket_split(self):
        cache = MaterializationCache(enabled=True)
        session = make_session(cache)
        sql = BENCH_QUERIES[1]
        cache.bucket = "hot"
        session.execute(sql)
        session.execute(sql)
        cache.bucket = "cold"
        session.execute("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 7")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.hit_rate() == pytest.approx(1 / 3)
        assert cache.by_bucket["hot"].hits == 1
        assert cache.by_bucket["hot"].misses == 1
        assert cache.by_bucket["cold"].misses == 1
        assert cache.by_bucket["cold"].hits == 0

    def test_procfs_warehouse_counters_on_the_master(self):
        cache = MaterializationCache(enabled=True)
        session = make_session(cache, with_cluster=True)
        sql = BENCH_QUERIES[1]
        session.execute(sql)
        session.execute(sql)
        procfs = session.cluster.master.procfs
        assert procfs.result_cache_hits == 1
        assert procfs.result_cache_misses == 1
        line = procfs.render_warehouse()
        assert "result_cache_hits 1" in line
        assert "result_cache_misses 1" in line

    def test_clear_empties_entries_but_keeps_stats(self):
        cache = MaterializationCache(enabled=True)
        session = make_session(cache)
        session.execute(BENCH_QUERIES[1])
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
