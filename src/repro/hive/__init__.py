"""Mini data warehouse (Hive 0.6-flavoured) over the MapReduce engine.

The paper's Hive-bench workload runs "a series of representative SQL-like
statements" (the HIVE-396 benchmark: grep selection, rankings filter,
uservisits aggregation, rankings⋈uservisits join) on Hive, which compiles
each statement into MapReduce jobs.  This package does the same, end to
end:

* :mod:`repro.hive.schema` — tables with typed columns and rows;
* :mod:`repro.hive.parser` — a recursive-descent parser for the SQL subset
  the benchmark needs (SELECT / WHERE / LIKE / JOIN … ON / GROUP BY /
  aggregates / ORDER BY / LIMIT);
* :mod:`repro.hive.planner` — compiles the AST into one or more
  :class:`~repro.mapreduce.job.MapReduceJob` stages, exactly like Hive's
  plan: scan-filter-project is map-only, GROUP BY is map+combine+reduce,
  JOIN is a reduce-side join followed by downstream stages;
* :mod:`repro.hive.engine` — a session that owns tables, runs plans on a
  :class:`~repro.mapreduce.engine.LocalEngine`, and returns result rows
  (plus the job results for the cluster timing model).
"""

from repro.hive.schema import Column, Table
from repro.hive.parser import parse_query, Query
from repro.hive.planner import (
    canonical_query,
    plan_fingerprint,
    plan_query,
    query_digest,
    template_digest,
    QueryPlan,
)
from repro.hive.engine import (
    CacheStats,
    HiveSession,
    MaterializationCache,
    QueryExecution,
    result_cache_enabled,
)

__all__ = [
    "Column",
    "Table",
    "parse_query",
    "Query",
    "canonical_query",
    "plan_fingerprint",
    "plan_query",
    "query_digest",
    "template_digest",
    "QueryPlan",
    "CacheStats",
    "HiveSession",
    "MaterializationCache",
    "QueryExecution",
    "result_cache_enabled",
]
