"""Workload recipes: record → fit → regenerate (WfCommons/Redbench style).

The paper characterizes *production* data-analysis traffic; this package
closes the loop from one observed execution back to arbitrarily much
statistically matching synthetic load:

* :mod:`repro.recipes.instances` — serialize a ``run_mix`` execution (or
  a bare trace) into a validated, round-tripping JSON *instance*;
* :mod:`repro.recipes.fit` — fit per-user/per-pool *recipes* from an
  instance: workload mix, job-size ranges, inter-arrival rate, and
  Redbench-style repetitiveness (exact vs parameter-varied repeats);
* :mod:`repro.recipes.generate` — regenerate synthetic
  :class:`~repro.cluster.tenancy.WorkloadTrace` s of any length from a
  recipe, feeding straight back into ``run_mix``/``serve``;
* :mod:`repro.recipes.repbench` — measure the Hive materialization
  cache's payoff per repetitiveness bucket (Redbench's headline: cache
  wins grow with repetition).
"""

from repro.recipes.instances import (
    INSTANCE_SCHEMA_VERSION,
    Instance,
    InstanceJob,
    InstanceSchemaError,
    hive_plan_fingerprints,
    instance_from_trace,
    record_instance,
)
from repro.recipes.fit import (
    Recipe,
    ScaleStats,
    TemplateStats,
    UserRecipe,
    classify_repeats,
    fit_recipe,
    repetition_bucket,
)
from repro.recipes.generate import generate_from_recipe
from repro.recipes.repbench import (
    BucketReport,
    RepetitionBenchReport,
    run_repetition_benchmark,
)

__all__ = [
    "INSTANCE_SCHEMA_VERSION",
    "Instance",
    "InstanceJob",
    "InstanceSchemaError",
    "hive_plan_fingerprints",
    "instance_from_trace",
    "record_instance",
    "Recipe",
    "ScaleStats",
    "TemplateStats",
    "UserRecipe",
    "classify_repeats",
    "fit_recipe",
    "repetition_bucket",
    "generate_from_recipe",
    "BucketReport",
    "RepetitionBenchReport",
    "run_repetition_benchmark",
]
