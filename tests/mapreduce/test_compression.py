"""Tests for map-output compression (mapred.compress.map.output)."""

import pytest

from repro.cluster import make_cluster
from repro.mapreduce import JobConf, LocalEngine, MapReduceJob


def wc_map(key, value):
    for word in value.split():
        yield word, 1


def wc_reduce(key, values):
    yield key, sum(values)


DOCS = [("d%d" % i, "alpha beta gamma delta " * 20) for i in range(40)]


def run(compress: bool, cluster=None):
    job = MapReduceJob(
        wc_map,
        wc_reduce,
        JobConf("wc", num_reduces=4, compress_map_output=compress,
                compression_ratio=0.4),
    )
    return LocalEngine().execute(job, DOCS, cluster=cluster)


class TestConfValidation:
    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            JobConf("j", compression_ratio=0.0)
        with pytest.raises(ValueError):
            JobConf("j", compression_ratio=1.5)

    def test_rejects_negative_codec_cost(self):
        with pytest.raises(ValueError):
            JobConf("j", compression_cost_per_byte=-1e-9)


class TestCompressionSemantics:
    def test_output_identical(self):
        assert dict(run(False).output) == dict(run(True).output)

    def test_shuffle_bytes_shrink(self):
        plain = run(False).counters
        packed = run(True).counters
        assert packed.shuffle_bytes == pytest.approx(plain.shuffle_bytes * 0.4, rel=0.02)
        assert packed.spilled_bytes < plain.spilled_bytes

    def test_record_counts_unchanged(self):
        plain = run(False).counters
        packed = run(True).counters
        assert packed.map_output_records == plain.map_output_records
        assert packed.reduce_input_records == plain.reduce_input_records

    def test_map_work_bytes_shrink_but_cpu_grows(self):
        plain = run(False).work
        packed = run(True).work
        assert sum(m.output_bytes for m in packed.maps) < sum(
            m.output_bytes for m in plain.maps
        )
        assert sum(m.cpu_seconds for m in packed.maps) > sum(
            m.cpu_seconds for m in plain.maps
        )

    def test_compression_reduces_cluster_network_traffic(self):
        c_plain, c_packed = make_cluster(4), make_cluster(4)
        plain = run(False, cluster=c_plain)
        packed = run(True, cluster=c_packed)
        assert packed.timeline.network_bytes < plain.timeline.network_bytes
