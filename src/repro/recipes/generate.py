"""Regenerate synthetic workload traces from a fitted recipe.

The WfCommons loop closed: record an execution
(:mod:`repro.recipes.instances`), fit a recipe
(:mod:`repro.recipes.fit`), then call :func:`generate_from_recipe` for
an arbitrarily long synthetic :class:`~repro.cluster.tenancy.WorkloadTrace`
that statistically matches the source — same workload-mix proportions,
same Poisson arrival rate, same per-user repetitiveness — and feeds
straight into ``run_mix`` / ``serve``.

Generation replays each user's fitted behaviour as a small Markov
process over their own history, mirroring how Redbench regenerates a
user's query stream from their repetitiveness cluster:

* with probability ``exact_repeat_rate`` resubmit a previous
  (workload, scale) submission verbatim — an exact-template repeat;
* else with probability ``varied_repeat_rate`` reuse a previously
  submitted template with a freshly drawn scale — a parameter-varied
  repeat;
* otherwise draw a fresh template from the user's fitted mix.

Until the user has history, every draw is fresh (exactly like the
source trace's first submissions, which fitting also labels fresh).

Deterministic per ``(recipe, num_jobs, seed)``: the RNG is seeded from
the recipe name and the caller's seed, nothing else.
"""

from __future__ import annotations

import random

from repro.cluster.tenancy import TraceJob, WorkloadTrace
from repro.recipes.fit import Recipe, TemplateStats, UserRecipe

__all__ = ["generate_from_recipe"]


def _draw_scale(rng: random.Random, stats: TemplateStats) -> float:
    """A fresh scale for one template: uniform over the fitted range.

    Rounded so exact-repeat equality is a float comparison that survives
    the JSON round-trip of traces and instances — but finely enough
    (6 decimals) that two independent fresh draws almost never collide
    into an accidental exact repeat.
    """
    return round(rng.uniform(stats.scales.low, stats.scales.high), 6)


def _draw_job(
    rng: random.Random,
    recipe_user: UserRecipe,
    history: list[tuple[str, float, str, str]],
) -> tuple[str, float, str, str]:
    """One (workload, scale, pool, size_class) draw for one user."""
    templates = {t.workload: t for t in recipe_user.templates}
    roll = rng.random()
    if history and roll < recipe_user.exact_repeat_rate:
        return rng.choice(history)
    if history and roll < recipe_user.exact_repeat_rate + recipe_user.varied_repeat_rate:
        workload = rng.choice(history)[0]
        stats = templates[workload]
        return (workload, _draw_scale(rng, stats), stats.pool, stats.size_class)
    stats = rng.choices(
        recipe_user.templates,
        weights=[t.weight for t in recipe_user.templates],
    )[0]
    return (stats.workload, _draw_scale(rng, stats), stats.pool, stats.size_class)


def generate_from_recipe(
    recipe: Recipe, num_jobs: int, seed: int = 0
) -> WorkloadTrace:
    """A synthetic trace of *num_jobs* submissions matching *recipe*."""
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    rng = random.Random(f"recipe:{recipe.name}:{seed}")
    user_weights = [u.weight for u in recipe.users]
    histories: dict[str, list[tuple[str, float, str, str]]] = {
        u.user: [] for u in recipe.users
    }
    clock = 0.0
    jobs = []
    for index in range(num_jobs):
        clock += rng.expovariate(recipe.arrival_rate_per_s)
        recipe_user = rng.choices(recipe.users, weights=user_weights)[0]
        workload, scale, pool, size_class = _draw_job(
            rng, recipe_user, histories[recipe_user.user]
        )
        histories[recipe_user.user].append((workload, scale, pool, size_class))
        jobs.append(
            TraceJob(
                index=index,
                workload=workload,
                scale=scale,
                arrival_s=round(clock, 6),
                user=recipe_user.user,
                pool=pool,
                size_class=size_class,
            )
        )
    return WorkloadTrace(tuple(jobs), seed, recipe.arrival_rate_per_s)
