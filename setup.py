"""Legacy setup shim: the build environment has no `wheel` package, so
`pip install -e . --no-use-pep517` (which needs setup.py) is the supported
editable-install path.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
