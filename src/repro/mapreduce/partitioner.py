"""Partitioners: hash (default) and sampled total-order range.

Hash partitioning is Hadoop's default.  Total-order range partitioning —
what the Sort benchmark uses — samples the key space and builds split
points so that reducer outputs concatenate into globally sorted order.
Keys must be mutually comparable for range partitioning.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Sequence

Partitioner = Callable[[object, int], int]


def _stable_hash(key) -> int:
    """Deterministic cross-run hash (Python's str hash is salted)."""
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    data = repr(key).encode("utf-8", errors="replace")
    return int.from_bytes(hashlib.md5(data).digest()[:4], "big")


def hash_partitioner(key, num_reduces: int) -> int:
    """Hadoop's HashPartitioner: stable_hash(key) mod R."""
    if num_reduces <= 0:
        raise ValueError("num_reduces must be positive")
    return _stable_hash(key) % num_reduces


def make_range_partitioner(sample_keys: Sequence, num_reduces: int) -> Partitioner:
    """Build a TotalOrderPartitioner from sampled keys.

    Picks ``num_reduces - 1`` evenly spaced split points from the sorted
    sample; keys route to the partition whose range contains them, so
    partition *i* holds only keys ≤ every key of partition *i+1*.
    """
    if num_reduces <= 0:
        raise ValueError("num_reduces must be positive")
    if num_reduces == 1 or not sample_keys:
        return lambda key, r: 0
    ordered = sorted(sample_keys)
    splits = []
    for i in range(1, num_reduces):
        idx = min(len(ordered) - 1, i * len(ordered) // num_reduces)
        splits.append(ordered[idx])
    # De-duplicate split points while preserving order.
    unique_splits = []
    for s in splits:
        if not unique_splits or s > unique_splits[-1]:
            unique_splits.append(s)

    def partition(key, r: int) -> int:
        return bisect.bisect_right(unique_splits, key)

    return partition
