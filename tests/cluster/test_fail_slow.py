"""Tests for fail-slow (limping-hardware) injection and its mitigation.

Fail-slow is the third failure class next to fail-stop and gray
failures: the hardware keeps answering, just slowly, so the damage is a
latency tail rather than an error.  These tests pin the PR's contract:

* limp factors stretch exactly the device they name (a ``limping_nodes``
  entry limps the whole machine — CPU, disk and NIC together);
* a factor of 1.0 is bit-identical to no injection at all, and fault-free
  runs are bit-identical with the detection machinery present
  (observational freedom);
* on the pinned latency-bound Sort trace a limping node inflates the mix
  p99 well past the baseline with speculation off, and host-diagnosed
  speculative backups claw back most of the inflation with it on;
* outputs stay bit-identical to the fault-free run in every cell of the
  workload x scheduler x seed matrix, and every speculative loser is
  fenced by the commit fence.
"""

import pytest

from repro.cluster import FaultPlan, FaultyCluster, make_cluster
from repro.cluster.chaos import run_fail_slow_chaos
from repro.cluster.scheduler import FifoScheduler
from repro.cluster.tenancy import TraceJob, WorkloadTrace, run_mix
from repro.workloads import workload

SHAPE = dict(num_slaves=3, map_slots=4, reduce_slots=2, block_size=64 * 1024)


def small_trace(kind: str = "WordCount", jobs: int = 3) -> WorkloadTrace:
    trace_jobs = tuple(
        TraceJob(i, kind, 0.05, 0.1 * i, f"user{i}", "batch", "small")
        for i in range(jobs)
    )
    return WorkloadTrace(trace_jobs, seed=0, arrival_rate_per_s=0.0)


# -- the fault plan ------------------------------------------------------------


class TestFaultPlanFailSlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(limping_nodes=(("slave1", 0.5),))
        with pytest.raises(ValueError):
            FaultPlan(limping_disks=(("slave1", float("nan")),))
        with pytest.raises(ValueError):
            FaultPlan(limping_nics=(("", 2.0),))
        with pytest.raises(ValueError):
            FaultPlan(fail_slow_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(fail_slow_factor_range=(3.0, 2.0))
        with pytest.raises(ValueError):
            FaultPlan(fail_slow_factor_range=(0.5, 2.0))

    def test_injects_fail_slow_property(self):
        assert not FaultPlan().injects_fail_slow
        assert FaultPlan(limping_nodes=(("s", 2.0),)).injects_fail_slow
        assert FaultPlan(limping_disks=(("s", 2.0),)).injects_fail_slow
        assert FaultPlan(limping_nics=(("s", 2.0),)).injects_fail_slow
        assert FaultPlan(fail_slow_rate=0.1).injects_fail_slow

    def test_limping_node_limps_the_whole_machine(self):
        plan = FaultPlan(limping_nodes=(("slave1", 3.0),))
        factors = plan.resolve_fail_slow(("slave1", "slave2"))
        assert factors["slave1"] == {"cpu": 3.0, "disk": 3.0, "nic": 3.0}
        assert factors["slave2"] == {"cpu": 1.0, "disk": 1.0, "nic": 1.0}

    def test_limping_devices_limp_one_resource(self):
        plan = FaultPlan(
            limping_disks=(("slave1", 2.0),), limping_nics=(("slave2", 4.0),)
        )
        factors = plan.resolve_fail_slow(("slave1", "slave2"))
        assert factors["slave1"] == {"cpu": 1.0, "disk": 2.0, "nic": 1.0}
        assert factors["slave2"] == {"cpu": 1.0, "disk": 1.0, "nic": 4.0}

    def test_factors_combine_by_max(self):
        plan = FaultPlan(
            limping_nodes=(("slave1", 2.0),), limping_disks=(("slave1", 3.0),)
        )
        factors = plan.resolve_fail_slow(("slave1",))
        assert factors["slave1"] == {"cpu": 2.0, "disk": 3.0, "nic": 2.0}

    def test_unknown_limping_node_is_rejected(self):
        plan = FaultPlan(limping_nodes=(("slave9", 2.0),))
        with pytest.raises(ValueError, match="slave9"):
            plan.resolve_fail_slow(("slave1", "slave2"))

    def test_rate_drawn_factors_are_seeded_and_bounded(self):
        nodes = tuple(f"slave{i}" for i in range(1, 9))
        plan = FaultPlan(fail_slow_rate=0.5, seed=7)
        first = plan.resolve_fail_slow(nodes)
        assert first == FaultPlan(fail_slow_rate=0.5, seed=7).resolve_fail_slow(
            nodes
        )
        assert first != FaultPlan(fail_slow_rate=0.5, seed=8).resolve_fail_slow(
            nodes
        )
        drawn = [
            factor
            for per_resource in first.values()
            for factor in per_resource.values()
            if factor != 1.0
        ]
        assert drawn  # rate 0.5 over 24 draws: some resource limps
        lo, hi = plan.fail_slow_factor_range
        assert all(lo <= factor <= hi for factor in drawn)


# -- the device models ---------------------------------------------------------


class TestDeviceSlowdown:
    def test_disk_factor_stretches_service_time(self):
        fast = make_cluster(**SHAPE).slaves[0].disk
        slow = make_cluster(**SHAPE).slaves[0].disk
        slow.slow_factor = 2.0
        assert slow.read(0.0, 1 << 20) == 2.0 * fast.read(0.0, 1 << 20)
        assert slow.write(10.0, 1 << 20) - 10.0 == pytest.approx(
            2.0 * (fast.write(10.0, 1 << 20) - 10.0)
        )

    def test_nic_factor_divides_bandwidth(self):
        node = make_cluster(**SHAPE).slaves[0]
        nominal = node.nic.effective_bandwidth
        node.nic.slow_factor = 4.0
        assert node.nic.effective_bandwidth == nominal / 4.0

    def test_cpu_factor_stretches_wall_time(self):
        fast = make_cluster(**SHAPE).slaves[0]
        slow = make_cluster(**SHAPE).slaves[0]
        slow.slow_factor = 3.0
        assert slow.cpu_time(0.5) == 3.0 * fast.cpu_time(0.5)

    def test_unit_factor_is_exactly_the_healthy_path(self):
        """factor == 1.0 must not perturb a single bit of timing."""
        healthy = make_cluster(**SHAPE).slaves[0]
        unit = make_cluster(**SHAPE).slaves[0]
        unit.slow_factor = 1.0
        unit.disk.slow_factor = 1.0
        unit.nic.slow_factor = 1.0
        assert unit.cpu_time(0.37) == healthy.cpu_time(0.37)
        assert unit.disk.read(0.0, 12345) == healthy.disk.read(0.0, 12345)
        assert unit.nic.effective_bandwidth == healthy.nic.effective_bandwidth


# -- solo runs through FaultyCluster -------------------------------------------


class TestSoloFailSlow:
    def test_limping_node_slows_but_never_corrupts(self):
        plain = workload("WordCount").run(
            scale=0.05, cluster=make_cluster(**SHAPE)
        )
        limping = workload("WordCount").run(
            scale=0.05,
            cluster=FaultyCluster(
                make_cluster(**SHAPE),
                FaultPlan(limping_nodes=(("slave3", 3.0),), seed=0),
            ),
        )
        assert repr(limping.output) == repr(plain.output)
        assert limping.duration_s > plain.duration_s

    def test_unit_factor_run_is_bit_identical(self):
        """Observational freedom: a 1.0 'limp' is no injection at all."""
        plain = workload("WordCount").run(
            scale=0.05, cluster=make_cluster(**SHAPE)
        )
        unit = workload("WordCount").run(
            scale=0.05,
            cluster=FaultyCluster(
                make_cluster(**SHAPE),
                FaultPlan(limping_nodes=(("slave3", 1.0),), seed=0),
            ),
        )
        assert repr(unit.output) == repr(plain.output)
        assert unit.duration_s == plain.duration_s

    def test_fault_free_overload_counters_stay_zero(self):
        cluster = make_cluster(**SHAPE)
        workload("WordCount").run(scale=0.05, cluster=cluster)
        for node in cluster.slaves:
            assert node.procfs.render_overload() == (
                f"{node.name}: requests_shed 0 deadline_kills 0 "
                f"speculative_wins 0"
            )


# -- mixes: observational freedom ----------------------------------------------


class TestMixObservationalFreedom:
    def test_unit_factor_plan_changes_nothing(self):
        """The detection/speculation machinery must be invisible until a
        node actually limps: same outputs, same timings, empty accounting."""
        trace = small_trace()
        free = run_mix(trace, FifoScheduler(), **SHAPE)
        unit = run_mix(
            trace,
            FifoScheduler(),
            plan=FaultPlan(limping_nodes=(("slave3", 1.0),), seed=0),
            **SHAPE,
        )
        assert repr(unit.outputs) == repr(free.outputs)
        assert [r.turnaround_s for r in unit.reports] == [
            r.turnaround_s for r in free.reports
        ]
        accounting = unit.outcome.fault_accounting
        assert accounting.limping_nodes == ()
        assert accounting.stragglers_detected == ()
        assert accounting.speculative_attempts == 0
        assert unit.outcome.fenced_attempts == 0

    def test_unknown_limping_node_is_rejected_by_run_mix(self):
        with pytest.raises(ValueError):
            run_mix(
                small_trace(),
                FifoScheduler(),
                plan=FaultPlan(limping_nodes=(("slave9", 2.0),)),
                **SHAPE,
            )


# -- the chaos matrix ----------------------------------------------------------


class TestFailSlowChaosMatrix:
    @pytest.mark.parametrize("scheduler", ["fifo", "fair"])
    @pytest.mark.parametrize("kind", ["Sort", "WordCount", "PageRank"])
    def test_outputs_survive_and_losers_are_fenced(self, kind, scheduler):
        for seed in (0, 1, 2):
            result = run_fail_slow_chaos(kind, seed=seed, scheduler=scheduler)
            # limping is a performance fault, never a correctness fault
            assert result.identical_outputs, (kind, scheduler, seed)
            assert result.single_job_identical, (kind, scheduler, seed)
            # the injection really bit: the mix tail and the solo run
            # both stretched
            assert result.limping_slowdown > 1.5, (kind, scheduler, seed)
            assert result.single_job_slowdown > 1.0, (kind, scheduler, seed)
            # speculation raced the limping node and the fence kept
            # exactly one committed attempt per task
            assert result.stragglers_detected == (result.limping_node,)
            assert result.speculative_attempts > 0
            assert result.every_loser_fenced, (kind, scheduler, seed)

    @pytest.mark.parametrize("scheduler", ["fifo", "fair"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pinned_sort_recovery(self, scheduler, seed):
        """The headline mitigation claim, on the latency-bound Sort trace:
        a limping node more than doubles the mix p99, and speculative
        re-execution claws back most of the inflation.  (Short-task mixes
        are the classic counter-case — racing a backup costs more than the
        limp, which is why speculation is a policy, not a default-on
        win everywhere.)"""
        result = run_fail_slow_chaos("Sort", seed=seed, scheduler=scheduler)
        assert result.limping_slowdown > 2.0
        assert result.recovered_fraction > 0.5
        assert result.speculative_wins > 0
        assert result.speculative_losers_fenced > 0
        assert result.every_loser_fenced

    def test_chaos_parameters_are_validated(self):
        with pytest.raises(ValueError):
            run_fail_slow_chaos(jobs=0)
        with pytest.raises(ValueError):
            run_fail_slow_chaos(scheduler="capacity")
