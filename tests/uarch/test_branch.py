"""Tests for branch direction predictors, the BTB and the branch unit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.branch import (
    BRANCH_MISFETCH,
    BRANCH_MISPREDICT,
    BRANCH_OK,
    BimodalPredictor,
    BranchTargetBuffer,
    BranchUnit,
    GSharePredictor,
    TournamentPredictor,
    make_direction_predictor,
)
from repro.uarch.config import CoreConfig


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x400, True)
        assert p.predict(0x400) is True

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x400, False)
        assert p.predict(0x400) is False

    def test_counters_saturate(self):
        p = BimodalPredictor(64)
        for _ in range(100):
            p.update(0x400, True)
        # One contrary outcome must not flip a saturated counter.
        p.update(0x400, False)
        assert p.predict(0x400) is True

    def test_alternating_pattern_defeats_bimodal(self):
        p = BimodalPredictor(64)
        wrong = 0
        outcome = True
        for _ in range(200):
            if p.predict(0x400) != outcome:
                wrong += 1
            p.update(0x400, outcome)
            outcome = not outcome
        assert wrong > 80  # bimodal cannot learn strict alternation

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(60)


class TestGShare:
    def test_learns_alternating_pattern(self):
        p = GSharePredictor(1024, history_bits=8)
        wrong = 0
        outcome = True
        for i in range(400):
            if p.predict(0x400) != outcome:
                wrong += 1
            p.update(0x400, outcome)
            outcome = not outcome
        # After warmup, global history disambiguates the alternation.
        assert wrong < 40

    def test_learns_short_loop_pattern(self):
        # T T T N repeating (trip count 4) — learnable with history.
        p = GSharePredictor(4096, history_bits=12)
        pattern = [True, True, True, False]
        wrong = 0
        for i in range(800):
            outcome = pattern[i % 4]
            if i > 400 and p.predict(0x400) != outcome:
                wrong += 1
            p.update(0x400, outcome)
        assert wrong < 20

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            GSharePredictor(64, history_bits=0)


class TestTournament:
    def test_beats_or_matches_bimodal_on_alternation(self):
        bi = BimodalPredictor(1024)
        tour = TournamentPredictor(1024)
        wrong_bi = wrong_tour = 0
        outcome = True
        for _ in range(600):
            if bi.predict(0x40) != outcome:
                wrong_bi += 1
            if tour.predict(0x40) != outcome:
                wrong_tour += 1
            bi.update(0x40, outcome)
            tour.update(0x40, outcome)
            outcome = not outcome
        assert wrong_tour < wrong_bi

    def test_matches_bimodal_on_biased_branch(self):
        tour = TournamentPredictor(1024)
        wrong = 0
        for i in range(500):
            if i > 50 and tour.predict(0x80) is not True:
                wrong += 1
            tour.update(0x80, True)
        assert wrong == 0


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("bimodal", BimodalPredictor),
            ("gshare", GSharePredictor),
            ("tournament", TournamentPredictor),
        ],
    )
    def test_factory_dispatch(self, kind, cls):
        assert isinstance(make_direction_predictor(kind, 64), cls)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_direction_predictor("perceptron", 64)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x400) is None
        btb.install(0x400, 0x800)
        assert btb.lookup(0x400) == 0x800

    def test_reinstall_updates_target(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(0x400, 0x800)
        btb.install(0x400, 0x900)
        assert btb.lookup(0x400) == 0x900

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(4, 2)  # 2 sets
        stride = 2 * 4  # same set (pc >> 2 indexing)
        btb.install(0, 100)
        btb.install(stride * 4, 200)
        btb.install(2 * stride * 4, 300)
        assert btb.lookup(0) is None  # LRU evicted

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 3)

    @given(st.lists(st.tuples(st.integers(0, 1 << 16), st.integers(0, 1 << 16)), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, pairs):
        btb = BranchTargetBuffer(16, 2)
        for pc, tgt in pairs:
            btb.install(pc, tgt)
        for ways in btb._sets:
            assert len(ways) <= btb.ways


class TestBranchUnit:
    def make(self, predictor="gshare") -> BranchUnit:
        return BranchUnit(CoreConfig(predictor=predictor))

    def test_steady_taken_branch_becomes_ok(self):
        unit = self.make()
        outcomes = [unit.resolve(0x400, True, 0x800) for _ in range(50)]
        assert outcomes[-1] == BRANCH_OK
        assert unit.mispredictions < 5

    def test_cold_taken_branch_is_misfetch_not_mispredict(self):
        unit = self.make()
        # Fresh taken branch with correct (default weakly-taken) direction:
        # the BTB has no target → misfetch.
        outcome = unit.resolve(0x400, True, 0x800)
        assert outcome == BRANCH_MISFETCH
        assert unit.mispredictions == 0
        assert unit.misfetches == 1

    def test_wrong_direction_is_mispredict(self):
        unit = self.make()
        for _ in range(10):
            unit.resolve(0x400, True, 0x800)
        before = unit.mispredictions
        assert unit.resolve(0x400, False, 0) == BRANCH_MISPREDICT
        assert unit.mispredictions == before + 1

    def test_indirect_target_change_is_mispredict(self):
        unit = self.make()
        for _ in range(10):
            unit.resolve(0x400, True, 0x800)
        assert unit.resolve(0x400, True, 0x900) == BRANCH_MISPREDICT

    def test_misprediction_ratio(self):
        unit = self.make()
        assert unit.misprediction_ratio() == 0.0
        for _ in range(10):
            unit.resolve(0x400, True, 0x800)
        assert 0.0 <= unit.misprediction_ratio() <= 1.0
        assert unit.branches == 10

    def test_reset_counters(self):
        unit = self.make()
        unit.resolve(0x400, True, 0x800)
        unit.reset_counters()
        assert unit.branches == 0
        assert unit.misfetches == 0

    def test_regular_loop_predicted_well_by_gshare(self):
        unit = self.make("gshare")
        # trip-count-4 loop: T T T N
        for i in range(100):
            taken = (i % 4) != 3
            unit.resolve(0x400, taken, 0x300 if taken else 0x404)
        unit.reset_counters()
        for i in range(400):
            taken = (i % 4) != 3
            unit.resolve(0x400, taken, 0x300 if taken else 0x404)
        assert unit.misprediction_ratio() < 0.05
