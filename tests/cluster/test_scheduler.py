"""Tests for the multi-tenant scheduling subsystem.

The load-bearing contract is backward compatibility: a single job
submitted to a :class:`MultiJobCluster` under the FIFO scheduler must
replay the *exact* primitive-charge sequence of the stock
``HadoopCluster.run_job`` — bit-identical timeline, ``/proc`` counters
(including the sample stream), cluster clock and network totals.  On
top of that sit the policy tests: FIFO ordering, fair sharing with
min-share preemption, capacity queues with user limits, and the
idle-cluster guard.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import (
    JobWork,
    MapWork,
    ReduceWork,
    StaleClusterError,
    make_cluster,
)
from repro.cluster.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    MultiJobCluster,
    PoolConfig,
    QueueConfig,
    jain_index,
    make_scheduler,
)
from repro.workloads import workload


def procfs_state(cluster):
    """Every observable /proc variable of every slave, samples included."""
    out = []
    for node in cluster.slaves:
        proc = node.procfs
        out.append(
            (
                {k: v for k, v in vars(proc).items() if k != "samples"},
                list(proc.samples),
            )
        )
    return out


def small_cluster():
    return make_cluster(2, map_slots=4, reduce_slots=2, block_size=64 * 1024)


def synthetic_job(name, n_maps=2, cpu=0.05, n_reduces=1):
    return JobWork(
        name,
        maps=[MapWork(1024, cpu, 1024) for _ in range(n_maps)],
        reduces=[ReduceWork(1024, cpu, 1024) for _ in range(n_reduces)],
    )


# -- fairness metric -----------------------------------------------------------


class TestJainIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == 1.0

    def test_empty_and_all_zero_degenerate_to_one(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_one_hog_drives_the_index_toward_one_over_n(self):
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])


# -- configuration validation --------------------------------------------------


class TestConfigs:
    def test_pool_rejects_bad_weight_and_min_share(self):
        with pytest.raises(ValueError):
            PoolConfig("p", weight=0.0)
        with pytest.raises(ValueError):
            PoolConfig("p", min_share=-1)

    def test_queue_capacity_must_be_a_positive_fraction(self):
        with pytest.raises(ValueError):
            QueueConfig("q", capacity=0.0)
        with pytest.raises(ValueError):
            QueueConfig("q", capacity=1.5)
        with pytest.raises(ValueError):
            QueueConfig("q", user_limit=0.0)

    def test_duplicate_pool_and_queue_names_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(pools=[PoolConfig("a"), PoolConfig("a")])
        with pytest.raises(ValueError):
            CapacityScheduler(queues=[QueueConfig("a"), QueueConfig("a")])

    def test_make_scheduler_by_name(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("fair"), FairScheduler)
        assert isinstance(make_scheduler("capacity"), CapacityScheduler)
        with pytest.raises(ValueError):
            make_scheduler("deadline")


# -- the backward-compat invariant ---------------------------------------------


class TestSingleJobFifoParity:
    @pytest.mark.parametrize("name", ["WordCount", "Sort", "Grep"])
    def test_real_workload_is_bit_identical_to_stock(self, name):
        stock = make_cluster(4)
        run = workload(name).run(0.2, cluster=stock)

        fresh = make_cluster(4)
        multi = MultiJobCluster(fresh, FifoScheduler())
        previous = None
        for work in (r.work for r in run.job_results):
            previous = multi.submit(work, after=previous)
        outcome = multi.run()

        assert [r.timeline for r in outcome.reports] == run.timelines
        assert procfs_state(fresh) == procfs_state(stock)
        assert fresh.clock == stock.clock
        assert fresh.network.bytes_moved == stock.network.bytes_moved
        assert fresh.network.transfers == stock.network.transfers

    @given(
        maps=st.lists(
            st.tuples(
                st.integers(0, 64 * 1024),  # input bytes
                st.floats(0.0, 0.2, allow_nan=False),  # cpu seconds
                st.integers(0, 64 * 1024),  # output bytes
                st.sampled_from([(), ("slave1",), ("slave2",)]),
            ),
            min_size=1,
            max_size=6,
        ),
        reduces=st.lists(
            st.tuples(
                st.integers(0, 64 * 1024),
                st.floats(0.0, 0.2, allow_nan=False),
                st.integers(0, 64 * 1024),
            ),
            max_size=3,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_job_is_bit_identical_to_stock(self, maps, reduces):
        work = JobWork(
            "prop",
            maps=[MapWork(i, c, o, preferred_nodes=p) for i, c, o, p in maps],
            reduces=[ReduceWork(s, c, o) for s, c, o in reduces],
        )
        stock = small_cluster()
        timeline = stock.run_job(work)

        fresh = small_cluster()
        multi = MultiJobCluster(fresh, FifoScheduler())
        multi.submit(work)
        outcome = multi.run()

        assert outcome.reports[0].timeline == timeline
        assert procfs_state(fresh) == procfs_state(stock)
        assert fresh.clock == stock.clock
        assert fresh.network.bytes_moved == stock.network.bytes_moved


# -- FIFO ----------------------------------------------------------------------


class TestFifoScheduler:
    def test_jobs_launch_in_arrival_order(self):
        multi = MultiJobCluster(small_cluster(), FifoScheduler())
        multi.submit(synthetic_job("b"), arrival_s=0.2, job_id="late")
        multi.submit(synthetic_job("a"), arrival_s=0.1, job_id="early")
        outcome = multi.run()
        early, late = outcome.report("early"), outcome.report("late")
        assert early.first_launch_s <= late.first_launch_s

    def test_ties_break_by_submission_sequence(self):
        multi = MultiJobCluster(small_cluster(), FifoScheduler())
        multi.submit(synthetic_job("first", n_maps=8), job_id="first")
        multi.submit(synthetic_job("second", n_maps=8), job_id="second")
        outcome = multi.run()
        assert (
            outcome.report("first").first_launch_s
            <= outcome.report("second").first_launch_s
        )

    def test_mix_is_deterministic(self):
        def play():
            multi = MultiJobCluster(small_cluster(), FifoScheduler())
            multi.submit(synthetic_job("a", n_maps=6), arrival_s=0.0)
            multi.submit(synthetic_job("b", n_maps=3), arrival_s=0.05)
            return multi.run().to_dict()

        assert play() == play()


# -- Fair ----------------------------------------------------------------------


def elephant(name="elephant", n_maps=6, cpu=0.5):
    return JobWork(name, maps=[MapWork(1024, cpu, 1024) for _ in range(n_maps)])


def mouse(name="mouse"):
    return JobWork(name, maps=[MapWork(1024, 0.05, 1024)])


class TestFairScheduler:
    def pools(self, min_share=1):
        return [PoolConfig("batch"), PoolConfig("interactive", min_share=min_share)]

    def test_small_pool_overtakes_a_queued_elephant(self):
        """Under FIFO the mouse waits behind every elephant map; the fair
        scheduler hands it a slot as soon as one frees."""

        def launch_of(scheduler):
            multi = MultiJobCluster(small_cluster(), scheduler)
            multi.submit(elephant(n_maps=16), pool="batch", user="bo")
            multi.submit(mouse(), arrival_s=0.05, pool="interactive", user="ada")
            return multi.run().report("job-0001").first_launch_s

        assert launch_of(
            FairScheduler(pools=self.pools(), preemption=False)
        ) < launch_of(FifoScheduler())

    def test_delay_s_overrides_the_cluster_locality_wait(self):
        cluster = small_cluster()
        assert FairScheduler(delay_s=0.25).locality_wait_s(cluster) == 0.25
        assert (
            FairScheduler().locality_wait_s(cluster) == cluster.locality_wait_s
        )

    def test_preemption_frees_a_slot_at_the_min_share_deadline(self):
        cluster = make_cluster(1, map_slots=2, reduce_slots=1, block_size=64 * 1024)
        scheduler = FairScheduler(
            pools=self.pools(),
            preemption=True,
            min_share_timeout_s=0.2,
            fair_share_timeout_s=10.0,
        )
        multi = MultiJobCluster(cluster, scheduler)
        multi.submit(elephant(), pool="batch", user="bo")
        multi.submit(mouse(), arrival_s=0.1, pool="interactive", user="ada")
        outcome = multi.run()

        assert outcome.preemptions == 1
        assert outcome.preemption_wasted_s > 0
        # the mouse is granted its slot at arrival + min-share timeout,
        # not at the elephant's next natural map completion
        assert outcome.report("job-0001").first_launch_s == pytest.approx(0.3)
        assert outcome.report("job-0000").preempted == 1
        # the killed attempt is requeued and the elephant still finishes
        assert outcome.report("job-0000").finished_s is not None
        assert cluster.slaves[0].procfs.tasks_killed == 1
        assert cluster.slaves[0].procfs.tasks_preempted == 1

    def test_preemption_off_waits_for_a_natural_slot(self):
        cluster = make_cluster(1, map_slots=2, reduce_slots=1, block_size=64 * 1024)
        multi = MultiJobCluster(
            cluster, FairScheduler(pools=self.pools(), preemption=False)
        )
        multi.submit(elephant(), pool="batch", user="bo")
        multi.submit(mouse(), arrival_s=0.1, pool="interactive", user="ada")
        outcome = multi.run()
        assert outcome.preemptions == 0
        assert outcome.report("job-0001").first_launch_s > 0.3

    def test_preemption_timeouts_must_be_positive(self):
        with pytest.raises(ValueError):
            FairScheduler(min_share_timeout_s=0.0)
        with pytest.raises(ValueError):
            FairScheduler(delay_s=-1.0)


# -- Capacity ------------------------------------------------------------------


class TestCapacityScheduler:
    def test_user_limit_caps_one_user_while_others_wait(self):
        """With user_limit=0.5 of a whole-cluster queue, ada cannot take
        more than half the slots of the first wave while bo has demand."""
        cluster = small_cluster()  # 8 map slots
        scheduler = CapacityScheduler(
            queues=[QueueConfig("q", capacity=1.0, user_limit=0.5)]
        )
        multi = MultiJobCluster(cluster, scheduler)
        multi.submit(elephant("ada-1", n_maps=12), pool="q", user="ada")
        multi.submit(elephant("bo-1", n_maps=4), pool="q", user="bo")
        outcome = multi.run()
        # bo gets slots in the very first wave even though ada was first
        assert outcome.report("job-0001").first_launch_s == 0.0
        first_wave = [
            iv for iv in outcome.task_intervals if iv.start_s == 0.0
        ]
        ada_share = sum(1 for iv in first_wave if iv.job_id == "job-0000")
        assert ada_share == 4
        assert len(first_wave) == 8

    def test_single_user_queue_falls_back_instead_of_deadlocking(self):
        cluster = small_cluster()
        scheduler = CapacityScheduler(
            queues=[QueueConfig("q", capacity=0.25, user_limit=0.25)]
        )
        multi = MultiJobCluster(cluster, scheduler)
        multi.submit(elephant("only", n_maps=6), pool="q", user="ada")
        outcome = multi.run()  # must not raise "mix deadlocked"
        assert outcome.report("job-0000").finished_s is not None

    def test_idle_capacity_is_elastic(self):
        """A queue may exceed its capacity when no other queue has demand."""
        cluster = small_cluster()  # 8 map slots; q gets 2 of them nominally
        scheduler = CapacityScheduler(
            queues=[QueueConfig("q", capacity=0.25), QueueConfig("idle", capacity=0.75)]
        )
        multi = MultiJobCluster(cluster, scheduler)
        multi.submit(elephant("burst", n_maps=8, cpu=0.3), pool="q", user="ada")
        outcome = multi.run()
        assert outcome.peak_concurrency() > 2


# -- submission validation and the idle-cluster guard --------------------------


class TestSubmissionValidation:
    def test_duplicate_job_id_rejected(self):
        multi = MultiJobCluster(small_cluster())
        multi.submit(synthetic_job("a"), job_id="dup")
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("b"), job_id="dup")

    def test_auto_ids_are_unique_and_deterministic(self):
        multi = MultiJobCluster(small_cluster())
        ids = [multi.submit(synthetic_job(f"j{i}")).job_id for i in range(3)]
        assert ids == ["job-0000", "job-0001", "job-0002"]

    def test_bad_arrival_user_and_pool_rejected(self):
        multi = MultiJobCluster(small_cluster())
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("a"), arrival_s=-1.0)
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("a"), arrival_s=float("nan"))
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("a"), user="  ")
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("a"), pool="")

    def test_dependency_must_be_a_submitted_job(self):
        multi = MultiJobCluster(small_cluster())
        other = MultiJobCluster(small_cluster())
        foreign = other.submit(synthetic_job("x"))
        with pytest.raises(ValueError):
            multi.submit(synthetic_job("a"), after=foreign)

    def test_submit_after_run_rejected(self):
        multi = MultiJobCluster(small_cluster())
        multi.submit(synthetic_job("a"))
        multi.run()
        with pytest.raises(RuntimeError):
            multi.submit(synthetic_job("b"))
        with pytest.raises(RuntimeError):
            multi.run()

    def test_job_work_requires_a_name(self):
        with pytest.raises(ValueError):
            JobWork("", maps=[MapWork(0, 0.0, 0)])
        with pytest.raises(ValueError):
            JobWork("   ", maps=[MapWork(0, 0.0, 0)])


class TestStaleClusterGuard:
    def test_run_job_refuses_a_busy_cluster(self):
        cluster = small_cluster()
        cluster.slaves[0].map_slot_free[0] = cluster.clock + 5.0
        with pytest.raises(StaleClusterError):
            cluster.run_job(synthetic_job("a"))

    def test_stale_reduce_slot_also_caught(self):
        cluster = small_cluster()
        cluster.slaves[1].reduce_slot_free[0] = cluster.clock + 1.0
        with pytest.raises(StaleClusterError):
            cluster.run_job(synthetic_job("a"))

    def test_reset_restores_schedulability(self):
        cluster = small_cluster()
        cluster.slaves[0].map_slot_free[0] = cluster.clock + 5.0
        cluster.reset()
        cluster.run_job(synthetic_job("a"))  # must not raise

    def test_multi_job_cluster_checks_at_run(self):
        cluster = small_cluster()
        multi = MultiJobCluster(cluster)
        multi.submit(synthetic_job("a"))
        cluster.slaves[0].map_slot_free[0] = cluster.clock + 5.0
        with pytest.raises(StaleClusterError):
            multi.run()

    def test_consecutive_jobs_on_an_advanced_clock_still_fine(self):
        cluster = small_cluster()
        cluster.run_job(synthetic_job("a"))
        cluster.run_job(synthetic_job("b"))  # idle-at-clock is schedulable


# -- outcome accounting --------------------------------------------------------


class TestMixOutcome:
    def outcome(self):
        multi = MultiJobCluster(small_cluster(), FifoScheduler())
        multi.submit(synthetic_job("a", n_maps=4), pool="etl", user="ada")
        multi.submit(synthetic_job("b", n_maps=2), arrival_s=0.05, pool="ad-hoc")
        return multi.run()

    def test_reports_and_lookup(self):
        outcome = self.outcome()
        assert [r.job_id for r in outcome.reports] == ["job-0000", "job-0001"]
        assert outcome.report("job-0001").pool == "ad-hoc"
        with pytest.raises(KeyError):
            outcome.report("nope")

    def test_wait_and_turnaround_are_consistent(self):
        outcome = self.outcome()
        for report in outcome.reports:
            assert report.wait_s == pytest.approx(
                report.first_launch_s - report.arrival_s
            )
            assert report.turnaround_s >= report.wait_s

    def test_occupancy_series_counts_task_edges(self):
        outcome = self.outcome()
        series = outcome.occupancy_series()
        assert series, "expected at least one task edge"
        assert outcome.peak_concurrency() >= 1
        # occupancy is zero again after the last edge
        assert series[-1][1] == 0 and series[-1][2] == 0
        # per-node series never exceeds the whole-cluster peak
        assert outcome.peak_concurrency("slave1") <= outcome.peak_concurrency()

    def test_by_pool_groups_every_job(self):
        outcome = self.outcome()
        pools = outcome.by_pool()
        assert set(pools) == {"etl", "ad-hoc"}
        assert pools["etl"]["jobs"] == 1

    def test_to_dict_is_json_serializable(self):
        payload = json.loads(json.dumps(self.outcome().to_dict()))
        assert payload["scheduler"] == "fifo"
        assert len(payload["jobs"]) == 2
        assert payload["jobs"][0]["timeline"]["map_tasks"] == 4


# -- failure propagation through job dependencies ------------------------------


class TestFailurePropagation:
    """A permanently failed upstream must cancel its queued dependents.

    Regression for the pre-DAG dependency hole: a chained job whose
    upstream aborted used to sit in the mix forever (deadlock) or be
    dispatched against missing input.  Now the upstream is marked
    ``failed``, its transitive dependents are ``cancelled`` without ever
    launching a task, and independent jobs run to completion.
    """

    def build(self, engine):
        from repro.cluster.faults import FaultPlan

        cluster = small_cluster()
        # Both slaves die at t=0.2: the independent job (arrival 0) is
        # already done, the chain head (arrival 0.5) finds no live node.
        plan = FaultPlan(node_crashes=(("slave1", 0.2), ("slave2", 0.2)))
        multi = MultiJobCluster(cluster, FifoScheduler(), plan=plan)
        independent = multi.submit(synthetic_job("solo"), arrival_s=0.0)
        head = multi.submit(synthetic_job("head"), arrival_s=0.5)
        mid = multi.submit(synthetic_job("mid"), after=head, arrival_s=0.5)
        tail = multi.submit(synthetic_job("tail"), after=mid, arrival_s=0.5)
        outcome = multi.run(engine=engine, raise_on_failure=False)
        return independent, head, mid, tail, outcome

    @pytest.mark.parametrize("engine", ["events", "legacy"])
    def test_upstream_failure_cancels_the_whole_chain(self, engine):
        independent, head, mid, tail, outcome = self.build(engine)
        assert independent.status == "completed"
        assert head.status == "failed"
        assert mid.status == "cancelled"
        assert tail.status == "cancelled"
        assert outcome.failed_jobs == (head.job_id,)
        assert set(outcome.cancelled_jobs) == {mid.job_id, tail.job_id}

    @pytest.mark.parametrize("engine", ["events", "legacy"])
    def test_cancelled_jobs_never_dispatch(self, engine):
        _, _, mid, tail, outcome = self.build(engine)
        for job in (mid, tail):
            report = outcome.report(job.job_id)
            assert report.status == "cancelled"
            assert report.first_launch_s is None
            assert report.timeline is None
            assert report.wait_s is None

    @pytest.mark.parametrize("engine", ["events", "legacy"])
    def test_survivor_report_is_intact(self, engine):
        independent, _, _, _, outcome = self.build(engine)
        report = outcome.report(independent.job_id)
        assert report.status == "completed"
        assert report.timeline is not None
        assert report.turnaround_s is not None

    def test_raise_on_failure_raises_after_survivors_finish(self):
        from repro.cluster.attempts import JobFailedError
        from repro.cluster.faults import FaultPlan

        cluster = small_cluster()
        plan = FaultPlan(node_crashes=(("slave1", 0.2), ("slave2", 0.2)))
        multi = MultiJobCluster(cluster, FifoScheduler(), plan=plan)
        survivor = multi.submit(synthetic_job("solo"), arrival_s=0.0)
        multi.submit(synthetic_job("head"), arrival_s=0.5)
        with pytest.raises(JobFailedError):
            multi.run()
        assert survivor.status == "completed"

    def test_failure_events_ride_on_the_outcome(self):
        from repro.cluster.eventbus import (
            EVENT_JOB_CANCELLED,
            EVENT_JOB_FAILED,
        )

        _, head, mid, _, outcome = self.build("events")
        by_type = {}
        for event in outcome.events:
            by_type.setdefault(event.type, []).append(event.payload)
        assert [p["job_id"] for p in by_type[EVENT_JOB_FAILED]] == [head.job_id]
        cancelled = by_type[EVENT_JOB_CANCELLED]
        assert all(p["upstream"] == head.job_id for p in cancelled)
