"""Data-center cluster model.

The paper runs its workloads on a 5-node Hadoop cluster (one master, four
slaves; two Xeon E5645 per node, 1 GbE interconnect, 24 map / 12 reduce
slots per slave).  This package models that substrate at the level the
paper measures it:

* :mod:`repro.cluster.disk` — disk devices with bandwidth and per-operation
  accounting into the simulated ``/proc`` (Figure 5's disk writes/s);
* :mod:`repro.cluster.network` — 1 GbE NICs with serialised transfers
  (optionally two-tier: per-rack ToR switches over an oversubscribed core);
* :mod:`repro.cluster.topology` — the failure-domain map (nodes → racks)
  behind rack-aware placement, rack-local scheduling and rack-level faults;
* :mod:`repro.cluster.node` — a node bundling slots, disk, NIC;
* :mod:`repro.cluster.hdfs` — block placement with replication, locality
  queries, datanode loss and background re-replication, plus end-to-end
  CRC32 checksums, bad-block reporting and the DataBlockScanner scrubber;
* :mod:`repro.cluster.cluster` — the cluster itself plus the discrete-event
  timeline executor for MapReduce jobs (map waves, shuffle, reduce);
* :mod:`repro.cluster.attempts` — the task-attempt state machine
  (retries, backoff, blacklisting, typed job aborts);
* :mod:`repro.cluster.journal` — the control plane's durable state: the
  namenode's edit log + fsimage checkpoints (``replay`` rebuilds the
  namespace exactly) and the jobtracker's job-history journal;
* :mod:`repro.cluster.faults` — the resilience scheduler: task/node/
  shuffle/replica/master fault injection with Hadoop-1.x countermeasures;
* :mod:`repro.cluster.chaos` — seeded chaos schedules over real workload
  runs, asserting outputs survive every fault class (including losing
  the master mid-job under both recovery modes);
* :mod:`repro.cluster.scheduler` — multi-tenant job scheduling: pluggable
  FIFO / Fair (pools, delay scheduling, preemption) / Capacity schedulers
  and the :class:`MultiJobCluster` that interleaves many jobs over the
  shared slot/disk/network/HDFS models;
* :mod:`repro.cluster.tenancy` — trace-driven workload mixes: seeded
  Poisson arrivals over a heavy-tailed job-size distribution, named
  users/pools, fairness metrics, and shared-LLC co-location reports;
* :mod:`repro.cluster.serve` — open-loop service traffic: seeded
  Poisson/diurnal/bursty arrivals over a server bank with graceful
  degradation (admission control, load shedding, deadlines, bounded
  retries) and p50/p95/p99/p999 latency reporting;
* :mod:`repro.cluster.eventbus` — the deterministic typed event bus the
  multi-job dispatch loop and the workflow orchestrator publish to,
  with a replayable delivery log;
* :mod:`repro.cluster.workflow` — event-driven DAG workflows over the
  multi-job cluster: stages with data dependencies (HDFS paths),
  bounded stage retries, lineage-based recomputation after total
  replica loss, downstream-cone failure propagation, and journal
  checkpoints a restarted JobTracker resumes from.
"""

from repro.cluster.disk import Disk
from repro.cluster.network import Network, Nic
from repro.cluster.topology import Topology
from repro.cluster.node import Node
from repro.cluster.hdfs import (
    Block,
    ChecksumError,
    DataBlockScanner,
    Hdfs,
    HdfsFile,
)
from repro.cluster.cluster import (
    ClusterCheckpoint,
    HadoopCluster,
    JobTimeline,
    JobWork,
    MapWork,
    NodeCheckpoint,
    ReduceWork,
    StaleClusterError,
    make_cluster,
)
from repro.cluster.journal import (
    EditLog,
    EditOp,
    FsImage,
    JobHistoryEvent,
    JobHistoryJournal,
    NameNodeJournal,
    replay,
    restore_into,
    snapshot,
)
from repro.cluster.attempts import (
    AttemptState,
    CommitFence,
    DataLossError,
    JobFailedError,
    NodeBlacklist,
    NodeGraylist,
    RetryPolicy,
    TaskAttempt,
    TaskAttempts,
)
from repro.cluster.faults import FaultPlan, FaultyCluster, FaultyTimeline
from repro.cluster.chaos import (
    ChaosResult,
    FailSlowChaosResult,
    IntegrityChaosResult,
    MasterCrashResult,
    OverloadChaosResult,
    RackChaosResult,
    chaos_plan,
    integrity_chaos_plan,
    run_chaos,
    run_fail_slow_chaos,
    run_integrity_chaos,
    run_master_crash_chaos,
    run_overload_chaos,
    run_rack_chaos,
)
from repro.cluster.serve import (
    ArrivalProcess,
    RequestClass,
    RequestRecord,
    ServePolicy,
    ServeReport,
    default_request_classes,
    percentile,
    request_classes_from_trace,
    run_service,
)
from repro.cluster.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    JobReport,
    MixFaultAccounting,
    MixOutcome,
    MultiJobCluster,
    PoolConfig,
    QueueConfig,
    Scheduler,
    jain_index,
    make_scheduler,
)
from repro.cluster.eventbus import (
    EVENT_TYPES,
    Event,
    EventBus,
)
from repro.cluster.eventbus import replay as replay_events
from repro.cluster.workflow import (
    Stage,
    StagePolicy,
    StageReport,
    Workflow,
    WorkflowAccounting,
    WorkflowCheckpoint,
    WorkflowFaultPlan,
    WorkflowResult,
    WorkflowRunner,
    build_workflow,
    diamond_workflow,
    hive_chain_workflow,
    kmeans_workflow,
    pagerank_workflow,
    workflow_from_chain,
    WORKFLOW_DAGS,
)
from repro.cluster.journal import WorkflowJournal, WorkflowStageRecord
from repro.cluster.chaos import WorkflowChaosResult, run_workflow_chaos
from repro.cluster.tenancy import (
    ColocationReport,
    MixResult,
    TenantJobReport,
    TraceJob,
    WorkloadTrace,
    characterize_colocation,
    default_pools,
    default_queues,
    generate_trace,
    run_mix,
)

__all__ = [
    "Disk",
    "Network",
    "Nic",
    "Node",
    "Topology",
    "Hdfs",
    "HdfsFile",
    "Block",
    "ChecksumError",
    "DataBlockScanner",
    "ClusterCheckpoint",
    "HadoopCluster",
    "JobTimeline",
    "JobWork",
    "MapWork",
    "NodeCheckpoint",
    "ReduceWork",
    "StaleClusterError",
    "make_cluster",
    "EditLog",
    "EditOp",
    "FsImage",
    "JobHistoryEvent",
    "JobHistoryJournal",
    "NameNodeJournal",
    "replay",
    "restore_into",
    "snapshot",
    "AttemptState",
    "CommitFence",
    "DataLossError",
    "JobFailedError",
    "NodeBlacklist",
    "NodeGraylist",
    "RetryPolicy",
    "TaskAttempt",
    "TaskAttempts",
    "FaultPlan",
    "FaultyCluster",
    "FaultyTimeline",
    "ChaosResult",
    "FailSlowChaosResult",
    "IntegrityChaosResult",
    "MasterCrashResult",
    "OverloadChaosResult",
    "RackChaosResult",
    "chaos_plan",
    "integrity_chaos_plan",
    "run_chaos",
    "run_fail_slow_chaos",
    "run_integrity_chaos",
    "run_master_crash_chaos",
    "run_overload_chaos",
    "run_rack_chaos",
    "ArrivalProcess",
    "RequestClass",
    "RequestRecord",
    "ServePolicy",
    "ServeReport",
    "default_request_classes",
    "percentile",
    "request_classes_from_trace",
    "run_service",
    "Scheduler",
    "FifoScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "PoolConfig",
    "QueueConfig",
    "jain_index",
    "make_scheduler",
    "JobReport",
    "MixFaultAccounting",
    "MixOutcome",
    "MultiJobCluster",
    "TraceJob",
    "WorkloadTrace",
    "generate_trace",
    "default_pools",
    "default_queues",
    "TenantJobReport",
    "MixResult",
    "run_mix",
    "ColocationReport",
    "characterize_colocation",
    "Event",
    "EventBus",
    "EVENT_TYPES",
    "replay_events",
    "Stage",
    "StagePolicy",
    "StageReport",
    "Workflow",
    "WorkflowAccounting",
    "WorkflowCheckpoint",
    "WorkflowFaultPlan",
    "WorkflowResult",
    "WorkflowRunner",
    "WorkflowJournal",
    "WorkflowStageRecord",
    "WorkflowChaosResult",
    "run_workflow_chaos",
    "build_workflow",
    "workflow_from_chain",
    "hive_chain_workflow",
    "kmeans_workflow",
    "pagerank_workflow",
    "diamond_workflow",
    "WORKFLOW_DAGS",
]
