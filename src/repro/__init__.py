"""repro — reproduction of *Characterizing Data Analysis Workloads in Data
Centers* (Jia et al., IISWC 2013).

The package rebuilds the paper's full measurement stack in Python:

* :mod:`repro.uarch` — a trace-driven out-of-order core simulator with the
  performance counters the paper reads via ``perf``;
* :mod:`repro.perf` — a perf-style event/session layer plus a simulated
  ``/proc`` for OS-level statistics;
* :mod:`repro.cluster` / :mod:`repro.mapreduce` / :mod:`repro.hive` — the
  Hadoop-like substrate the workloads run on;
* :mod:`repro.workloads` — the paper's eleven data-analysis workloads;
* :mod:`repro.comparisons` — SPEC CPU2006 / HPCC / SPECweb2005 / CloudSuite
  proxies;
* :mod:`repro.core` — the characterization framework (DCBench) tying it
  together;
* :mod:`repro.analysis` — the Figure 1 domain study and Figure 2 speedup
  study.

Quickstart::

    from repro.core import DCBench, characterize
    suite = DCBench.default()
    result = characterize(suite.entry("WordCount"))
    print(result.metrics.ipc)
"""

__version__ = "1.0.0"
