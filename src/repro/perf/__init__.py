"""Perf-style measurement layer.

The paper drives Westmere performance-monitoring MSRs through Linux
``perf`` and samples ``/proc`` for OS-level statistics.  This package
reproduces that interface over the simulator:

* :mod:`repro.perf.events` — the symbolic event catalogue (event number +
  umask, as in the Intel SDM) with accessors into a
  :class:`~repro.uarch.pipeline.SimulationResult`;
* :mod:`repro.perf.session` — a ``PerfSession`` that "programs" a set of
  events, runs a trace on a core, and reads back the counts;
* :mod:`repro.perf.procfs` — a simulated ``/proc`` exposing the cluster's
  disk and network activity (the paper's disk-writes-per-second data).
"""

from repro.perf.events import EVENT_CATALOG, PerfEvent, lookup_event
from repro.perf.session import PerfReading, PerfSession
from repro.perf.procfs import ProcFs

__all__ = [
    "EVENT_CATALOG",
    "PerfEvent",
    "lookup_event",
    "PerfReading",
    "PerfSession",
    "ProcFs",
]
