"""Ablation: out-of-order window sizing (RS/ROB).

Figure 6 shows the data-analysis workloads stalling on RS-full and
ROB-full — the out-of-order part of the pipeline — while the services
stall before it.  Consequently, growing the window should help the
data-analysis workloads far more than the services.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine

DA = ["SVM", "PageRank"]
SERVICES = ["Web Serving"]

#: (rs_entries, rob_entries): half, Table III-era, double.
WINDOWS = ((18, 64), (36, 128), (72, 256))


def test_window_sizes(benchmark):
    suite = DCBench.default()
    base = scaled_machine(8)

    def harness():
        results: dict[str, dict[tuple[int, int], float]] = {}
        for name in DA + SERVICES:
            entry = suite.entry(name)
            per_window = {}
            for rs, rob in WINDOWS:
                machine = replace(
                    base, core=replace(base.core, rs_entries=rs, rob_entries=rob)
                )
                c = characterize(entry, instructions=120_000, machine=machine)
                per_window[(rs, rob)] = c.metrics.ipc
            results[name] = per_window
        return results

    results = run_once(benchmark, harness)
    print()
    print("Ablation: IPC versus out-of-order window size")
    print(f"{'workload':<14s}" + "".join(f"  rs={rs:<3d}rob={rob:<4d}" for rs, rob in WINDOWS))
    for name, per_window in results.items():
        print(f"{name:<14s}" + "".join(f"{per_window[w]:>14.3f}" for w in WINDOWS))

    def gain(name):
        small = results[name][WINDOWS[0]]
        big = results[name][WINDOWS[-1]]
        return (big - small) / small

    da_gain = sum(gain(n) for n in DA) / len(DA)
    svc_gain = sum(gain(n) for n in SERVICES) / len(SERVICES)
    # The OoO-bound data-analysis workloads profit more from a 4x window;
    # the front-end-bound services barely notice (their bottleneck is
    # before dispatch, exactly as Figure 6 predicts).
    assert da_gain > svc_gain
    assert da_gain > 0.02
    # IPC is monotone in window size for the DA workloads.
    for name in DA:
        ipcs = [results[name][w] for w in WINDOWS]
        assert ipcs[0] <= ipcs[1] + 0.02 and ipcs[1] <= ipcs[2] + 0.02
