"""Tests for the CSV/JSON exports and the command-line interface."""

import csv
import io
import json

import pytest

from repro.__main__ import build_parser, main
from repro.core import DCBench, characterize
from repro.core.export import (
    COLUMNS,
    MIX_COLUMNS,
    TIMELINE_COLUMNS,
    mix_to_csv,
    mix_to_json,
    mix_to_rows,
    timelines_to_csv,
    timelines_to_json,
    timelines_to_rows,
    to_csv,
    to_json,
)


@pytest.fixture(scope="module")
def chars():
    suite = DCBench.default()
    return [
        characterize(suite.entry(name), instructions=20_000)
        for name in ("WordCount", "SPECWeb")
    ]


class TestExports:
    def test_csv_roundtrip(self, chars):
        text = to_csv(chars)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["workload"] == "WordCount"
        assert set(rows[0]) == set(COLUMNS)
        assert float(rows[0]["ipc"]) > 0

    def test_json_roundtrip(self, chars):
        data = json.loads(to_json(chars))
        assert [row["workload"] for row in data] == ["WordCount", "SPECWeb"]
        assert data[1]["group"] == "service"
        stall_total = sum(data[0][f"stall_{c}"] for c in
                          ("fetch", "rat", "load", "rs_full", "store", "rob_full"))
        assert stall_total == pytest.approx(1.0)

    def test_csv_and_json_agree(self, chars):
        csv_rows = list(csv.DictReader(io.StringIO(to_csv(chars))))
        json_rows = json.loads(to_json(chars))
        for c_row, j_row in zip(csv_rows, json_rows):
            assert float(c_row["l2_mpki"]) == pytest.approx(j_row["l2_mpki"])


@pytest.fixture(scope="module")
def mix():
    from repro.cluster.scheduler import FifoScheduler
    from repro.cluster.tenancy import generate_trace, run_mix

    trace = generate_trace(seed=3, num_jobs=4, arrival_rate_per_s=3.0)
    return run_mix(trace, FifoScheduler(), num_slaves=2, map_slots=4,
                   reduce_slots=2, block_size=64 * 1024)


class TestTimelineExports:
    def test_timeline_csv_flattens_disk_rates_per_node(self, mix):
        timelines = [r.timeline for r in mix.outcome.reports]
        rows = list(csv.DictReader(io.StringIO(timelines_to_csv(timelines))))
        assert len(rows) == len(timelines)
        assert set(TIMELINE_COLUMNS) <= set(rows[0])
        assert "disk_writes_per_second_slave1" in rows[0]
        assert float(rows[0]["duration_s"]) > 0

    def test_timeline_json_keeps_the_full_report(self, mix):
        timelines = [r.timeline for r in mix.outcome.reports]
        data = json.loads(timelines_to_json(timelines))
        assert data[0]["job_name"] == timelines[0].job_name
        assert set(data[0]["disk_writes_per_second"]) == {"slave1", "slave2"}

    def test_faulty_timeline_exports_resilience_counters(self):
        from repro.cluster import FaultPlan, FaultyCluster, make_cluster
        from repro.workloads import workload

        cluster = FaultyCluster(
            make_cluster(2, block_size=64 * 1024), FaultPlan(seed=1)
        )
        run = workload("Grep").run(0.05, cluster=cluster)
        report = run.timelines[0].to_dict()
        assert "resilience" in report
        assert "killed_attempts" in report["resilience"]
        json.dumps(report)  # fully serializable
        # and the flat table still accepts the faulty timeline
        assert timelines_to_rows(run.timelines)[0]["job_name"] == "grep"

    def test_empty_timeline_table_keeps_the_header(self):
        text = timelines_to_csv([])
        assert text.splitlines()[0].split(",") == TIMELINE_COLUMNS


class TestMixExports:
    def test_mix_rows_one_per_trace_job(self, mix):
        rows = mix_to_rows(mix)
        assert len(rows) == 4
        assert set(rows[0]) == set(MIX_COLUMNS)
        assert all(row["slowdown"] >= 0 for row in rows)

    def test_mix_csv_roundtrip(self, mix):
        rows = list(csv.DictReader(io.StringIO(mix_to_csv(mix))))
        assert [r["index"] for r in rows] == ["0", "1", "2", "3"]
        assert float(rows[0]["turnaround_s"]) >= float(rows[0]["wait_s"])

    def test_mix_json_has_trace_jobs_and_outcome(self, mix):
        data = json.loads(mix_to_json(mix))
        assert data["scheduler"] == "fifo"
        assert len(data["jobs"]) == 4
        assert data["trace"]["seed"] == 3
        assert data["outcome"]["peak_concurrency"] >= 1


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Naive Bayes" in out and "HPCC-STREAM" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table III" in out

    def test_run(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1", "--slaves", "2"]) == 0
        out = capsys.readouterr().out
        assert "Grep" in out
        assert "Map input records" in out

    def test_characterize_table(self, capsys):
        assert main(["characterize", "Grep", "--instructions", "15000"]) == 0
        out = capsys.readouterr().out
        assert "Grep" in out and "ipc" in out

    def test_characterize_csv(self, capsys):
        assert main(
            ["characterize", "Grep", "--instructions", "15000", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        rows = list(csv.DictReader(io.StringIO(out)))
        assert rows[0]["workload"] == "Grep"

    def test_characterize_json(self, capsys):
        assert main(
            ["characterize", "Grep", "--instructions", "15000", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["workload"] == "Grep"

    def test_domains(self, capsys):
        assert main(["domains"]) == 0
        out = capsys.readouterr().out
        assert "Search Engine" in out and "40%" in out

    def test_profile(self, capsys):
        assert main(["profile", "Sort", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "# workload: Sort" in out
        assert "overhead" in out

    def test_colocate(self, capsys):
        assert main(["colocate", "Grep", "WordCount", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out and "Grep" in out and "WordCount" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["characterize", "NotAWorkload"])


class TestRunFlagValidation:
    """Fault-injection flags reject malformed values with argparse errors."""

    @staticmethod
    def rejects(argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error

    def test_rejects_nan_fault_rate(self, capsys):
        self.rejects(["run", "Grep", "--faults", "nan"])
        assert "rate in [0, 1]" in capsys.readouterr().err

    def test_rejects_negative_fault_rate(self):
        self.rejects(["run", "Grep", "--faults", "-0.1"])

    def test_rejects_fault_rate_above_one(self):
        self.rejects(["run", "Grep", "--faults", "1.5"])

    def test_rejects_non_numeric_fault_rate(self):
        self.rejects(["run", "Grep", "--faults", "many"])

    def test_rejects_negative_crash_time(self):
        self.rejects(["run", "Grep", "--crash-node", "slave1",
                      "--crash-time", "-1"])

    def test_rejects_nan_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-crash-time", "nan"])

    def test_rejects_infinite_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-crash-time", "inf"])

    def test_crash_time_requires_crash_node(self, capsys):
        self.rejects(["run", "Grep", "--crash-time", "1.0"])
        assert "--crash-time requires --crash-node" in capsys.readouterr().err

    def test_recovery_requires_master_crash_time(self, capsys):
        self.rejects(["run", "Grep", "--recovery", "resume"])
        assert "requires --master-crash-time" in capsys.readouterr().err

    def test_master_downtime_requires_master_crash_time(self):
        self.rejects(["run", "Grep", "--master-downtime", "0.5"])

    def test_rejects_unknown_recovery_mode(self):
        self.rejects(["run", "Grep", "--master-crash-time", "1",
                      "--recovery", "reboot"])

    def test_rejects_unknown_crash_node(self, capsys):
        self.rejects(["run", "Grep", "--slaves", "2", "--crash-node", "slave9"])
        err = capsys.readouterr().err
        assert "slave9" in err and "slave1, slave2" in err

    def test_master_crash_run_succeeds(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1",
                     "--master-crash-time", "0.05", "--recovery", "resume"]) == 0
        out = capsys.readouterr().out
        assert "resilience accounting" in out
        assert "master_crashes" in out
        assert "recovery_downtime_s" in out

    def test_node_crash_run_succeeds(self, capsys):
        assert main(["run", "Grep", "--scale", "0.1",
                     "--crash-node", "slave2", "--crash-time", "0.02"]) == 0
        assert "resilience accounting" in capsys.readouterr().out


MIX_SMALL = ["--jobs", "4", "--slaves", "2",
             "--map-slots", "4", "--reduce-slots", "2"]


class TestMixCli:
    def test_mix_table(self, capsys):
        assert main(["mix", *MIX_SMALL, "--scheduler", "fair"]) == 0
        out = capsys.readouterr().out
        assert "fair scheduler: 4 jobs" in out
        assert "slowdown" in out and "per-pool:" in out

    def test_mix_json(self, capsys):
        assert main(["mix", *MIX_SMALL, "--scheduler", "capacity",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "capacity"
        assert len(data["jobs"]) == 4

    def test_mix_with_faults_prints_accounting(self, capsys):
        assert main(["mix", *MIX_SMALL, "--crash-node", "slave2",
                     "--crash-time", "0.3", "--partition", "slave1:0.1:0.5"]) == 0
        out = capsys.readouterr().out
        assert "fault accounting:" in out
        assert "nodes_crashed" in out

    def test_mix_is_reproducible(self, capsys):
        assert main(["mix", *MIX_SMALL, "--seed", "5", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["mix", *MIX_SMALL, "--seed", "5", "--format", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_mix_rejects_unknown_crash_node(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mix", *MIX_SMALL, "--crash-node", "slave9"])
        assert excinfo.value.code == 2
        assert "slave9" in capsys.readouterr().err

    def test_mix_crash_time_requires_crash_node(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mix", *MIX_SMALL, "--crash-time", "0.5"])
        assert excinfo.value.code == 2
        assert "--crash-time requires --crash-node" in capsys.readouterr().err

    def test_mix_rejects_malformed_partition(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["mix", *MIX_SMALL, "--partition", "slave1:oops"])
        assert excinfo.value.code == 2

    def test_mix_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["mix", "--scheduler", "deadline"])
        assert excinfo.value.code == 2


@pytest.fixture(scope="module")
def workflow_result():
    from repro.cluster import make_cluster
    from repro.cluster.workflow import (
        WorkflowFaultPlan,
        WorkflowRunner,
        build_workflow,
    )

    wf = build_workflow("diamond", scale=0.05, num_slaves=4)
    cluster = make_cluster(num_slaves=4, block_size=256 * 1024)
    plan = WorkflowFaultPlan(fail_stages=(("left", 1),))
    return WorkflowRunner(cluster, plan=plan).run(wf)


class TestWorkflowExports:
    def test_workflow_rows_one_per_stage(self, workflow_result):
        from repro.core.export import WORKFLOW_COLUMNS, workflow_to_rows

        rows = workflow_to_rows(workflow_result)
        assert len(rows) == 5
        assert set(rows[0]) == set(WORKFLOW_COLUMNS)
        by_stage = {row["stage"]: row for row in rows}
        assert by_stage["left"]["retries"] == 1
        assert all(row["status"] == "completed" for row in rows)

    def test_workflow_csv_roundtrip(self, workflow_result):
        from repro.core.export import WORKFLOW_COLUMNS, workflow_to_csv

        rows = list(csv.DictReader(io.StringIO(workflow_to_csv(workflow_result))))
        assert len(rows) == 5
        assert rows[0]["stage"] == "ingest"
        assert set(rows[0]) == set(WORKFLOW_COLUMNS)
        assert float(rows[-1]["finished_s"]) > 0

    def test_workflow_json_keeps_accounting_and_outputs(self, workflow_result):
        from repro.core.export import workflow_to_json

        data = json.loads(workflow_to_json(workflow_result))
        assert data["status"] == "completed"
        assert data["accounting"]["stage_retries"] == 1
        assert set(data["outputs"]) == {"side", "join"}
        assert len(data["stages"]) == 5


WF_SMALL = ["run-workflow", "--dag", "diamond"]


class TestWorkflowCli:
    def test_table_output(self, capsys):
        assert main([*WF_SMALL]) == 0
        out = capsys.readouterr().out
        assert "diamond on fifo: completed" in out
        assert "accounting:" in out
        assert "lineage_recomputes" in out

    def test_json_output_is_reproducible(self, capsys):
        argv = [*WF_SMALL, "--format", "json", "--seed", "4"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["status"] == "completed"

    def test_destroyed_output_recovers_via_lineage(self, capsys):
        assert main([*WF_SMALL, "--destroy-output", "ingest"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "lineage_recomputes        1" in out

    def test_exhausted_stage_exits_zero_when_partial_expected(self, capsys):
        assert main([*WF_SMALL, "--fail-stage", "left:9"]) == 0
        out = capsys.readouterr().out
        assert "partial" in out
        assert "cancelled" in out

    def test_rejects_unknown_crash_node(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*WF_SMALL, "--crash-node", "slave9"])
        assert excinfo.value.code == 2
        assert "slave9" in capsys.readouterr().err

    def test_crash_time_requires_crash_node(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*WF_SMALL, "--crash-time", "0.5"])
        assert excinfo.value.code == 2
        assert "--crash-time requires --crash-node" in capsys.readouterr().err

    def test_rejects_unknown_stage_flags(self, capsys):
        for argv in (
            [*WF_SMALL, "--destroy-output", "ghost"],
            [*WF_SMALL, "--fail-stage", "ghost:2"],
            [*WF_SMALL, "--master-crash-after", "ghost"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
        assert "ghost" in capsys.readouterr().err

    def test_rejects_malformed_fail_stage(self):
        for spec in ("left", "left:0", "left:x", ":3"):
            with pytest.raises(SystemExit) as excinfo:
                main([*WF_SMALL, "--fail-stage", spec])
            assert excinfo.value.code == 2

    def test_rejects_unknown_dag(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-workflow", "--dag", "mapreduce"])
        assert excinfo.value.code == 2
