"""Fault and straggler models for the cluster (Hadoop's resilience story).

Hadoop 1.x survives two everyday pathologies that shape job runtimes:

* **task failures** — a task dies (bad disk sector, JVM OOM) and the
  jobtracker re-executes it, preferring a different node;
* **stragglers** — a task runs on a degraded node far slower than its
  siblings; *speculative execution* launches a backup copy elsewhere and
  takes whichever finishes first.

:class:`FaultPlan` describes deterministic fault injections for one job
run; :class:`FaultyCluster` wraps a :class:`~repro.cluster.cluster.
HadoopCluster` and replays the plan during scheduling.  The model keeps
the paper's semantics: failures cost re-execution time, speculation
bounds straggler damage at the price of duplicate work (visible in the
disk/network counters).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.cluster import (
    HadoopCluster,
    JobTimeline,
    JobWork,
    TASK_LOG_BYTES,
)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for one job execution.

    Attributes:
        map_failures: indices of map tasks whose first attempt fails at
            ``failure_point`` of their runtime.
        straggler_nodes: node names running at ``straggler_factor`` speed.
        failure_point: fraction of the attempt's runtime spent before the
            failure is detected.
        straggler_factor: slowdown multiplier for straggler nodes.
        speculative_execution: launch backup attempts for straggler tasks
            (Hadoop's mapred.map.tasks.speculative.execution).
    """

    map_failures: tuple[int, ...] = ()
    straggler_nodes: tuple[str, ...] = ()
    failure_point: float = 0.5
    straggler_factor: float = 4.0
    speculative_execution: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_point <= 1.0:
            raise ValueError("failure_point must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @classmethod
    def random_plan(
        cls,
        num_maps: int,
        failure_rate: float = 0.05,
        seed: int = 0,
        **kwargs,
    ) -> "FaultPlan":
        """Sample a plan with roughly *failure_rate* of maps failing."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        rng = random.Random(seed)
        failures = tuple(
            i for i in range(num_maps) if rng.random() < failure_rate
        )
        return cls(map_failures=failures, **kwargs)


@dataclass
class FaultyTimeline:
    """A job timeline annotated with resilience accounting."""

    timeline: JobTimeline
    failed_attempts: int = 0
    speculative_attempts: int = 0
    speculative_wins: int = 0
    wasted_seconds: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.timeline.duration_s


class FaultyCluster:
    """A cluster that injects faults/stragglers while scheduling maps.

    Only the map phase is fault-injected (maps dominate task counts in
    these jobs and Hadoop's speculation story is map-centric); the reduce
    phase runs through the wrapped cluster untouched.
    """

    def __init__(self, cluster: HadoopCluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan

    def run_job(self, work: JobWork) -> FaultyTimeline:
        cluster = self.cluster
        plan = self.plan
        start = cluster.clock
        net_before = cluster.network.bytes_moved
        for node in cluster.slaves:
            node.procfs.sample(start)

        failed = set(plan.map_failures)
        stragglers = set(plan.straggler_nodes)
        stats = FaultyTimeline(timeline=None)  # type: ignore[arg-type]

        map_end_times: list[float] = []
        map_nodes = []
        map_outputs: list[int] = []
        for index, task in enumerate(work.maps):
            node, slot, ready = cluster._pick_map_slot(task, start, cluster.locality_wait_s)
            attempt_start = max(ready, start)

            def attempt(on_node, at):
                now = at
                if task.input_bytes:
                    now = on_node.disk.read(now, task.input_bytes)
                now += on_node.cpu_time(task.cpu_seconds)
                now = on_node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)
                if on_node.name in stragglers:
                    # A degraded node is slow across the board (thermal
                    # throttling, dying disk): stretch the whole attempt.
                    now = at + (now - at) * plan.straggler_factor
                return now

            end = attempt(node, attempt_start)

            if index in failed:
                # The first attempt dies part-way; rerun elsewhere.
                stats.failed_attempts += 1
                failure_time = attempt_start + (end - attempt_start) * plan.failure_point
                stats.wasted_seconds += failure_time - attempt_start
                retry_node, retry_slot, retry_ready = cluster._pick_map_slot(
                    task, failure_time, cluster.locality_wait_s
                )
                retry_start = max(retry_ready, failure_time)
                end = attempt(retry_node, retry_start)
                retry_node.map_slot_free[retry_slot] = end
                node.map_slot_free[slot] = failure_time
                node = retry_node
            elif (
                plan.speculative_execution
                and node.name in stragglers
                and len(cluster.slaves) > 1
            ):
                # Launch a backup on the fastest non-straggler node once
                # the original is clearly behind.
                stats.speculative_attempts += 1
                candidates = [n for n in cluster.slaves if n.name not in stragglers]
                if candidates:
                    backup_node = min(
                        candidates, key=lambda n: n.map_slot_free[n.earliest_map_slot()]
                    )
                    backup_slot = backup_node.earliest_map_slot()
                    backup_start = max(
                        backup_node.map_slot_free[backup_slot], attempt_start
                    )
                    backup_end = attempt(backup_node, backup_start)
                    if backup_end < end:
                        stats.speculative_wins += 1
                        stats.wasted_seconds += end - backup_end
                        backup_node.map_slot_free[backup_slot] = backup_end
                        node.map_slot_free[slot] = end  # original runs to kill
                        node = backup_node
                        end = backup_end
                    else:
                        stats.wasted_seconds += backup_end - backup_start
                        backup_node.map_slot_free[backup_slot] = backup_end
                        node.map_slot_free[slot] = end
                else:
                    node.map_slot_free[slot] = end
            else:
                node.map_slot_free[slot] = end

            map_end_times.append(end)
            map_nodes.append(node)
            map_outputs.append(task.output_bytes)

        # Reduce phase: reuse the stock cluster logic by running a
        # map-less continuation — simplest correct route is to finish the
        # job with the same code path the cluster uses.
        timeline = cluster._finish_reduce_phase(
            work, start, net_before, map_end_times, map_nodes, map_outputs
        )
        stats.timeline = timeline
        return stats
