"""HDFS block placement model.

Files are split into fixed-size blocks, each replicated on ``replication``
distinct slave nodes (round-robin with a rotating offset, which is how a
balanced HDFS cluster ends up distributing a large sequentially-written
file).  The scheduler queries :meth:`Hdfs.nodes_with_block` for map-task
locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Node


@dataclass(frozen=True)
class Block:
    """One HDFS block."""

    file_name: str
    index: int
    size_bytes: int
    replicas: tuple[str, ...]


@dataclass
class HdfsFile:
    """A file: ordered blocks plus total size."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class Hdfs:
    """Block-placement directory over the cluster's slave nodes."""

    def __init__(self, nodes: list[Node], block_size: int = 64 * 1024 * 1024, replication: int = 3):
        if not nodes:
            raise ValueError("HDFS needs at least one datanode")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.nodes = list(nodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.nodes))
        self.files: dict[str, HdfsFile] = {}
        self._placement_cursor = 0

    def create_file(self, name: str, size_bytes: int) -> HdfsFile:
        """Create a file of *size_bytes*, splitting and placing its blocks."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 0:
            raise ValueError("file size must be non-negative")
        blocks: list[Block] = []
        remaining = size_bytes
        index = 0
        while remaining > 0:
            size = min(self.block_size, remaining)
            replicas = self._place()
            blocks.append(Block(name, index, size, replicas))
            remaining -= size
            index += 1
        hfile = HdfsFile(name, blocks)
        self.files[name] = hfile
        return hfile

    def delete_file(self, name: str) -> None:
        self.files.pop(name, None)

    def _place(self) -> tuple[str, ...]:
        n = len(self.nodes)
        chosen = tuple(
            self.nodes[(self._placement_cursor + i) % n].name for i in range(self.replication)
        )
        self._placement_cursor = (self._placement_cursor + 1) % n
        return chosen

    def nodes_with_block(self, block: Block) -> tuple[str, ...]:
        return block.replicas

    def blocks_of(self, name: str) -> list[Block]:
        try:
            return self.files[name].blocks
        except KeyError:
            raise KeyError(f"no such HDFS file: {name!r}") from None

    def blocks_on_node(self, node_name: str) -> list[Block]:
        return [
            block
            for hfile in self.files.values()
            for block in hfile.blocks
            if node_name in block.replicas
        ]

    def total_stored_bytes(self) -> int:
        """Raw bytes stored including replication."""
        return sum(
            block.size_bytes * len(block.replicas)
            for hfile in self.files.values()
            for block in hfile.blocks
        )
