"""Unit tests for the fetch engine (front-end timing)."""

import pytest

from repro.uarch.branch import BranchUnit
from repro.uarch.caches import Cache, CacheHierarchy
from repro.uarch.config import CacheConfig, CoreConfig, TlbConfig
from repro.uarch.frontend import FETCH_HIDE, FRONT_DEPTH, FetchEngine
from repro.uarch.isa import MicroOp, OpClass
from repro.uarch.tlb import PageWalker, Tlb, TlbHierarchy


def make_fetch(l1i_kb=4, fetch_width=4, penalty=15):
    l1i = Cache(CacheConfig("L1I", l1i_kb * 1024, 4, 64, hit_latency=1))
    l2 = Cache(CacheConfig("L2", 64 * 1024, 8, 64, hit_latency=10))
    l3 = Cache(CacheConfig("L3", 512 * 1024, 16, 64, hit_latency=30))
    icache = CacheHierarchy(l1i, l2, l3, memory_latency=100, prefetch=True)
    walker = PageWalker(30)
    itlb = TlbHierarchy(Tlb(TlbConfig("ITLB", 8, 4)), Tlb(TlbConfig("L2TLB", 64, 4)), walker)
    unit = BranchUnit(CoreConfig())
    return FetchEngine(icache, itlb, unit, fetch_width, penalty)


def op(pc):
    return MicroOp(OpClass.ALU, pc)


class TestFetchBandwidth:
    def test_width_ops_per_cycle(self):
        fetch = make_fetch(fetch_width=4)
        fetch.fetch(op(0x400000))  # cold-miss warmup
        base = fetch.fetch_time
        cycles = [fetch.fetch(op(0x400004)) - base for _ in range(8)]
        # 3 remaining slots in the current cycle, then 4, then 1.
        assert cycles == [0, 0, 0, 1, 1, 1, 1, 2]

    def test_narrow_fetch(self):
        fetch = make_fetch(fetch_width=2)
        fetch.fetch(op(0x400000))
        base = fetch.fetch_time
        cycles = [fetch.fetch(op(0x400004)) - base for _ in range(4)]
        assert cycles == [0, 1, 1, 2]

    def test_fetched_counter(self):
        fetch = make_fetch()
        for _ in range(5):
            fetch.fetch(op(0x400000))
        assert fetch.fetched == 5


class TestFetchStalls:
    def test_same_line_no_repeat_access(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        accesses = fetch.icache.l1.accesses
        fetch.fetch(op(0x400004))  # same 64-byte line
        assert fetch.icache.l1.accesses == accesses

    def test_line_change_accesses_icache(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        accesses = fetch.icache.l1.accesses
        fetch.fetch(op(0x400040))  # next line
        assert fetch.icache.l1.accesses == accesses + 1

    def test_short_miss_hidden_by_fetch_buffer(self):
        fetch = make_fetch()
        # Warm L2 with the line, evict from L1I by touching conflicting lines.
        fetch.fetch(op(0x400000))
        # L2 hit costs 11 total, hide 8 → stall max(0, 11-1-8) = 2.
        # Simpler check: an L2-resident line's stall is far below a cold one.
        cold_stall = fetch.icache_stall_cycles
        fetch2 = make_fetch()
        fetch2.fetch(op(0x400000))
        assert cold_stall == fetch2.icache_stall_cycles

    def test_cold_miss_stalls(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        # 1 + 10 + 30 + 100 = 141 total; stall = 141 - 1 - FETCH_HIDE.
        assert fetch.icache_stall_cycles == 141 - 1 - FETCH_HIDE

    def test_itlb_walk_stalls(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        assert fetch.itlb_stall_cycles == 30  # cold page walk


class TestRedirects:
    def test_mispredict_redirect_moves_fetch_time(self):
        fetch = make_fetch(penalty=15)
        fetch.fetch(op(0x400000))
        before = fetch.fetch_time
        fetch.redirect(resolve_cycle=1000)
        assert fetch.fetch_time == 1000 + 15 - FRONT_DEPTH
        assert fetch.mispredict_stall_cycles == fetch.fetch_time - before

    def test_redirect_into_the_past_is_noop(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))  # cold miss pushes fetch_time far out
        time = fetch.fetch_time
        fetch.redirect(resolve_cycle=0)
        assert fetch.fetch_time == time
        assert fetch.mispredict_stall_cycles == 0

    def test_redirect_invalidates_line_register(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        fetch.redirect(resolve_cycle=10_000)
        accesses = fetch.icache.l1.accesses
        fetch.fetch(op(0x400004))  # same line, but post-flush → refetch
        assert fetch.icache.l1.accesses == accesses + 1

    def test_misfetch_bubble(self):
        fetch = make_fetch()
        fetch.fetch(op(0x400000))
        time = fetch.fetch_time
        stall = fetch.icache_stall_cycles
        fetch.misfetch()
        assert fetch.fetch_time == time + FetchEngine.MISFETCH_BUBBLE
        assert fetch.icache_stall_cycles == stall + FetchEngine.MISFETCH_BUBBLE
