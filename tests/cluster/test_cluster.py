"""Tests for the cluster and the job timeline executor."""

import pytest

from repro.cluster.cluster import (
    HadoopCluster,
    JobWork,
    MapWork,
    ReduceWork,
    make_cluster,
)
from repro.cluster.node import Node


def simple_work(maps=4, reduces=2, map_mb=1, out_mb=1, cpu=0.1) -> JobWork:
    return JobWork(
        name="job",
        maps=[MapWork(map_mb << 20, cpu, out_mb << 20) for _ in range(maps)],
        reduces=[
            ReduceWork((out_mb << 20) * maps // max(1, reduces), cpu, map_mb << 20)
            for _ in range(reduces)
        ],
    )


class TestWorkValidation:
    def test_negative_map_work_rejected(self):
        with pytest.raises(ValueError):
            MapWork(-1, 0.0, 0)
        with pytest.raises(ValueError):
            MapWork(0, -0.1, 0)

    def test_negative_reduce_work_rejected(self):
        with pytest.raises(ValueError):
            ReduceWork(-1, 0.0, 0)

    def test_job_needs_maps(self):
        with pytest.raises(ValueError):
            JobWork("j", maps=[])


class TestMakeCluster:
    def test_paper_shape(self):
        cluster = make_cluster(4)
        assert len(cluster.slaves) == 4
        assert cluster.total_map_slots == 96
        assert cluster.total_reduce_slots == 48

    def test_rejects_zero_slaves(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_needs_slaves(self):
        with pytest.raises(ValueError):
            HadoopCluster([])


class TestRunJob:
    def test_timeline_is_positive_and_ordered(self):
        cluster = make_cluster(4)
        t = cluster.run_job(simple_work())
        assert t.start_s == 0.0
        assert 0 < t.map_phase_end_s <= t.end_s
        assert t.duration_s > 0

    def test_clock_advances_across_jobs(self):
        cluster = make_cluster(2)
        t1 = cluster.run_job(simple_work())
        t2 = cluster.run_job(simple_work())
        assert t2.start_s == pytest.approx(t1.end_s)
        assert t2.end_s > t1.end_s

    def test_reset_clears_clock(self):
        cluster = make_cluster(2)
        cluster.run_job(simple_work())
        cluster.reset()
        assert cluster.clock == 0.0
        t = cluster.run_job(simple_work())
        assert t.start_s == 0.0

    def test_map_only_job(self):
        cluster = make_cluster(2)
        work = JobWork("maponly", maps=[MapWork(1 << 20, 0.01, 1 << 20)] * 4)
        t = cluster.run_job(work)
        assert t.reduce_tasks == 0
        assert t.end_s == t.map_phase_end_s

    def test_more_slaves_never_slower(self):
        work = simple_work(maps=64, reduces=8, cpu=0.5)
        durations = []
        for n in (1, 4, 8):
            cluster = make_cluster(n)
            durations.append(cluster.run_job(work).duration_s)
        assert durations[0] >= durations[1] >= durations[2]

    def test_cpu_bound_job_scales_with_slaves(self):
        # 64 heavy tasks, tiny I/O: waves shrink with the cluster.
        work = JobWork(
            "cpu",
            maps=[MapWork(1024, 5.0, 1024) for _ in range(64)],
            reduces=[ReduceWork(1024, 0.1, 1024)],
        )
        t1 = make_cluster(1, map_slots=8).run_job(work).duration_s
        t8 = make_cluster(8, map_slots=8).run_job(work).duration_s
        assert t1 / t8 > 5.0

    def test_io_bound_job_scales_worse_than_cpu_bound(self):
        io_work = JobWork(
            "io",
            maps=[MapWork(32 << 20, 0.01, 32 << 20) for _ in range(32)],
            reduces=[ReduceWork(128 << 20, 0.01, 128 << 20) for _ in range(4)],
        )
        cpu_work = JobWork(
            "cpu",
            maps=[MapWork(1024, 2.0, 1024) for _ in range(32)],
            reduces=[ReduceWork(1024, 0.5, 1024) for _ in range(4)],
        )

        def speedup(work):
            t1 = make_cluster(1, map_slots=8, reduce_slots=4).run_job(work).duration_s
            t8 = make_cluster(8, map_slots=8, reduce_slots=4).run_job(work).duration_s
            return t1 / t8

        assert speedup(cpu_work) > speedup(io_work)

    def test_disk_write_rates_reported_per_slave(self):
        cluster = make_cluster(3)
        t = cluster.run_job(simple_work())
        assert set(t.disk_writes_per_second) == {"slave1", "slave2", "slave3"}
        assert all(rate >= 0 for rate in t.disk_writes_per_second.values())

    def test_write_heavy_job_writes_more(self):
        light = JobWork(
            "light",
            maps=[MapWork(1 << 20, 0.2, 1024) for _ in range(8)],
            reduces=[ReduceWork(1024, 0.2, 1024)],
        )
        heavy = JobWork(
            "heavy",
            maps=[MapWork(1 << 20, 0.2, 8 << 20) for _ in range(8)],
            reduces=[ReduceWork(16 << 20, 0.2, 8 << 20)],
        )
        c1, c2 = make_cluster(2), make_cluster(2)
        r_light = max(c1.run_job(light).disk_writes_per_second.values())
        r_heavy = max(c2.run_job(heavy).disk_writes_per_second.values())
        assert r_heavy > r_light

    def test_network_bytes_zero_for_single_slave_no_replication(self):
        cluster = make_cluster(1, replication=1)
        t = cluster.run_job(simple_work())
        assert t.network_bytes == 0

    def test_network_traffic_appears_with_multiple_slaves(self):
        cluster = make_cluster(4)
        t = cluster.run_job(simple_work(maps=8, reduces=4))
        assert t.network_bytes > 0

    def test_locality_prefers_replica_holders(self):
        cluster = make_cluster(4)
        work = JobWork(
            "local",
            maps=[MapWork(4 << 20, 0.05, 1024, preferred_nodes=("slave2",)) for _ in range(4)],
            reduces=[],
        )
        cluster.run_job(work)
        # All reads should have landed on slave2's disk.
        assert cluster.slave("slave2").procfs.reads_completed == 4
        for other in ("slave1", "slave3", "slave4"):
            assert cluster.slave(other).procfs.reads_completed == 0
