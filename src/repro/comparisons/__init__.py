"""Comparison benchmark suites (Section III-C).

The paper compares its eleven data-analysis workloads against four other
benchmark families.  Each proxy here *really computes* a representative
kernel (LU solve, GUPS updates, FFT, key-value serving, inverted-index
search, …) and declares the micro-architectural profile of the real
benchmark it stands in for:

* :mod:`repro.comparisons.speccpu` — SPEC CPU2006 INT/FP group proxies;
* :mod:`repro.comparisons.hpcc` — HPCC 1.4: HPL, STREAM, PTRANS,
  RandomAccess, DGEMM, FFT, COMM;
* :mod:`repro.comparisons.specweb` — SPECweb2005 (bank);
* :mod:`repro.comparisons.cloudsuite` — CloudSuite: Data Serving, Media
  Streaming, Software Testing, Web Search, Web Serving (its Naive Bayes is
  the shared data-analysis workload and lives in :mod:`repro.workloads`).
"""

from repro.comparisons.base import (
    COMPARISON_NAMES,
    SERVICE_WORKLOADS,
    ComparisonRun,
    ComparisonWorkload,
    all_comparisons,
    comparison,
)

__all__ = [
    "COMPARISON_NAMES",
    "SERVICE_WORKLOADS",
    "ComparisonRun",
    "ComparisonWorkload",
    "all_comparisons",
    "comparison",
]
