"""Disk device model.

A disk is a bandwidth-limited, serialised resource: requests complete in
FIFO order at the device's sustained rate, and every completed operation is
recorded into the node's simulated ``/proc`` so the Figure 5 analysis can
sample write rates exactly like the paper's OS-level collector.

Fail-slow hardware: a *limping* disk (dying spindle remapping sectors,
firmware retry storms) still completes every request, just slower.
Setting ``slow_factor`` above 1 stretches each operation's service time
by that multiplier; at the default ``1.0`` the timing math is
bit-identical to the healthy path.
"""

from __future__ import annotations

from repro.perf.procfs import ProcFs

#: Bytes written per physical write operation (one merged request); used
#: to convert logical writes into operation counts for /proc accounting.
WRITE_OP_BYTES = 16 * 1024


class Disk:
    """One SATA-era disk: ~100 MB/s sequential, FIFO service."""

    def __init__(
        self,
        procfs: ProcFs,
        read_bw: float = 110e6,
        write_bw: float = 95e6,
        seek_s: float = 0.004,
    ) -> None:
        if read_bw <= 0 or write_bw <= 0:
            raise ValueError("disk bandwidth must be positive")
        if seek_s < 0:
            raise ValueError("seek time must be non-negative")
        self.procfs = procfs
        self.read_bw = read_bw
        self.write_bw = write_bw
        self.seek_s = seek_s
        #: fail-slow multiplier on every operation's service time (>= 1);
        #: 1.0 is a healthy disk and charges bit-identical durations.
        self.slow_factor = 1.0
        self.busy_until = 0.0
        # Sub-buffer writes accumulate until a 64 KB request is issued,
        # like the block layer merging adjacent small writes.
        self._pending_write_bytes = 0

    def read(self, now: float, num_bytes: int) -> float:
        """Issue a read at time *now*; return its completion time."""
        if num_bytes < 0:
            raise ValueError("read size must be non-negative")
        start = max(now, self.busy_until)
        duration = self.seek_s + num_bytes / self.read_bw
        if self.slow_factor != 1.0:
            duration *= self.slow_factor
        self.busy_until = start + duration
        self.procfs.record_disk_read(num_bytes)
        return self.busy_until

    def write(self, now: float, num_bytes: int) -> float:
        """Issue a write at time *now*; return its completion time.

        The write is accounted as one ``/proc`` operation per flushed
        64 KB buffer; sub-buffer writes merge with neighbours (as the
        block layer does), so the op count a ``/proc/diskstats`` sampler
        sees is proportional to bytes written.
        """
        if num_bytes < 0:
            raise ValueError("write size must be non-negative")
        start = max(now, self.busy_until)
        duration = self.seek_s + num_bytes / self.write_bw
        if self.slow_factor != 1.0:
            duration *= self.slow_factor
        self.busy_until = start + duration
        self._pending_write_bytes += num_bytes
        while self._pending_write_bytes >= WRITE_OP_BYTES:
            self.procfs.record_disk_write(WRITE_OP_BYTES)
            self._pending_write_bytes -= WRITE_OP_BYTES
        return self.busy_until

    def reset(self) -> None:
        self.busy_until = 0.0
        # A fresh device has no half-merged request sitting in the block
        # layer; leaking it across runs would skew the next run's merged
        # write-op accounting.
        self._pending_write_bytes = 0
