"""Deterministic synthetic input generators.

The paper's inputs are 147–187 GB of documents, HTML, vectors, ratings,
web pages and warehouse tables (Table I); ours are MB-scale equivalents
with the same *statistical* shape: Zipf-distributed vocabulary for text,
Gaussian-mixture vectors for clustering, preferential-attachment graphs
for PageRank, and skewed user/item activity for ratings.  Every generator
is seeded and pure, so workload runs are reproducible.
"""

from __future__ import annotations

import random
import string

# ---------------------------------------------------------------------------
# text corpora
# ---------------------------------------------------------------------------


def make_vocabulary(size: int, seed: int = 7) -> list[str]:
    """Deterministic vocabulary of *size* distinct lowercase words."""
    if size <= 0:
        raise ValueError("vocabulary size must be positive")
    rng = random.Random(seed)
    words: set[str] = set()
    while len(words) < size:
        length = rng.randint(3, 10)
        words.add("".join(rng.choice(string.ascii_lowercase) for _ in range(length)))
    return sorted(words)


def zipf_sampler(vocabulary: list[str], rng: random.Random, s: float = 1.1):
    """Return a () -> word sampler with Zipf-distributed ranks."""
    weights = [1.0 / (rank + 1) ** s for rank in range(len(vocabulary))]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def sample() -> str:
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return vocabulary[lo]

    return sample


def generate_documents(
    num_docs: int,
    words_per_doc: int = 80,
    vocabulary_size: int = 2000,
    seed: int = 13,
) -> list[tuple[str, str]]:
    """Zipf-text documents as (doc-id, text) records."""
    rng = random.Random(seed)
    vocab = make_vocabulary(vocabulary_size, seed)
    sample = zipf_sampler(vocab, rng)
    docs = []
    for i in range(num_docs):
        n = max(1, int(words_per_doc * rng.uniform(0.5, 1.5)))
        docs.append((f"doc{i:06d}", " ".join(sample() for _ in range(n))))
    return docs


def generate_html_pages(num_pages: int, seed: int = 17) -> list[tuple[str, str]]:
    """HTML-flavoured pages (for the SVM / HMM 'html file' inputs)."""
    rng = random.Random(seed)
    vocab = make_vocabulary(1500, seed)
    sample = zipf_sampler(vocab, rng)
    pages = []
    for i in range(num_pages):
        paragraphs = [
            "<p>" + " ".join(sample() for _ in range(rng.randint(10, 40))) + "</p>"
            for _ in range(rng.randint(2, 6))
        ]
        title = " ".join(sample() for _ in range(rng.randint(2, 6)))
        body = f"<html><head><title>{title}</title></head><body>{''.join(paragraphs)}</body></html>"
        pages.append((f"page{i:06d}", body))
    return pages


# ---------------------------------------------------------------------------
# sort records
# ---------------------------------------------------------------------------


def generate_sort_records(
    num_records: int, payload_bytes: int = 90, seed: int = 19
) -> list[tuple[str, str]]:
    """TeraSort-shaped records: 10-char random key + opaque payload."""
    rng = random.Random(seed)
    alphabet = string.ascii_letters + string.digits
    records = []
    for _ in range(num_records):
        key = "".join(rng.choice(alphabet) for _ in range(10))
        payload = "x" * payload_bytes
        records.append((key, payload))
    return records


# ---------------------------------------------------------------------------
# labelled text (classification)
# ---------------------------------------------------------------------------


def generate_labeled_documents(
    num_docs: int,
    classes: tuple[str, ...] = ("spam", "ham"),
    words_per_doc: int = 50,
    vocabulary_size: int = 1200,
    class_signal: float = 0.35,
    seed: int = 23,
) -> list[tuple[str, tuple[str, str]]]:
    """Documents with class-dependent vocabulary: (doc-id, (label, text)).

    Each class owns a slice of the vocabulary; ``class_signal`` of each
    document's words come from its class slice, the rest from the shared
    background — enough signal for Naive Bayes / SVM to beat chance by a
    wide margin, with realistic overlap.
    """
    rng = random.Random(seed)
    vocab = make_vocabulary(vocabulary_size, seed)
    shared = vocab[: vocabulary_size // 2]
    per_class = (vocabulary_size - len(shared)) // len(classes)
    class_slices = {
        cls: vocab[len(shared) + i * per_class: len(shared) + (i + 1) * per_class]
        for i, cls in enumerate(classes)
    }
    shared_sampler = zipf_sampler(shared, rng)
    docs = []
    for i in range(num_docs):
        label = classes[i % len(classes)]
        own = class_slices[label]
        words = []
        for _ in range(max(1, int(words_per_doc * rng.uniform(0.6, 1.4)))):
            if rng.random() < class_signal:
                words.append(own[rng.randrange(len(own))])
            else:
                words.append(shared_sampler())
        docs.append((f"doc{i:06d}", (label, " ".join(words))))
    return docs


# ---------------------------------------------------------------------------
# vectors (clustering)
# ---------------------------------------------------------------------------


def generate_cluster_points(
    num_points: int,
    num_clusters: int = 5,
    dims: int = 8,
    spread: float = 0.6,
    seed: int = 29,
) -> tuple[list[tuple[int, tuple[float, ...]]], list[tuple[float, ...]]]:
    """Gaussian-mixture points; returns (records, true_centers)."""
    rng = random.Random(seed)
    centers = [
        tuple(rng.uniform(-10.0, 10.0) for _ in range(dims)) for _ in range(num_clusters)
    ]
    records = []
    for i in range(num_points):
        center = centers[i % num_clusters]
        point = tuple(c + rng.gauss(0.0, spread) for c in center)
        records.append((i, point))
    return records, centers


# ---------------------------------------------------------------------------
# ratings (recommendation)
# ---------------------------------------------------------------------------


def generate_ratings(
    num_users: int = 120,
    num_items: int = 60,
    ratings_per_user: int = 12,
    seed: int = 31,
) -> list[tuple[int, tuple[int, float]]]:
    """(user, (item, rating)) with skewed item popularity and per-user taste.

    Users have a latent preference over two item groups, so item-item
    similarity has real structure for IBCF to exploit.
    """
    rng = random.Random(seed)
    records = []
    for user in range(num_users):
        taste = rng.random()  # blend between item groups
        seen: set[int] = set()
        for _ in range(ratings_per_user):
            if rng.random() < taste:
                item = rng.randrange(num_items // 2)
            else:
                item = num_items // 2 + rng.randrange(num_items - num_items // 2)
            # popularity skew inside the group
            item = min(item, int(abs(rng.gauss(item, num_items / 10))) % num_items)
            if item in seen:
                continue
            seen.add(item)
            base = 4.0 if (item < num_items // 2) == (taste > 0.5) else 2.0
            rating = min(5.0, max(1.0, base + rng.gauss(0, 0.7)))
            records.append((user, (item, round(rating, 1))))
    return records


# ---------------------------------------------------------------------------
# web graph (PageRank)
# ---------------------------------------------------------------------------


def generate_web_graph(
    num_pages: int, out_degree: int = 6, seed: int = 37
) -> list[tuple[int, tuple[int, ...]]]:
    """Preferential-attachment directed graph: (page, out-links)."""
    rng = random.Random(seed)
    popularity = [1] * num_pages
    adjacency: list[tuple[int, tuple[int, ...]]] = []
    total = num_pages
    for page in range(num_pages):
        links: set[int] = set()
        degree = max(1, int(out_degree * rng.uniform(0.3, 1.7)))
        for _ in range(degree):
            # Preferential attachment: sample proportional to popularity.
            pick = rng.randrange(total)
            acc = 0
            target = 0
            for node, pop in enumerate(popularity):
                acc += pop
                if pick < acc:
                    target = node
                    break
            if target != page:
                links.add(target)
        for target in links:
            popularity[target] += 1
            total += 1
        adjacency.append((page, tuple(sorted(links))))
    return adjacency


# ---------------------------------------------------------------------------
# sequences (HMM segmentation)
# ---------------------------------------------------------------------------

#: Hidden states for word segmentation: Begin / Middle / End / Single.
HMM_STATES = ("B", "M", "E", "S")


def generate_segmented_corpus(
    num_sentences: int,
    alphabet_size: int = 30,
    words_per_sentence: int = 8,
    seed: int = 41,
) -> list[tuple[str, tuple[str, str]]]:
    """Labelled segmentation corpus: (id, (chars, BMES-tags)).

    Models a script without delimiters (the paper's Chinese-segmentation
    scenario): words of 1–4 characters drawn from a small lexicon, each
    character tagged Begin/Middle/End/Single.
    """
    rng = random.Random(seed)
    alphabet = [chr(ord("a") + i % 26) + (str(i // 26) if i >= 26 else "") for i in range(alphabet_size)]
    # Positional character preference (as in natural scripts, where some
    # characters favour word-initial/final positions): word-initial chars
    # come mostly from the first third of the alphabet, finals from the
    # last third — this is the signal the HMM's emission model learns.
    third = max(1, alphabet_size // 3)
    initials, middles, finals = alphabet[:third], alphabet[third:2 * third], alphabet[2 * third:]

    def pick(position: str) -> str:
        pools = {"initial": initials, "middle": middles, "final": finals}
        pool = pools[position] if rng.random() < 0.8 else alphabet
        return rng.choice(pool)

    lexicon = []
    for _ in range(120):
        length = rng.choices((1, 2, 3, 4), weights=(15, 50, 25, 10))[0]
        if length == 1:
            word = pick("initial")
        else:
            word = pick("initial")
            word += "".join(pick("middle") for _ in range(length - 2))
            word += pick("final")
        lexicon.append(word)
    sentences = []
    for i in range(num_sentences):
        chars: list[str] = []
        tags: list[str] = []
        for _ in range(max(1, int(words_per_sentence * rng.uniform(0.5, 1.5)))):
            word = lexicon[rng.randrange(len(lexicon))]
            chars.extend(word)
            if len(word) == 1:
                tags.append("S")
            else:
                tags.extend(["B"] + ["M"] * (len(word) - 2) + ["E"])
        sentences.append((f"s{i:06d}", ("".join(chars), "".join(tags))))
    return sentences


# ---------------------------------------------------------------------------
# warehouse tables (Hive-bench)
# ---------------------------------------------------------------------------


def generate_rankings(num_pages: int, seed: int = 43) -> list[tuple[str, int, int]]:
    """(pageURL, pageRank, avgDuration) rows."""
    rng = random.Random(seed)
    return [
        (f"url{i:06d}", int(min(1000, rng.expovariate(1 / 60.0))), rng.randrange(1, 100))
        for i in range(num_pages)
    ]


def generate_uservisits(
    num_visits: int, num_pages: int, seed: int = 47
) -> list[tuple[str, str, float, str]]:
    """(sourceIP, destURL, adRevenue, searchWord) rows with skewed URLs."""
    rng = random.Random(seed)
    vocab = make_vocabulary(200, seed)
    rows = []
    for _ in range(num_visits):
        ip = f"{rng.randrange(10, 250)}.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}"
        page = min(num_pages - 1, int(rng.expovariate(1 / (num_pages / 5.0))))
        rows.append(
            (ip, f"url{page:06d}", round(rng.expovariate(2.0), 4), vocab[rng.randrange(len(vocab))])
        )
    return rows
