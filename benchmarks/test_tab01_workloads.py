"""Table I: the eleven representative data-analysis workloads.

Regenerates the table from workload metadata and cross-checks it against
live runs of each workload (every workload must actually execute and
produce non-trivial MapReduce activity).
"""

from conftest import run_once

from repro.core.report import render_table1
from repro.workloads import all_workloads

#: Paper values: (input GB, retired instructions in billions).
PAPER_TABLE1 = {
    "Sort": (150, 4578),
    "WordCount": (154, 3533),
    "Grep": (154, 1499),
    "Naive Bayes": (147, 68131),
    "SVM": (148, 2051),
    "K-means": (150, 3227),
    "Fuzzy K-means": (150, 15470),
    "IBCF": (147, 32340),
    "HMM": (147, 1841),
    "PageRank": (187, 18470),
    "Hive-bench": (156, 3659),
}


def test_table1(benchmark):
    def harness():
        rows = {}
        for wl in all_workloads():
            run = wl.run(scale=0.2)
            rows[wl.info.name] = (
                wl.info.input_gb_low,
                wl.info.retired_instructions_1e9,
                run.counters.map_input_records,
            )
        return rows

    rows = run_once(benchmark, harness)
    print()
    print(render_table1())
    print(f"\n{'workload':<16s}{'paper GB':>9s}{'paper 1e9 instr':>17s}{'live map records':>18s}")
    for name, (gb, instr, records) in rows.items():
        print(f"{name:<16s}{gb:>9d}{instr:>17d}{records:>18d}")

    assert set(rows) == set(PAPER_TABLE1)
    for name, (gb, instr, records) in rows.items():
        paper_gb, paper_instr = PAPER_TABLE1[name]
        assert gb == paper_gb
        assert instr == paper_instr
        assert records > 0, f"{name} did not process any records"
    # Table I shape: inputs span 147–187 GB; Naive Bayes retires the most.
    assert max(PAPER_TABLE1[n][0] for n in rows) == 187
    assert max(rows, key=lambda n: rows[n][1]) == "Naive Bayes"
