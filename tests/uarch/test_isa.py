"""Unit tests for the micro-op model."""

from repro.uarch.isa import DEFAULT_LATENCY, MEMORY_OPS, MicroOp, OpClass


class TestOpClass:
    def test_eight_classes(self):
        assert len(OpClass) == 8

    def test_memory_ops_set(self):
        assert MEMORY_OPS == {OpClass.LOAD, OpClass.STORE}

    def test_latency_table_covers_all_classes(self):
        assert set(DEFAULT_LATENCY) == set(OpClass)

    def test_latency_ordering(self):
        assert DEFAULT_LATENCY[OpClass.ALU] <= DEFAULT_LATENCY[OpClass.MUL]
        assert DEFAULT_LATENCY[OpClass.MUL] < DEFAULT_LATENCY[OpClass.DIV]


class TestMicroOp:
    def test_defaults(self):
        uop = MicroOp(OpClass.ALU, 0x400000)
        assert uop.addr == 0
        assert not uop.taken
        assert uop.dep1 == 0 and uop.dep2 == 0
        assert not uop.kernel

    def test_is_memory(self):
        assert MicroOp(OpClass.LOAD, 0, addr=8).is_memory()
        assert MicroOp(OpClass.STORE, 0, addr=8).is_memory()
        assert not MicroOp(OpClass.BRANCH, 0).is_memory()
        assert not MicroOp(OpClass.FP, 0).is_memory()

    def test_slots_prevent_arbitrary_attributes(self):
        uop = MicroOp(OpClass.ALU, 0)
        try:
            uop.color = "red"
        except AttributeError:
            return
        raise AssertionError("MicroOp must use __slots__")
