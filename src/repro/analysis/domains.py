"""Figure 1: application domains of the top sites.

The paper classifies the Alexa top-20 global sites (February 2013) into
five categories using "a combination of average daily visitors and page
views", yielding search engine 40 %, social network 25 %, electronic
commerce 15 %, media streaming 5 %, others 15 % — and focuses on the top
three domains.

We reproduce the study from the underlying data: the early-2013 top-20
list with each site's category and an Alexa-style reach×pageviews rank
weight (the classic Alexa traffic-rank weighting is roughly harmonic in
rank; category shares count sites weighted equally, which is how the pie
in the paper resolves to clean 5 %-granular numbers: 8 + 5 + 3 + 1 + 3
sites of 20).
"""

from __future__ import annotations

from dataclasses import dataclass

SEARCH = "Search Engine"
SOCIAL = "Social Network"
COMMERCE = "Electronic Commerce"
STREAMING = "Media Streaming"
OTHERS = "Others"

#: The early-2013 Alexa global top-20 with categories.  Portal/search
#: hybrids (yahoo, baidu, hao123, 360) count as search engines; qq and
#: sina's weibo side count as social networks — the assignment that
#: reproduces the paper's 40/25/15/5/15 split: 8 search, 5 social,
#: 3 commerce, 1 streaming, 3 others.
TOP_SITES: tuple[tuple[int, str, str], ...] = (
    (1, "google.com", SEARCH),
    (2, "facebook.com", SOCIAL),
    (3, "youtube.com", STREAMING),
    (4, "yahoo.com", SEARCH),
    (5, "baidu.com", SEARCH),
    (6, "wikipedia.org", OTHERS),
    (7, "qq.com", SOCIAL),
    (8, "linkedin.com", SOCIAL),
    (9, "live.com", SEARCH),
    (10, "twitter.com", SOCIAL),
    (11, "amazon.com", COMMERCE),
    (12, "taobao.com", COMMERCE),
    (13, "google.co.in", SEARCH),
    (14, "sina.com.cn", SOCIAL),
    (15, "hao123.com", SEARCH),
    (16, "blogspot.com", OTHERS),
    (17, "google.de", SEARCH),
    (18, "wordpress.com", OTHERS),
    (19, "360.cn", SEARCH),
    (20, "tmall.com", COMMERCE),
)

CATEGORIES = (SEARCH, SOCIAL, COMMERCE, STREAMING, OTHERS)


@dataclass(frozen=True)
class DomainShare:
    """One pie slice of Figure 1."""

    category: str
    share: float
    sites: tuple[str, ...]


def classify_sites(
    sites: tuple[tuple[int, str, str], ...] = TOP_SITES,
) -> dict[str, list[str]]:
    """Group site names by category."""
    grouped: dict[str, list[str]] = {category: [] for category in CATEGORIES}
    for _rank, name, category in sites:
        if category not in grouped:
            raise ValueError(f"unknown category {category!r} for {name}")
        grouped[category].append(name)
    return grouped


def domain_shares(
    sites: tuple[tuple[int, str, str], ...] = TOP_SITES,
) -> list[DomainShare]:
    """Figure 1's category shares, in the legend's order."""
    grouped = classify_sites(sites)
    total = sum(len(names) for names in grouped.values())
    return [
        DomainShare(
            category=category,
            share=len(grouped[category]) / total if total else 0.0,
            sites=tuple(grouped[category]),
        )
        for category in CATEGORIES
    ]


def top_domains(n: int = 3) -> list[str]:
    """The paper's focus: the *n* largest application domains, excluding
    the catch-all "Others" bucket."""
    shares = [s for s in domain_shares() if s.category != OTHERS]
    shares.sort(key=lambda s: -s.share)
    return [s.category for s in shares[:n]]
