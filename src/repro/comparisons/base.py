"""Comparison-workload interface and registry.

Mirrors :mod:`repro.workloads.base` for the non-data-analysis suites: each
comparison workload has a real runnable kernel (:meth:`run`) and a
micro-architectural profile (:meth:`uarch_profile`) feeding the same
simulator, so the cross-suite figures compare like with like.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.uarch.trace import TraceSpec


@dataclass
class ComparisonRun:
    """Result of one comparison-kernel execution."""

    name: str
    output: Any
    #: kernel-specific figures of merit (residuals, op counts, rates)
    metrics: dict[str, float] = field(default_factory=dict)


class ComparisonWorkload(ABC):
    """One compared benchmark: metadata + real kernel + profile."""

    name: str
    suite: str  # "SPEC CPU2006" | "HPCC" | "SPECweb2005" | "CloudSuite"

    @abstractmethod
    def run(self, scale: float = 1.0) -> ComparisonRun:
        """Execute the kernel for real at *scale* and self-validate."""

    @abstractmethod
    def uarch_profile(self) -> dict[str, Any]:
        """TraceSpec parameters (full — no framework defaults here, since
        these are native C/C++/JVM binaries of very different shapes)."""

    def trace_spec(self, instructions: int, seed: int | None = None) -> TraceSpec:
        params = dict(self.uarch_profile())
        if seed is not None:
            params["seed"] = seed
        else:
            params.setdefault("seed", 19880 + sum(map(ord, self.name)))
        return TraceSpec(name=self.name, instructions=instructions, **params)


#: The five CloudSuite benchmarks characterized in the figures (the sixth,
#: Naive Bayes, is one of the eleven data-analysis workloads), the two
#: SPEC CPU2006 groups, SPECweb2005, and the seven HPCC programs — in the
#: order the paper's figures list them after the data-analysis block.
COMPARISON_NAMES = [
    "Software Testing",
    "Media Streaming",
    "Data Serving",
    "Web Search",
    "Web Serving",
    "SPECFP",
    "SPECINT",
    "SPECWeb",
    "HPCC-COMM",
    "HPCC-DGEMM",
    "HPCC-FFT",
    "HPCC-HPL",
    "HPCC-PTRANS",
    "HPCC-RandomAccess",
    "HPCC-STREAM",
]

#: The workloads the paper groups as "service workloads" (§I: four of the
#: six CloudSuite benchmarks plus the traditional SPECweb2005 server).
SERVICE_WORKLOADS = frozenset(
    ["Media Streaming", "Data Serving", "Web Search", "Web Serving", "SPECWeb"]
)

_REGISTRY: dict[str, type[ComparisonWorkload]] = {}


def register(cls: type[ComparisonWorkload]) -> type[ComparisonWorkload]:
    if cls.name in _REGISTRY:
        raise ValueError(f"comparison {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def comparison(name: str) -> ComparisonWorkload:
    """Instantiate a comparison workload by figure name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown comparison {name!r}; known: {known}") from None


def all_comparisons() -> list[ComparisonWorkload]:
    """All comparison workloads in figure order."""
    _ensure_loaded()
    return [comparison(name) for name in COMPARISON_NAMES]


def _ensure_loaded() -> None:
    from repro.comparisons import cloudsuite, hpcc, speccpu, specweb  # noqa: F401
