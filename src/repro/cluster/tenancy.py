"""Trace-driven workload mixes: "a day of traffic" as one seeded object.

Chen et al.'s cross-industry MapReduce study (PAPERS.md) found production
clusters dominated by heavy-tailed job mixes — most submissions are small
interactive jobs (ad-hoc queries, greps) while a thin tail of large batch
jobs moves most of the bytes.  :func:`generate_trace` reproduces that
regime over this repo's eleven DA workloads (plus Hive queries) with
seeded Poisson arrivals and named users/pools, and :func:`run_mix` plays
a trace through :class:`~repro.cluster.scheduler.MultiJobCluster` under
any scheduler, with optional fault injection.

Functional outputs are computed on a per-job *shadow cluster* (the same
paper-shaped cluster, dedicated to that job), which pins down three
things at once:

* the job's **output** — byte-identical regardless of scheduler or
  faults, because scheduling only decides *when* charges happen, never
  what the map/reduce functions compute (the chaos acceptance test
  asserts this);
* the job's **ideal solo duration**, the denominator of its slowdown;
* the per-task byte/CPU demands (``JobWork``) that the shared cluster
  schedules.

Co-location hook: :func:`characterize_colocation` finds the busiest
instant of the mix and characterizes the distinct workloads co-resident
on one node under a shared LLC via :mod:`repro.uarch.multicore`.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field

from repro.cluster.cluster import make_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.scheduler import (
    MixOutcome,
    MultiJobCluster,
    PoolConfig,
    QueueConfig,
    Scheduler,
    jain_index,
)
__all__ = [
    "TraceJob",
    "WorkloadTrace",
    "generate_trace",
    "default_pools",
    "default_queues",
    "TenantJobReport",
    "MixResult",
    "run_mix",
    "ColocationReport",
    "characterize_colocation",
]

#: size classes of the heavy-tailed mix: (probability, pool, choices),
#: where each choice is (workload name, base scale).  Probabilities follow
#: Chen et al.'s "most jobs are small" production shape: ~70 % small
#: interactive queries, ~25 % medium analytics, ~5 % large batch.
DEFAULT_MIX: tuple[tuple[str, float, str, tuple[tuple[str, float], ...]], ...] = (
    (
        "small",
        0.70,
        "interactive",
        (("Grep", 0.06), ("WordCount", 0.06), ("Hive-bench", 0.08)),
    ),
    (
        "medium",
        0.25,
        "analytics",
        (("WordCount", 0.2), ("Naive Bayes", 0.15), ("K-means", 0.15)),
    ),
    (
        "large",
        0.05,
        "batch",
        (("Sort", 0.35), ("PageRank", 0.3)),
    ),
)

DEFAULT_USERS = ("ada", "bo", "carol", "deepak")


@dataclass(frozen=True)
class TraceJob:
    """One submission of a workload trace."""

    index: int
    workload: str
    scale: float
    arrival_s: float
    user: str
    pool: str
    size_class: str

    def __post_init__(self) -> None:
        # Imported here: repro.workloads.base itself imports the cluster
        # package, so a module-level import would be circular.
        from repro.workloads.base import WORKLOAD_NAMES

        if self.workload not in WORKLOAD_NAMES:
            raise ValueError(f"unknown workload {self.workload!r}")
        if not (self.scale > 0 and math.isfinite(self.scale)):
            raise ValueError("scale must be positive and finite")
        if not (self.arrival_s >= 0 and math.isfinite(self.arrival_s)):
            raise ValueError("arrival_s must be finite and non-negative")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": self.workload,
            "scale": self.scale,
            "arrival_s": self.arrival_s,
            "user": self.user,
            "pool": self.pool,
            "size_class": self.size_class,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceJob":
        """Rebuild a job from :meth:`to_dict` output, with validation."""
        if not isinstance(data, dict):
            raise ValueError(f"trace job must be an object, got {type(data).__name__}")
        missing = [f for f in _TRACE_JOB_FIELDS if f not in data]
        if missing:
            raise ValueError(f"trace job missing field(s): {', '.join(missing)}")
        unknown = sorted(set(data) - set(_TRACE_JOB_FIELDS))
        if unknown:
            raise ValueError(f"trace job has unknown field(s): {', '.join(unknown)}")
        if not isinstance(data["index"], int) or isinstance(data["index"], bool):
            raise ValueError("trace job index must be an integer")
        for name in ("workload", "user", "pool", "size_class"):
            if not isinstance(data[name], str) or not data[name]:
                raise ValueError(f"trace job {name} must be a non-empty string")
        for name in ("scale", "arrival_s"):
            if isinstance(data[name], bool) or not isinstance(data[name], (int, float)):
                raise ValueError(f"trace job {name} must be a number")
        return cls(
            index=data["index"],
            workload=data["workload"],
            scale=float(data["scale"]),
            arrival_s=float(data["arrival_s"]),
            user=data["user"],
            pool=data["pool"],
            size_class=data["size_class"],
        )


_TRACE_JOB_FIELDS = (
    "index", "workload", "scale", "arrival_s", "user", "pool", "size_class",
)


@dataclass(frozen=True)
class WorkloadTrace:
    """A reproducible sequence of job submissions."""

    jobs: tuple[TraceJob, ...]
    seed: int
    arrival_rate_per_s: float

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a trace needs at least one job")
        arrivals = [job.arrival_s for job in self.jobs]
        if arrivals != sorted(arrivals):
            raise ValueError("trace jobs must be sorted by arrival time")

    def pools(self) -> list[str]:
        return sorted({job.pool for job in self.jobs})

    def users(self) -> list[str]:
        return sorted({job.user for job in self.jobs})

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "arrival_rate_per_s": self.arrival_rate_per_s,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise the trace so it can be replayed via ``mix --trace``."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTrace":
        if not isinstance(data, dict):
            raise ValueError(f"trace must be an object, got {type(data).__name__}")
        for name in ("seed", "arrival_rate_per_s", "jobs"):
            if name not in data:
                raise ValueError(f"trace missing field {name!r}")
        if not isinstance(data["seed"], int) or isinstance(data["seed"], bool):
            raise ValueError("trace seed must be an integer")
        rate = data["arrival_rate_per_s"]
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise ValueError("trace arrival_rate_per_s must be a number")
        if not isinstance(data["jobs"], list):
            raise ValueError("trace jobs must be a list")
        jobs = tuple(TraceJob.from_dict(job) for job in data["jobs"])
        return cls(jobs=jobs, seed=data["seed"], arrival_rate_per_s=float(rate))

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Exact inverse of :meth:`to_json` (validated; raises ValueError)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace is not valid JSON: {error}") from None
        return cls.from_dict(data)


def generate_trace(
    seed: int = 0,
    num_jobs: int = 12,
    arrival_rate_per_s: float = 2.0,
    users: tuple[str, ...] = DEFAULT_USERS,
    mix=DEFAULT_MIX,
) -> WorkloadTrace:
    """Draw a seeded heavy-tailed trace: Poisson arrivals, mixed sizes."""
    if num_jobs < 1:
        raise ValueError("num_jobs must be at least 1")
    if not (arrival_rate_per_s > 0 and math.isfinite(arrival_rate_per_s)):
        raise ValueError("arrival_rate_per_s must be positive and finite")
    if not users:
        raise ValueError("need at least one user")
    rng = random.Random(f"tenancy:{seed}")
    classes = [entry[0] for entry in mix]
    weights = [entry[1] for entry in mix]
    by_class = {entry[0]: (entry[2], entry[3]) for entry in mix}
    clock = 0.0
    jobs = []
    for index in range(num_jobs):
        clock += rng.expovariate(arrival_rate_per_s)
        size_class = rng.choices(classes, weights=weights)[0]
        pool, choices = by_class[size_class]
        name, base_scale = rng.choice(choices)
        scale = round(base_scale * rng.uniform(0.75, 1.25), 4)
        jobs.append(
            TraceJob(
                index=index,
                workload=name,
                scale=scale,
                arrival_s=round(clock, 6),
                user=rng.choice(users),
                pool=pool,
                size_class=size_class,
            )
        )
    return WorkloadTrace(tuple(jobs), seed, arrival_rate_per_s)


def default_pools(trace: WorkloadTrace, min_share: int = 2) -> list[PoolConfig]:
    """Fair-scheduler pools for a trace: interactive pools get a minimum
    share and double weight, batch runs at weight 1."""
    pools = []
    for name in trace.pools():
        if name == "interactive":
            pools.append(PoolConfig(name, weight=2.0, min_share=min_share))
        else:
            pools.append(PoolConfig(name))
    return pools


def default_queues(trace: WorkloadTrace) -> list[QueueConfig]:
    """Capacity-scheduler queues: equal capacity split, 50 % user limit."""
    names = trace.pools()
    share = 1.0 / len(names)
    return [QueueConfig(name, capacity=share, user_limit=0.5) for name in names]


@dataclass
class TenantJobReport:
    """End-to-end accounting for one trace job (its whole stage chain)."""

    trace_job: TraceJob
    job_ids: tuple[str, ...]
    first_launch_s: float
    finished_s: float
    ideal_s: float
    #: map launches by delay-scheduling tier, summed over the stage
    #: chain (all node-local on a flat cluster).
    maps_node_local: int = 0
    maps_rack_local: int = 0
    maps_off_rack: int = 0

    @property
    def wait_s(self) -> float:
        return self.first_launch_s - self.trace_job.arrival_s

    @property
    def turnaround_s(self) -> float:
        return self.finished_s - self.trace_job.arrival_s

    @property
    def slowdown(self) -> float:
        """Turnaround over the job's solo (dedicated-cluster) duration."""
        if self.ideal_s <= 0:
            return 1.0
        return self.turnaround_s / self.ideal_s

    def to_dict(self) -> dict:
        return {
            **self.trace_job.to_dict(),
            "job_ids": list(self.job_ids),
            "first_launch_s": self.first_launch_s,
            "finished_s": self.finished_s,
            "ideal_s": self.ideal_s,
            "wait_s": self.wait_s,
            "turnaround_s": self.turnaround_s,
            "slowdown": self.slowdown,
            "maps_node_local": self.maps_node_local,
            "maps_rack_local": self.maps_rack_local,
            "maps_off_rack": self.maps_off_rack,
        }


@dataclass
class MixResult:
    """A trace played through one scheduler on one shared cluster."""

    scheduler: str
    trace: WorkloadTrace
    reports: list[TenantJobReport]
    outcome: MixOutcome
    outputs: dict[int, object] = field(repr=False, default_factory=dict)

    def _select(self, pool=None, size_class=None, user=None):
        return [
            r
            for r in self.reports
            if (pool is None or r.trace_job.pool == pool)
            and (size_class is None or r.trace_job.size_class == size_class)
            and (user is None or r.trace_job.user == user)
        ]

    def mean_slowdown(self, pool=None, size_class=None, user=None) -> float:
        """Mean slowdown over the selection; NaN when nothing matches.

        An empty selection is an answerable question ("how slow were the
        interactive jobs?" when the trace had none), so it yields NaN —
        which propagates through comparisons and plots — rather than an
        exception that aborts a whole report.
        """
        chosen = self._select(pool, size_class, user)
        if not chosen:
            return float("nan")
        return sum(r.slowdown for r in chosen) / len(chosen)

    def mean_wait(self, pool=None, size_class=None, user=None) -> float:
        """Mean queueing wait over the selection; NaN when nothing matches."""
        chosen = self._select(pool, size_class, user)
        if not chosen:
            return float("nan")
        return sum(r.wait_s for r in chosen) / len(chosen)

    def jain_fairness(self, by: str = "job") -> float:
        """Jain's index over per-job slowdowns, or per-user/pool means."""
        if by == "job":
            return jain_index([r.slowdown for r in self.reports])
        if by == "user":
            groups = {r.trace_job.user for r in self.reports}
            return jain_index([self.mean_slowdown(user=g) for g in sorted(groups)])
        if by == "pool":
            groups = {r.trace_job.pool for r in self.reports}
            return jain_index([self.mean_slowdown(pool=g) for g in sorted(groups)])
        raise ValueError("by must be 'job', 'user' or 'pool'")

    def by_pool(self) -> dict[str, dict]:
        out = {}
        for name in self.trace.pools():
            chosen = self._select(pool=name)
            if not chosen:
                continue
            out[name] = {
                "jobs": len(chosen),
                "mean_wait_s": sum(r.wait_s for r in chosen) / len(chosen),
                "mean_slowdown": sum(r.slowdown for r in chosen) / len(chosen),
            }
        return out

    @property
    def makespan_s(self) -> float:
        return self.outcome.end_s

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "trace": self.trace.to_dict(),
            "makespan_s": self.makespan_s,
            "mean_slowdown": self.mean_slowdown(),
            "jain_fairness": self.jain_fairness(),
            "jain_fairness_by_user": self.jain_fairness(by="user"),
            "by_pool": self.by_pool(),
            "jobs": [r.to_dict() for r in self.reports],
            "outcome": self.outcome.to_dict(),
        }


def run_mix(
    trace: WorkloadTrace,
    scheduler: Scheduler | None = None,
    num_slaves: int = 4,
    map_slots: int = 8,
    reduce_slots: int = 4,
    block_size: int = 256 * 1024,
    plan: FaultPlan | None = None,
    engine: str = "events",
    racks: int = 1,
    mix_cache=None,
    observability: str = "full",
) -> MixResult:
    """Play *trace* through a shared cluster under *scheduler*.

    The shared cluster is paper-shaped but with fewer slots per slave by
    default (8 map / 4 reduce), so a trace of modest scale actually
    contends for slots the way a loaded production cluster does.  With
    ``racks > 1`` the shared cluster (and each solo shadow) gets a
    uniform multi-rack topology, enabling rack-aware placement,
    three-level delay scheduling and rack-level fault plans.

    ``engine`` selects the dispatch engine and run mode:

    * ``"fast"`` — the indexed fast path
      (:class:`~repro.perf.clusterpath.FastMultiJobCluster`), event-bus
      run.  Bit-identical to ``"reference"`` by contract.
    * ``"reference"`` — the straight-line reference loop, event-bus run.
    * ``"events"`` — alias of ``"reference"`` (the historical default).
    * ``"legacy"`` — the reference loop without an event bus.

    ``mix_cache`` (a :class:`~repro.core.simcache.MixCache`) memoises
    the whole :class:`MixOutcome` on disk, content-addressed by trace,
    scheduler config, fault plan, topology and cluster code digest; on a
    warm hit the mix is not simulated at all.
    """
    from repro.workloads.base import workload

    engines = {
        "fast": "events",
        "reference": "events",
        "events": "events",
        "legacy": "legacy",
    }
    if engine not in engines:
        raise ValueError(
            f"unknown engine {engine!r} "
            "(want fast, reference, events or legacy)"
        )
    run_engine = engines[engine]
    shared = make_cluster(
        num_slaves=num_slaves,
        map_slots=map_slots,
        reduce_slots=reduce_slots,
        block_size=block_size,
        racks=racks,
    )
    if engine == "fast":
        from repro.perf.clusterpath import FastMultiJobCluster

        multi = FastMultiJobCluster(
            shared, scheduler, plan=plan, observability=observability
        )
    else:
        multi = MultiJobCluster(
            shared, scheduler, plan=plan, observability=observability
        )
    ideals: dict[int, float] = {}
    outputs: dict[int, object] = {}
    chains: dict[int, tuple[str, ...]] = {}
    # Solo-shadow runs are deterministic functions of (workload, scale)
    # on a fresh cluster, so identical trace jobs — the common case in
    # arrival-process traces — share one shadow run.
    solo: dict[tuple[str, float], tuple[float, object, list]] = {}
    for tjob in trace.jobs:
        key = (tjob.workload, tjob.scale)
        if key not in solo:
            shadow = make_cluster(
                num_slaves=num_slaves,
                map_slots=map_slots,
                reduce_slots=reduce_slots,
                block_size=block_size,
                racks=racks,
            )
            run = workload(tjob.workload).run(scale=tjob.scale, cluster=shadow)
            solo[key] = (
                run.duration_s,
                run.output,
                [result.work for result in run.job_results],
            )
        ideal_s, output, works = solo[key]
        ideals[tjob.index] = ideal_s
        outputs[tjob.index] = output
        chain = multi.submit_chain(
            works,
            arrival_s=tjob.arrival_s,
            user=tjob.user,
            pool=tjob.pool,
            id_prefix=f"t{tjob.index:03d}",
        )
        chains[tjob.index] = tuple(job.job_id for job in chain)
    if mix_cache is not None:
        outcome = mix_cache.run(multi, engine=run_engine)
    else:
        outcome = multi.run(engine=run_engine)
    reports = []
    for tjob in trace.jobs:
        stage_reports = [outcome.report(job_id) for job_id in chains[tjob.index]]
        timelines = [r.timeline for r in stage_reports if r.timeline is not None]
        reports.append(
            TenantJobReport(
                trace_job=tjob,
                job_ids=chains[tjob.index],
                first_launch_s=min(r.first_launch_s for r in stage_reports),
                finished_s=max(r.finished_s for r in stage_reports),
                ideal_s=ideals[tjob.index],
                maps_node_local=sum(t.maps_node_local for t in timelines),
                maps_rack_local=sum(t.maps_rack_local for t in timelines),
                maps_off_rack=sum(t.maps_off_rack for t in timelines),
            )
        )
    return MixResult(
        scheduler=multi.scheduler.name,
        trace=trace,
        reports=reports,
        outcome=outcome,
        outputs=outputs,
    )


# -- LLC co-location characterization -----------------------------------------


@dataclass
class ColocationReport:
    """Shared-LLC characterization of one node's busiest instant."""

    time_s: float
    node: str
    workloads: tuple[str, ...]
    slowdowns: dict[str, float]
    solo_ipc: dict[str, float]

    def worst(self) -> tuple[str, float]:
        name = max(self.slowdowns, key=self.slowdowns.get)
        return name, self.slowdowns[name]

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "node": self.node,
            "workloads": list(self.workloads),
            "slowdowns": dict(self.slowdowns),
            "solo_ipc": dict(self.solo_ipc),
        }


def characterize_colocation(
    mix: MixResult,
    instructions: int = 20_000,
    machine_scale: int = 8,
    seed: int = 0,
) -> ColocationReport | None:
    """Characterize the mix's most co-located (node, instant) under a
    shared LLC.

    Finds the node/instant where the most *distinct workloads* have tasks
    resident at once, builds each workload's trace spec, and runs them
    through :class:`repro.uarch.multicore.MultiCoreSystem`.  Returns
    ``None`` when no two distinct workloads ever co-reside.
    """
    from repro.uarch.config import scaled_machine
    from repro.uarch.multicore import MultiCoreSystem
    from repro.workloads.base import workload

    owner: dict[str, str] = {}
    for report in mix.reports:
        for job_id in report.job_ids:
            owner[job_id] = report.trace_job.workload
    best: tuple[int, float, str, tuple[str, ...]] | None = None
    for interval in mix.outcome.task_intervals:
        t = interval.start_s
        resident = sorted(
            {
                owner[iv.job_id]
                for iv in mix.outcome.task_intervals
                if iv.node == interval.node and iv.start_s <= t < iv.end_s
            }
        )
        key = (len(resident), -t, interval.node, tuple(resident))
        if best is None or key > best:
            best = key
    if best is None or best[0] < 2:
        return None
    count, neg_t, node, names = best
    specs = [
        workload(name).trace_spec(instructions, seed=seed).scaled(machine_scale)
        for name in names
    ]
    result = MultiCoreSystem(scaled_machine(machine_scale)).run_colocated(specs)
    return ColocationReport(
        time_s=-neg_t,
        node=node,
        workloads=tuple(names),
        slowdowns=dict(result.slowdowns),
        solo_ipc={name: result.solo[name].ipc() for name in names},
    )
