"""Tests for the multi-core consolidation model."""

from dataclasses import replace

import pytest

from repro.uarch.config import CacheConfig, scaled_machine
from repro.uarch.multicore import MultiCoreSystem
from repro.uarch.trace import MemoryRegion, TraceSpec

#: Scaled machine with a 384 KB LLC so the test working sets exercise
#: capacity contention within short traces.
MACHINE = replace(
    scaled_machine(8), l3=CacheConfig("L3", 384 * 1024, 16, 64, hit_latency=38)
)


def cache_friendly(name="friendly", n=100_000):
    """128 KB hot set: two of these coexist in the 384 KB LLC, but a
    streaming antagonist evicts the set between revisits."""
    return TraceSpec(
        name,
        n,
        code_footprint=4 * 1024,
        kernel_fraction=0.0,
        regions=(MemoryRegion("hot", 128 << 10, 1.0, "random", burst=4),),
    )


def thrasher(name="thrasher", n=100_000):
    """Line-per-access streaming antagonist: floods LLC and DRAM."""
    return TraceSpec(
        name,
        n,
        code_footprint=4 * 1024,
        kernel_fraction=0.0,
        load_fraction=0.4,
        store_fraction=0.15,
        regions=(MemoryRegion("stream", 512 << 20, 1.0, "strided", stride=64),),
    )


class TestMultiCore:
    def test_solo_is_deterministic(self):
        system = MultiCoreSystem(MACHINE)
        spec = cache_friendly(n=30_000)
        a = system.run_solo(spec)
        b = system.run_solo(spec)
        assert a.cycles == b.cycles

    def test_friendly_pair_coexists(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly("a"), cache_friendly("b")])
        # Two sets that fit the LLC together: negligible interference.
        assert result.slowdown("a") < 1.15
        assert result.slowdown("b") < 1.15

    def test_thrasher_hurts_cache_friendly_workload(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly(), thrasher()])
        assert result.slowdown("friendly") > 1.5

    def test_friendly_pair_interferes_less_than_thrasher_pair(self):
        system = MultiCoreSystem(MACHINE)
        pair = system.run_colocated([cache_friendly("a"), cache_friendly("b")])
        with_thrasher = system.run_colocated([cache_friendly("a"), thrasher("b")])
        assert with_thrasher.slowdown("a") > pair.slowdown("a")

    def test_victim_l3_hit_ratio_collapses_under_thrashing(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly(), thrasher()])
        solo_ratio = result.solo["friendly"].l3_hit_ratio_of_l2_misses()
        shared_ratio = result.shared["friendly"].l3_hit_ratio_of_l2_misses()
        assert solo_ratio > 0.8
        assert shared_ratio < solo_ratio - 0.3

    def test_worst_reports_largest_slowdown(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly(), thrasher()])
        name, value = result.worst()
        assert value == max(result.slowdowns.values())
        assert name in ("friendly", "thrasher")

    def test_single_workload_colocation_is_near_solo(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly()])
        assert result.slowdown("friendly") == pytest.approx(1.0, abs=0.25)

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            MultiCoreSystem(MACHINE).run_colocated([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            MultiCoreSystem(MACHINE).run_colocated([thrasher("x"), thrasher("x")])

    def test_shared_results_cover_all_workloads(self):
        system = MultiCoreSystem(MACHINE)
        result = system.run_colocated([cache_friendly("a"), thrasher("b")])
        assert set(result.shared) == {"a", "b"}
        assert all(r.instructions > 0 for r in result.shared.values())
