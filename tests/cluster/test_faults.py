"""Tests for the resilience subsystem: fault injection and recovery."""

import pytest

from repro.cluster.attempts import (
    AttemptState,
    DataLossError,
    JobFailedError,
    RetryPolicy,
)
from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.faults import FaultPlan, FaultyCluster


def work(maps=16, cpu=1.0, reduces=4, slaves=4, replicas=1) -> JobWork:
    """A balanced job: each map's input is placed round-robin on the slaves,
    so the fault-free schedule is data-local (like a real HDFS layout)."""
    return JobWork(
        "job",
        maps=[
            MapWork(
                1 << 20,
                cpu,
                1 << 20,
                preferred_nodes=tuple(
                    f"slave{(i + r) % slaves + 1}" for r in range(replicas)
                ),
            )
            for i in range(maps)
        ],
        reduces=[ReduceWork(4 << 20, 0.2, 1 << 20) for _ in range(reduces)],
    )


def run(plan: FaultPlan, slaves=4, **work_kw):
    cluster = make_cluster(slaves)
    return FaultyCluster(cluster, plan).run_job(work(slaves=slaves, **work_kw))


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(failure_point=1.5)
        with pytest.raises(ValueError):
            FaultPlan(failure_point=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)

    def test_failure_point_bounds_are_inclusive(self):
        assert FaultPlan(failure_point=0.0).failure_point == 0.0
        assert FaultPlan(failure_point=1.0).failure_point == 1.0
        assert FaultPlan(straggler_factor=1.0).straggler_factor == 1.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(map_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(reduce_failure_rate=-0.5)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(map_failures=(-1,))
        with pytest.raises(ValueError):
            FaultPlan(map_failure_counts=((0, 0),))
        with pytest.raises(ValueError):
            FaultPlan(shuffle_failures=((0, 0, 0),))
        with pytest.raises(ValueError):
            FaultPlan(node_crashes=(("slave1", -1.0),))
        with pytest.raises(ValueError):
            FaultPlan(lost_replicas=((-1, "slave1"),))

    def test_random_plan_rate(self):
        plan = FaultPlan.random_plan(1000, failure_rate=0.1, seed=1)
        assert 50 < len(plan.map_failures) < 200

    def test_random_plan_rate_extremes(self):
        assert FaultPlan.random_plan(50, failure_rate=0.0).map_failures == ()
        assert len(FaultPlan.random_plan(50, failure_rate=1.0).map_failures) == 50

    def test_random_plan_deterministic(self):
        a = FaultPlan.random_plan(100, failure_rate=0.2, seed=7)
        b = FaultPlan.random_plan(100, failure_rate=0.2, seed=7)
        assert a.map_failures == b.map_failures

    def test_random_plan_seed_changes_sample(self):
        a = FaultPlan.random_plan(100, failure_rate=0.2, seed=7)
        b = FaultPlan.random_plan(100, failure_rate=0.2, seed=8)
        assert a.map_failures != b.map_failures

    def test_random_plan_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.random_plan(10, failure_rate=2.0)

    def test_injects_faults_flag(self):
        assert not FaultPlan().injects_faults
        assert FaultPlan(map_failures=(1,)).injects_faults
        assert FaultPlan(node_crashes=(("slave1", 1.0),)).injects_faults


class TestFailures:
    def test_no_faults_matches_plain_cluster_exactly(self):
        plain = make_cluster(4).run_job(work())
        faulty = run(FaultPlan())
        assert faulty.timeline.duration_s == plain.duration_s
        assert faulty.timeline.disk_writes_per_second == plain.disk_writes_per_second
        assert faulty.timeline.network_bytes == plain.network_bytes
        assert faulty.failed_attempts == 0
        assert faulty.killed_attempts == 0

    def test_failures_counted_and_cost_time(self):
        baseline = run(FaultPlan())
        faulty = run(FaultPlan(map_failures=(0, 3, 7)))
        assert faulty.failed_attempts == 3
        assert faulty.failed_map_attempts == 3
        assert faulty.wasted_seconds > 0
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s

    def test_retry_prefers_a_different_node(self):
        faulty = run(FaultPlan(map_failures=(2,)))
        attempts = [a for a in faulty.attempts if a.task_id == "m_000002"]
        failed = [a for a in attempts if a.state is AttemptState.FAILED]
        succeeded = [a for a in attempts if a.state is AttemptState.SUCCEEDED]
        assert len(failed) == 1 and len(succeeded) == 1
        assert succeeded[0].node != failed[0].node

    def test_retry_backs_off_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        faulty = run(FaultPlan(map_failure_counts=((0, 2),), policy=policy))
        attempts = [a for a in faulty.attempts if a.task_id == "m_000000"]
        assert [a.state for a in attempts] == [
            AttemptState.FAILED, AttemptState.FAILED, AttemptState.SUCCEEDED,
        ]
        first_gap = attempts[1].start_s - attempts[0].end_s
        second_gap = attempts[2].start_s - attempts[1].end_s
        assert first_gap >= 0.5 - 1e-9
        assert second_gap >= 1.0 - 1e-9

    def test_reduce_failures_counted(self):
        baseline = run(FaultPlan())
        faulty = run(FaultPlan(reduce_failures=(1,)))
        assert faulty.failed_reduce_attempts == 1
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s

    def test_map_exhaustion_aborts_the_job(self):
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(JobFailedError) as excinfo:
            run(FaultPlan(map_failure_counts=((5, 3),), policy=policy))
        assert excinfo.value.task_id == "m_000005"
        assert excinfo.value.attempts == 3

    def test_reduce_exhaustion_aborts_the_job(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(JobFailedError) as excinfo:
            run(FaultPlan(reduce_failure_counts=((0, 2),), policy=policy))
        assert excinfo.value.task_id == "r_000000"

    def test_rate_based_failures_are_seed_deterministic(self):
        a = run(FaultPlan(map_failure_rate=0.3, seed=42))
        b = run(FaultPlan(map_failure_rate=0.3, seed=42))
        assert a.failed_attempts == b.failed_attempts
        assert a.timeline.duration_s == b.timeline.duration_s

    def test_failed_job_still_completes_all_reduces(self):
        faulty = run(FaultPlan(map_failures=(1,)))
        assert faulty.timeline.reduce_tasks == 4
        assert faulty.timeline.end_s >= faulty.timeline.map_phase_end_s


class TestBlacklist:
    def test_repeatedly_failing_node_is_blacklisted(self):
        # Every map prefers slave1, and the first eight first-attempts all
        # fail there — past the threshold the node must stop getting work.
        job = JobWork(
            "pinned",
            maps=[
                MapWork(1 << 20, 1.0, 1 << 20, preferred_nodes=("slave1",))
                for _ in range(16)
            ],
            reduces=[ReduceWork(4 << 20, 0.2, 1 << 20) for _ in range(4)],
        )
        plan = FaultPlan(
            map_failures=tuple(range(8)),
            policy=RetryPolicy(node_failure_threshold=4),
        )
        faulty = FaultyCluster(make_cluster(4), plan).run_job(job)
        assert "slave1" in faulty.blacklisted_nodes
        threshold_time = sorted(
            a.end_s for a in faulty.attempts
            if a.state is AttemptState.FAILED and a.node == "slave1"
        )[3]
        late_starts = [
            a for a in faulty.attempts
            if a.node == "slave1" and a.start_s > threshold_time
        ]
        assert late_starts == []


class TestStragglers:
    def test_straggler_without_speculation_drags_the_job(self):
        healthy = run(FaultPlan())
        dragged = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=False,
            )
        )
        assert dragged.timeline.duration_s > 1.5 * healthy.timeline.duration_s

    def test_speculation_bounds_straggler_damage(self):
        no_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=False,
            )
        )
        with_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=True,
            )
        )
        assert with_spec.timeline.duration_s < no_spec.timeline.duration_s
        assert with_spec.speculative_attempts > 0
        assert with_spec.speculative_wins > 0

    def test_speculation_wastes_work(self):
        with_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=True,
            )
        )
        assert with_spec.wasted_seconds > 0

    def test_single_node_cluster_cannot_speculate(self):
        result = run(
            FaultPlan(straggler_nodes=("slave1",), speculative_execution=True),
            slaves=1,
        )
        assert result.speculative_wins == 0

    def test_all_straggler_cluster_has_no_backup_targets(self):
        result = run(
            FaultPlan(
                straggler_nodes=("slave1", "slave2", "slave3", "slave4"),
                straggler_factor=4.0,
            )
        )
        assert result.speculative_wins == 0

    def test_reduces_speculate_off_stragglers_too(self):
        result = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=True,
            )
        )
        reduce_specs = [
            a for a in result.attempts
            if a.task_id.startswith("r_") and a.state is AttemptState.SUCCEEDED
            and a.node != "slave1"
        ]
        # reduce 0 was placed on the straggler (round-robin) but must not
        # finish there when a backup can win
        assert result.speculative_attempts >= 1
        assert reduce_specs


class TestNodeCrash:
    # Crash scenarios place inputs with 2 replicas: with a single replica
    # the crash legitimately destroys the only copy of the dead node's
    # splits and the job dies with DataLossError (tested below).

    def plan(self, at=2.0, **kw):
        kw.setdefault("policy", RetryPolicy(heartbeat_timeout_s=0.5))
        return FaultPlan(node_crashes=(("slave2", at),), **kw)

    def test_crash_mid_map_phase_recovers_and_completes(self):
        baseline = run(FaultPlan(), replicas=2)
        faulty = run(
            self.plan(at=baseline.timeline.map_phase_end_s * 0.5), replicas=2
        )
        assert faulty.nodes_crashed == ("slave2",)
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s
        assert faulty.killed_attempts + faulty.maps_reexecuted > 0

    def test_crash_with_single_replica_loses_data(self):
        with pytest.raises(DataLossError):
            run(self.plan(at=0.2))

    def test_completed_map_outputs_on_dead_node_rerun(self):
        # Crash well into the map phase: slave2 has finished at least one
        # wave whose output dies with it.
        baseline = run(FaultPlan(), cpu=0.2, replicas=2)
        crash_at = baseline.timeline.map_phase_end_s * 0.7
        faulty = run(self.plan(at=crash_at), cpu=0.2, replicas=2)
        assert faulty.maps_reexecuted > 0
        rerun = [
            a for a in faulty.attempts
            if a.reason == "map output lost with node"
        ]
        assert rerun and all(a.node != "slave2" for a in rerun)

    def test_nothing_scheduled_on_dead_node_after_detection(self):
        faulty = run(self.plan(at=1.0), replicas=2)
        for attempt in faulty.attempts:
            if attempt.node == "slave2":
                assert attempt.start_s < 1.0 + 0.5

    def test_heartbeat_timeout_delays_reexecution(self):
        slow = FaultPlan(
            node_crashes=(("slave2", 1.0),),
            policy=RetryPolicy(heartbeat_timeout_s=2.0),
        )
        faulty = run(slow, replicas=2)
        killed = [a for a in faulty.attempts if a.state is AttemptState.KILLED]
        assert killed
        task_ids = {a.task_id for a in killed}
        for task_id in task_ids:
            retries = [
                a for a in faulty.attempts
                if a.task_id == task_id and a.start_s >= 1.0
                and a.state is not AttemptState.KILLED
            ]
            assert all(a.start_s >= 3.0 for a in retries)

    def test_crashed_node_stays_dead_for_later_jobs(self):
        cluster = make_cluster(4)
        faulty = FaultyCluster(cluster, self.plan(at=1.0))
        first = faulty.run_job(work(replicas=2))
        assert first.nodes_crashed == ("slave2",)
        second = faulty.run_job(work(replicas=2))
        assert all(a.node != "slave2" for a in second.attempts)
        assert second.nodes_crashed == ()


class TestShuffleFaults:
    def test_fetch_failures_retry_with_backoff(self):
        baseline = run(FaultPlan())
        faulty = run(FaultPlan(shuffle_failures=((0, 0, 2),)))
        assert faulty.shuffle_fetch_failures == 2
        assert faulty.fetch_escalations == 0
        assert faulty.wasted_seconds > 0
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s

    def test_fetch_failures_escalate_to_map_rerun(self):
        policy = RetryPolicy(max_fetch_retries=3)
        faulty = run(
            FaultPlan(shuffle_failures=((0, 0, 4),), policy=policy)
        )
        assert faulty.shuffle_fetch_failures == 3
        assert faulty.fetch_escalations == 1
        rerun = [
            a for a in faulty.attempts if a.reason == "too many fetch failures"
        ]
        assert rerun

    def test_fetch_failures_charge_the_network(self):
        clean = run(FaultPlan())
        faulty = run(FaultPlan(shuffle_failures=((0, 1, 2),)))
        assert faulty.timeline.network_bytes > clean.timeline.network_bytes


class TestReplicaLoss:
    def test_lost_replica_forces_remote_read(self):
        baseline = run(FaultPlan(), replicas=2)
        faulty = run(
            FaultPlan(lost_replicas=((0, "slave1"),)), replicas=2
        )
        # map 0 preferred slave1+slave2; its slave1 copy is gone, so the
        # job still completes (reading the surviving replica).
        assert faulty.failed_attempts == 0
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s

    def test_all_replicas_lost_kills_the_job(self):
        with pytest.raises(DataLossError):
            run(
                FaultPlan(lost_replicas=((0, "slave1"), (0, "slave2"))),
                replicas=2,
            )


class TestAccountingSurfaces:
    def test_faulty_timeline_quacks_like_a_timeline(self):
        faulty = run(FaultPlan(map_failures=(0,)))
        assert faulty.duration_s == faulty.timeline.duration_s
        assert faulty.end_s == faulty.timeline.end_s
        assert faulty.map_phase_end_s == faulty.timeline.map_phase_end_s
        assert faulty.job_name == "job"
        assert faulty.map_tasks == 16 and faulty.reduce_tasks == 4
        assert set(faulty.disk_writes_per_second) == {
            "slave1", "slave2", "slave3", "slave4",
        }

    def test_accounting_dict_is_complete(self):
        faulty = run(FaultPlan(map_failures=(0,), shuffle_failures=((0, 0, 1),)))
        accounting = faulty.accounting()
        assert accounting["failed_attempts"] == 1
        assert accounting["shuffle_fetch_failures"] == 1
        assert "wasted_seconds" in accounting

    def test_procfs_exposes_resilience_counters(self):
        cluster = make_cluster(4)
        faulty = FaultyCluster(
            cluster,
            FaultPlan(
                map_failures=(0, 1),
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
            ),
        )
        result = faulty.run_job(work())
        failed = sum(n.procfs.tasks_failed for n in cluster.slaves)
        speculative = sum(n.procfs.tasks_speculative for n in cluster.slaves)
        assert failed == result.failed_attempts
        assert speculative == result.speculative_attempts
        line = cluster.slaves[0].procfs.render_resilience()
        assert "tasks_failed" in line and "fetch_failures" in line
