"""The local MapReduce engine: functional execution + work derivation.

``LocalEngine.execute`` runs a :class:`~repro.mapreduce.job.MapReduceJob`
over real records through the full Hadoop pipeline —

    map → combine → partition → sort → shuffle → merge → reduce

— collecting :class:`~repro.mapreduce.counters.JobCounters` along the way,
and (when given a cluster) derives the per-task
:class:`~repro.cluster.cluster.JobWork` and schedules it for a timeline.
Functional output and timing therefore describe the *same* execution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cluster.cluster import HadoopCluster, JobTimeline, JobWork, MapWork, ReduceWork
from repro.cluster.faults import FaultyCluster, FaultyTimeline
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.io import DistributedInput, record_bytes, records_bytes
from repro.mapreduce.job import MapReduceJob


@dataclass
class JobResult:
    """Everything one job execution produced.

    When the job was scheduled through a :class:`FaultyCluster`, the
    timeline is a :class:`FaultyTimeline` carrying the resilience
    accounting alongside the usual timing fields.
    """

    job_name: str
    output: list[tuple[object, object]]
    reducer_outputs: list[list[tuple[object, object]]]
    counters: JobCounters
    work: JobWork
    timeline: JobTimeline | FaultyTimeline | None = None

    def output_dict(self) -> dict:
        return dict(self.output)


@dataclass(frozen=True)
class EngineCheckpoint:
    """Restorable snapshot of a :class:`LocalEngine`'s mutable state."""

    default_splits: int
    next_auto_input: int


class LocalEngine:
    """Executes jobs in-process, one split at a time."""

    def __init__(self, default_splits: int = 8) -> None:
        if default_splits <= 0:
            raise ValueError("default_splits must be positive")
        self.default_splits = default_splits
        self._next_auto_input = 0

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the engine so an experiment can resume deterministically.

        The engine's only cross-job state is the auto-input name counter;
        restoring it makes re-executed jobs reuse the same HDFS input
        names (paired with :meth:`HadoopCluster.checkpoint
        <repro.cluster.cluster.HadoopCluster.checkpoint>`, which restores
        the files those names refer to).
        """
        return EngineCheckpoint(
            default_splits=self.default_splits,
            next_auto_input=self._next_auto_input,
        )

    def restore(self, cp: EngineCheckpoint) -> None:
        self.default_splits = cp.default_splits
        self._next_auto_input = cp.next_auto_input

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        job: MapReduceJob,
        inputs,
        cluster: HadoopCluster | FaultyCluster | None = None,
        input_name: str | None = None,
    ) -> JobResult:
        """Run *job* over *inputs*.

        ``inputs`` is a :class:`DistributedInput` or a plain sequence of
        ``(key, value)`` records.  With a cluster, plain records are first
        put into its HDFS (under ``input_name`` or an auto name) so map
        splits get block placement; the returned result then carries the
        scheduled :class:`JobTimeline`.  A :class:`FaultyCluster` works in
        place of a plain cluster: the functional output is unchanged while
        the timeline reflects the injected faults (and may raise
        :class:`~repro.cluster.attempts.JobFailedError` when a task
        exhausts its attempts).
        """
        dist = self._as_distributed(inputs, cluster, input_name)
        counters = JobCounters()
        num_reduces = job.conf.num_reduces
        # mapred.compress.map.output: intermediate bytes shrink on the
        # wire/disk; compression work is charged to the CPU cost model.
        conf = job.conf
        wire_ratio = conf.compression_ratio if conf.compress_map_output else 1.0
        codec_cost = conf.compression_cost_per_byte if conf.compress_map_output else 0.0

        # ---- map phase (+ combine + partition) ----
        partitions: list[list[tuple[object, object]]] = [[] for _ in range(num_reduces)]
        map_only_output: list[tuple[object, object]] = []
        map_works: list[MapWork] = []
        for split_index in range(dist.num_splits):
            records = dist.split(split_index)
            out = self._run_map_split(job, records, counters)
            split_output_bytes = records_bytes(out)
            if num_reduces == 0:
                map_only_output.extend(out)
            else:
                for key, value in out:
                    partitions[job.partitioner(key, num_reduces)].append((key, value))
            wire_bytes = int(split_output_bytes * wire_ratio)
            counters.spilled_records += len(out)
            counters.spilled_bytes += wire_bytes
            map_works.append(
                MapWork(
                    input_bytes=dist.split_bytes(split_index),
                    cpu_seconds=(
                        len(records) * job.conf.map_cost_per_record
                        + dist.split_bytes(split_index) * job.conf.map_cost_per_byte
                        + split_output_bytes * codec_cost
                    ),
                    output_bytes=wire_bytes,
                    preferred_nodes=dist.split_locations(split_index),
                    split=dist.split_ref(split_index),
                )
            )

        # ---- reduce phase ----
        reducer_outputs: list[list[tuple[object, object]]] = []
        reduce_works: list[ReduceWork] = []
        if num_reduces:
            for partition in partitions:
                raw_bytes = records_bytes(partition)
                shuffle_bytes = int(raw_bytes * wire_ratio)
                counters.shuffle_bytes += shuffle_bytes
                counters.reduce_shuffle_bytes.append(shuffle_bytes)
                out = self._run_reduce_partition(job, partition, counters)
                out_bytes = records_bytes(out)
                counters.reduce_output_bytes += out_bytes
                reducer_outputs.append(out)
                reduce_works.append(
                    ReduceWork(
                        shuffle_bytes=shuffle_bytes,
                        cpu_seconds=(
                            len(partition) * job.conf.reduce_cost_per_record
                            + raw_bytes * job.conf.reduce_cost_per_byte
                            + raw_bytes * codec_cost  # decompression
                        ),
                        output_bytes=out_bytes,
                    )
                )
            output = [record for part in reducer_outputs for record in part]
        else:
            output = map_only_output
            counters.reduce_output_bytes = records_bytes(output)

        work = JobWork(name=job.conf.name, maps=map_works, reduces=reduce_works)
        timeline = cluster.run_job(work) if cluster is not None else None
        return JobResult(
            job_name=job.conf.name,
            output=output,
            reducer_outputs=reducer_outputs,
            counters=counters,
            work=work,
            timeline=timeline,
        )

    # -- internals ------------------------------------------------------------

    def _as_distributed(self, inputs, cluster, input_name) -> DistributedInput:
        if isinstance(inputs, DistributedInput):
            return inputs
        records = list(inputs)
        if cluster is not None:
            if input_name is None:
                input_name = f"auto-input-{self._next_auto_input}"
                self._next_auto_input += 1
            return DistributedInput.put(cluster.hdfs, input_name, records)
        return _LocalChunks(records, self.default_splits)

    def _run_map_split(self, job, records, counters: JobCounters):
        out: list[tuple[object, object]] = []
        for key, value in records:
            counters.map_input_records += 1
            counters.map_input_bytes += record_bytes(key, value)
            for out_key, out_value in job.mapper(key, value):
                out.append((out_key, out_value))
        counters.map_output_records += len(out)
        counters.map_output_bytes += records_bytes(out)
        if job.combiner is not None and out:
            out = self._combine(job, out, counters)
        return out

    def _combine(self, job, records, counters: JobCounters):
        counters.combine_input_records += len(records)
        grouped = self._group(records, job.conf.sort_keys)
        combined: list[tuple[object, object]] = []
        for key, values in grouped:
            combined.extend(job.combiner(key, values))
        counters.combine_output_records += len(combined)
        return combined

    def _run_reduce_partition(self, job, partition, counters: JobCounters):
        counters.reduce_input_records += len(partition)
        grouped = self._group(partition, job.conf.sort_keys)
        out: list[tuple[object, object]] = []
        for key, values in grouped:
            counters.reduce_input_groups += 1
            out.extend(job.reducer(key, values))
        counters.reduce_output_records += len(out)
        return out

    @staticmethod
    def _group(records, sort_keys: bool):
        """Group records by key, sorted when the job requests it."""
        if sort_keys:
            ordered = sorted(records, key=lambda kv: kv[0])
        else:
            # Stable grouping without a total order on keys.
            buckets: dict[object, list] = {}
            for key, value in records:
                buckets.setdefault(key, []).append(value)
            return [(key, values) for key, values in buckets.items()]
        grouped = []
        for key, group in itertools.groupby(ordered, key=lambda kv: kv[0]):
            grouped.append((key, [value for _, value in group]))
        return grouped


class _LocalChunks:
    """DistributedInput-shaped wrapper for engine runs without a cluster."""

    def __init__(self, records, num_splits: int) -> None:
        self.records = records
        self.num_splits = max(1, min(num_splits, len(records)) if records else 1)

    def split(self, index: int):
        total = len(self.records)
        start = total * index // self.num_splits
        end = total * (index + 1) // self.num_splits
        return self.records[start:end]

    def split_bytes(self, index: int) -> int:
        return records_bytes(self.split(index))

    def split_locations(self, index: int) -> tuple[str, ...]:
        return ()

    def split_ref(self, index: int) -> tuple[str, int] | None:
        return None
