"""Fast engine ≡ reference engine, bit for bit.

The fast path (repro.perf.fastpath) re-implements trace generation and the
core timing loop in batched form; its entire value rests on never changing
a counter.  These tests enforce that contract:

* a hypothesis property over randomized TraceSpecs and machine variants
  asserting every SimulationResult field matches exactly,
* batch-stream equivalence (iter_batches ≡ the scalar iterator),
* a fixed equivalence matrix over representative suite workloads and the
  ablation machines (virtualized, hugepages, prefetch off, each predictor).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.suite import DCBench
from repro.perf.fastpath import run_fast
from repro.uarch.config import (
    hugepage_machine,
    scaled_machine,
    virtualized_machine,
)
from repro.uarch.pipeline import Core, simulate
from repro.uarch.trace import MemoryRegion, SyntheticTrace, TraceSpec

SCALED = scaled_machine(8)


def machine_variant(kind: str):
    if kind == "base":
        return SCALED
    if kind == "virt":
        return virtualized_machine(SCALED)
    if kind == "huge":
        return hugepage_machine(SCALED)
    if kind == "noprefetch":
        return dataclasses.replace(SCALED, name="nopf", prefetch=False)
    # predictor kinds
    return dataclasses.replace(
        SCALED, name=kind, core=dataclasses.replace(SCALED.core, predictor=kind)
    )


regions_strategy = st.lists(
    st.tuples(
        st.sampled_from(["sequential", "strided", "random", "pointer"]),
        st.integers(10, 22),  # log2 size
        st.floats(0.1, 1.0),
    ),
    min_size=1,
    max_size=3,
).map(
    lambda items: tuple(
        MemoryRegion(
            name=f"r{i}",
            size_bytes=1 << bits,
            weight=weight,
            pattern=pattern,
            stride=256 if pattern == "strided" else 64,
        )
        for i, (pattern, bits, weight) in enumerate(items)
    )
)

spec_strategy = st.builds(
    TraceSpec,
    name=st.just("prop"),
    instructions=st.integers(500, 4000),
    seed=st.integers(0, 2**31 - 1),
    load_fraction=st.floats(0.0, 0.35),
    store_fraction=st.floats(0.0, 0.2),
    fp_fraction=st.floats(0.0, 0.2),
    mul_fraction=st.floats(0.0, 0.1),
    div_fraction=st.floats(0.0, 0.02),
    mean_block_len=st.floats(2.0, 20.0),
    code_footprint=st.integers(4 * 1024, 512 * 1024),
    call_fraction=st.floats(0.0, 0.3),
    indirect_fraction=st.floats(0.0, 0.3),
    loop_branch_fraction=st.floats(0.0, 0.9),
    mean_trip_count=st.floats(1.0, 40.0),
    branch_regularity=st.floats(0.0, 1.0),
    taken_bias=st.floats(0.0, 1.0),
    regions=regions_strategy,
    dep_mean=st.floats(1.0, 12.0),
    dep_density=st.floats(0.0, 1.0),
    partial_register_ratio=st.floats(0.0, 0.3),
    kernel_fraction=st.floats(0.0, 0.3),
    kernel_episode_len=st.integers(1, 300),
)


class TestFastEqualsReference:
    @settings(max_examples=30, deadline=None)
    @given(
        spec=spec_strategy,
        machine_kind=st.sampled_from(
            ["base", "virt", "huge", "noprefetch", "bimodal", "gshare", "tournament"]
        ),
    )
    def test_property_bit_identical(self, spec, machine_kind):
        machine = machine_variant(machine_kind)
        ref = Core(machine).run(SyntheticTrace(spec))
        fast = run_fast(Core(machine), SyntheticTrace(spec))
        assert dataclasses.asdict(ref) == dataclasses.asdict(fast)

    @settings(max_examples=15, deadline=None)
    @given(spec=spec_strategy)
    def test_batch_stream_equals_scalar_stream(self, spec):
        scalar_trace = SyntheticTrace(spec)
        scalar = scalar_trace.materialize()
        batch_trace = SyntheticTrace(spec)
        batched = [
            uop for batch in batch_trace.iter_batches(batch_size=777)
            for uop in batch.micro_ops()
        ]
        assert len(scalar) == len(batched) == spec.instructions
        for a, b in zip(scalar, batched):
            assert (a.op, a.pc, a.addr, a.taken, a.target, a.dep1, a.dep2, a.kernel) == (
                b.op, b.pc, b.addr, b.taken, b.target, b.dep1, b.dep2, b.kernel
            )
        assert scalar_trace.stats == batch_trace.stats


#: The CI perf tier's equivalence matrix: one workload per family.
MATRIX_WORKLOADS = [
    "WordCount",
    "K-means",
    "Media Streaming",
    "SPECINT",
    "HPCC-STREAM",
    "HPCC-RandomAccess",
]


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("name", MATRIX_WORKLOADS)
    def test_suite_workload(self, name):
        entry = DCBench.default().entry(name)
        spec = entry.trace_spec(30_000).scaled(8)
        ref = Core(SCALED).run(SyntheticTrace(spec))
        fast = run_fast(Core(SCALED), SyntheticTrace(spec))
        assert dataclasses.asdict(ref) == dataclasses.asdict(fast)

    @pytest.mark.parametrize(
        "kind", ["virt", "huge", "noprefetch", "bimodal", "gshare", "tournament"]
    )
    def test_machine_variants(self, kind):
        machine = machine_variant(kind)
        spec = DCBench.default().entry("Sort").trace_spec(20_000).scaled(8)
        ref = Core(machine).run(SyntheticTrace(spec))
        fast = run_fast(Core(machine), SyntheticTrace(spec))
        assert dataclasses.asdict(ref) == dataclasses.asdict(fast)

    def test_core_state_writeback(self):
        """After run_fast the core's caches/predictors hold the same state
        as after a reference run: a second run on the reused core matches."""
        spec = DCBench.default().entry("Grep").trace_spec(10_000).scaled(8)
        core_ref = Core(SCALED)
        core_fast = Core(SCALED)
        first_ref = core_ref.run(SyntheticTrace(spec))
        first_fast = run_fast(core_fast, SyntheticTrace(spec))
        assert dataclasses.asdict(first_ref) == dataclasses.asdict(first_fast)
        second_ref = core_ref.run(SyntheticTrace(spec))
        second_fast = run_fast(core_fast, SyntheticTrace(spec))
        assert dataclasses.asdict(second_ref) == dataclasses.asdict(second_fast)
        # Warm state changed the numbers (i.e. the write-back mattered).
        assert dataclasses.asdict(first_ref) != dataclasses.asdict(second_ref)


class TestSimulateDispatch:
    def test_engine_fast_on_spec(self):
        spec = TraceSpec(name="d", instructions=3000)
        assert dataclasses.asdict(simulate(spec, SCALED, engine="fast")) == (
            dataclasses.asdict(simulate(spec, SCALED, engine="reference"))
        )

    def test_engine_fast_falls_back_for_iterables(self):
        spec = TraceSpec(name="d", instructions=1000)
        uops = SyntheticTrace(spec).materialize()
        result = simulate(uops, SCALED, engine="fast")
        assert result.instructions == 1000 - 200  # warmup-excluded

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            simulate(TraceSpec(name="d", instructions=1000), SCALED, engine="warp")

    def test_run_fast_rejects_non_synthetic(self):
        with pytest.raises(TypeError):
            run_fast(Core(SCALED), [1, 2, 3])
