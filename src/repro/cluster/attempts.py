"""Task-attempt state machine (Hadoop 1.x's TaskInProgress/TaskAttempt).

Hadoop 1.x tracks every task through a sequence of *attempts*: each
attempt runs on one tasktracker and ends ``SUCCEEDED``, ``FAILED`` (the
task itself errored — counted against ``mapred.map.max.attempts`` /
``mapred.reduce.max.attempts``) or ``KILLED`` (the framework withdrew it,
e.g. the node was lost or a speculative sibling won — *not* counted).
When a task accumulates ``max_attempts`` failures the whole job aborts.

This module models that machinery for the cluster simulator:

* :class:`RetryPolicy` — the resilience knobs, named after the Hadoop 1.x
  configuration they mirror;
* :class:`TaskAttempt` / :class:`AttemptState` — one attempt's record;
* :class:`TaskAttempts` — the per-task state machine (attempt numbering,
  exponential backoff, tried-node memory, exhaustion);
* :class:`NodeBlacklist` — per-job tracker blacklisting
  (``mapred.max.tracker.failures``);
* :class:`CommitFence` — attempt-id fencing at commit time (Hadoop's
  ``canCommit``): a zombie attempt from a partitioned-then-rejoined
  tasktracker asks to commit and is refused, because the jobtracker
  granted the task to a newer attempt while the tracker was unreachable;
* :class:`NodeGraylist` — time-bounded exclusion of *flapping* nodes: a
  tasktracker that dropped off the network and came back is dodgy for a
  while, not broken forever, so it sits out a window instead of being
  blacklisted permanently;
* :class:`JobFailedError` / :class:`DataLossError` — typed job aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AttemptState(Enum):
    """Terminal states of one task attempt."""

    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"


class JobFailedError(RuntimeError):
    """A job aborted: some task exhausted its attempts (or lost its data).

    Mirrors Hadoop's ``Job failed as tasks failed`` terminal state.
    """

    def __init__(self, task_id: str, attempts: int = 0, reason: str = "") -> None:
        if attempts or reason:
            message = (
                f"job failed: task {task_id} after {attempts} attempt(s): {reason}"
            )
        else:
            # Job-level aborts (dispatch deadlock, no live nodes) carry a
            # single message rather than a task/attempt triple.
            message = task_id
        super().__init__(message)
        self.task_id = task_id
        self.attempts = attempts
        self.reason = reason


class DataLossError(JobFailedError):
    """All replicas of a task's input split are gone — the job cannot run."""


@dataclass(frozen=True)
class RetryPolicy:
    """Resilience configuration, named after the Hadoop 1.x properties.

    Attributes:
        max_attempts: failures tolerated per task before the job aborts
            (``mapred.map.max.attempts`` / ``mapred.reduce.max.attempts``,
            both 4 in stock Hadoop 1.x).
        backoff_base_s: wait before the first re-attempt of a failed task.
        backoff_factor: multiplier applied per subsequent failure
            (exponential backoff between attempts).
        prefer_different_node: retry on a node that has not yet failed
            this task when one is available (the jobtracker's behaviour).
        max_fetch_retries: shuffle fetch failures of one map output a
            reducer tolerates before reporting it to the jobtracker, which
            re-runs the map (``mapred.reduce.copy.backoff`` window).
        fetch_backoff_base_s: wait before re-fetching a failed map output,
            doubled per consecutive failure.
        node_failure_threshold: task failures on one node within a job
            before the node is blacklisted for that job
            (``mapred.max.tracker.failures``, 4 in Hadoop 1.x).
        heartbeat_timeout_s: silence after which the jobtracker declares a
            tasktracker lost (``mapred.tasktracker.expiry.interval``,
            600 s real-world; scaled to the simulator's second-scale jobs).
        graylist_window_s: how long a node that *flapped* (partitioned
            and rejoined) sits out of scheduling after it reappears — a
            soft, time-bounded exclusion, unlike the per-job blacklist.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    prefer_different_node: bool = True
    max_fetch_retries: int = 3
    fetch_backoff_base_s: float = 0.05
    node_failure_threshold: int = 4
    heartbeat_timeout_s: float = 0.5
    graylist_window_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.fetch_backoff_base_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_fetch_retries < 1:
            raise ValueError("max_fetch_retries must be at least 1")
        if self.node_failure_threshold < 1:
            raise ValueError("node_failure_threshold must be at least 1")
        if self.heartbeat_timeout_s < 0:
            raise ValueError("heartbeat timeout must be non-negative")
        if self.graylist_window_s < 0:
            raise ValueError("graylist window must be non-negative")

    def backoff_s(self, failures: int) -> float:
        """Backoff before the attempt following the *failures*-th failure."""
        if failures < 1:
            raise ValueError("backoff applies after at least one failure")
        return self.backoff_base_s * self.backoff_factor ** (failures - 1)

    def fetch_backoff_s(self, failures: int) -> float:
        """Backoff before re-fetching after *failures* consecutive misses."""
        if failures < 1:
            raise ValueError("backoff applies after at least one failure")
        return self.fetch_backoff_base_s * 2.0 ** (failures - 1)


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt of one task, Hadoop-attempt-id style."""

    task_id: str  # "m_000003" or "r_000001"
    attempt: int
    node: str
    start_s: float
    end_s: float
    state: AttemptState
    reason: str = ""

    @property
    def attempt_id(self) -> str:
        return f"attempt_{self.task_id}_{self.attempt}"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TaskAttempts:
    """State machine for one task's attempts."""

    def __init__(self, task_id: str, policy: RetryPolicy) -> None:
        self.task_id = task_id
        self.policy = policy
        self.attempts: list[TaskAttempt] = []
        self.failures = 0

    def record(
        self,
        node: str,
        start_s: float,
        end_s: float,
        state: AttemptState,
        reason: str = "",
    ) -> TaskAttempt:
        """Append one finished attempt; failures advance the failure count."""
        attempt = TaskAttempt(
            task_id=self.task_id,
            attempt=len(self.attempts),
            node=node,
            start_s=start_s,
            end_s=end_s,
            state=state,
            reason=reason,
        )
        self.attempts.append(attempt)
        if state is AttemptState.FAILED:
            self.failures += 1
        return attempt

    @property
    def tried_nodes(self) -> set[str]:
        """Nodes where this task already failed or was killed.

        Attempts orphaned by a jobtracker crash don't count: the node did
        nothing wrong, and a restarted master has no reason to avoid it.
        """
        return {
            a.node
            for a in self.attempts
            if a.state in (AttemptState.FAILED, AttemptState.KILLED)
            and a.reason != "jobtracker lost"
        }

    @property
    def exhausted(self) -> bool:
        return self.failures >= self.policy.max_attempts

    def check_exhausted(self, reason: str) -> None:
        """Abort the job if this task has burnt all its attempts."""
        if self.exhausted:
            raise JobFailedError(self.task_id, self.failures, reason)

    def next_retry_time(self, failure_time_s: float) -> float:
        """When the next attempt may start (exponential backoff)."""
        return failure_time_s + self.policy.backoff_s(self.failures)


class CommitFence:
    """Attempt-id fencing at commit time (Hadoop's ``canCommit`` check).

    The jobtracker keeps, per task, the single attempt id currently
    allowed to commit.  Scheduling an attempt *grants* it the task; when
    a tasktracker is declared lost (crash or partition) its in-flight
    attempt's grant is *revoked*, and any later attempt takes over the
    grant.  A zombie — an attempt that kept running on a partitioned
    node and asks to commit after the node rejoins — finds its id no
    longer active and is refused, so stale output can never reach the
    job's committed results.
    """

    def __init__(self) -> None:
        self._active: dict[str, int] = {}
        self.fenced_attempts: list[str] = []

    def grant(self, task_id: str, attempt: int) -> None:
        """Make *attempt* the one id allowed to commit *task_id*."""
        self._active[task_id] = attempt

    def revoke(self, task_id: str, attempt: int) -> None:
        """Withdraw *attempt*'s grant (no-op if another attempt owns it)."""
        if self._active.get(task_id) == attempt:
            del self._active[task_id]

    def try_commit(self, task_id: str, attempt: int) -> bool:
        """``canCommit``: True only for the task's currently granted id."""
        if self._active.get(task_id) == attempt:
            return True
        self.fenced_attempts.append(f"attempt_{task_id}_{attempt}")
        return False

    @property
    def fenced(self) -> int:
        return len(self.fenced_attempts)


class NodeGraylist:
    """Time-bounded exclusion of flapping nodes (partition-and-rejoin).

    Unlike :class:`NodeBlacklist` (per-job, permanent once tripped), a
    graylisted node only sits out ``window_s`` of simulated time after
    each flap: it misbehaved by *disappearing*, not by failing tasks, so
    it earns back scheduling eligibility once it has held a steady
    heartbeat for the window.
    """

    def __init__(self, window_s: float) -> None:
        if window_s < 0:
            raise ValueError("graylist window must be non-negative")
        self.window_s = window_s
        self._windows: dict[str, list[tuple[float, float]]] = {}

    def record_flap(self, node_name: str, rejoin_time_s: float) -> None:
        """Node *node_name* rejoined at *rejoin_time_s* after a partition.

        The exclusion starts at the rejoin — a node with a flap in its
        *future* is still perfectly eligible now.
        """
        self._windows.setdefault(node_name, []).append(
            (rejoin_time_s, rejoin_time_s + self.window_s)
        )

    def is_graylisted(self, node_name: str, time_s: float) -> bool:
        return any(
            start <= time_s < until
            for start, until in self._windows.get(node_name, ())
        )

    @property
    def nodes(self) -> tuple[str, ...]:
        """Every node that has ever been graylisted (accounting view)."""
        return tuple(sorted(self._windows))


class NodeBlacklist:
    """Per-job tracker blacklist (``mapred.max.tracker.failures``)."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("blacklist threshold must be at least 1")
        self.threshold = threshold
        self.failure_counts: dict[str, int] = {}
        self._blacklisted: set[str] = set()

    def record_failure(self, node_name: str) -> bool:
        """Count one task failure on *node_name*; True if newly blacklisted."""
        count = self.failure_counts.get(node_name, 0) + 1
        self.failure_counts[node_name] = count
        if count >= self.threshold and node_name not in self._blacklisted:
            self._blacklisted.add(node_name)
            return True
        return False

    def is_blacklisted(self, node_name: str) -> bool:
        return node_name in self._blacklisted

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._blacklisted))
