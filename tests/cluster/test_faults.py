"""Tests for fault injection and speculative execution."""

import pytest

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.faults import FaultPlan, FaultyCluster


def work(maps=16, cpu=1.0) -> JobWork:
    return JobWork(
        "job",
        maps=[MapWork(1 << 20, cpu, 1 << 20) for _ in range(maps)],
        reduces=[ReduceWork(4 << 20, 0.2, 1 << 20) for _ in range(4)],
    )


def run(plan: FaultPlan, slaves=4, **work_kw):
    cluster = make_cluster(slaves)
    return FaultyCluster(cluster, plan).run_job(work(**work_kw))


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(failure_point=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)

    def test_random_plan_rate(self):
        plan = FaultPlan.random_plan(1000, failure_rate=0.1, seed=1)
        assert 50 < len(plan.map_failures) < 200

    def test_random_plan_deterministic(self):
        a = FaultPlan.random_plan(100, failure_rate=0.2, seed=7)
        b = FaultPlan.random_plan(100, failure_rate=0.2, seed=7)
        assert a.map_failures == b.map_failures

    def test_random_plan_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.random_plan(10, failure_rate=2.0)


class TestFailures:
    def test_no_faults_matches_plain_cluster(self):
        plain = make_cluster(4).run_job(work())
        faulty = run(FaultPlan())
        assert faulty.timeline.duration_s == pytest.approx(plain.duration_s, rel=0.01)
        assert faulty.failed_attempts == 0

    def test_failures_counted_and_cost_time(self):
        baseline = run(FaultPlan())
        faulty = run(FaultPlan(map_failures=(0, 3, 7)))
        assert faulty.failed_attempts == 3
        assert faulty.wasted_seconds > 0
        assert faulty.timeline.duration_s >= baseline.timeline.duration_s

    def test_failed_job_still_completes_all_reduces(self):
        faulty = run(FaultPlan(map_failures=(1,)))
        assert faulty.timeline.reduce_tasks == 4
        assert faulty.timeline.end_s >= faulty.timeline.map_phase_end_s


class TestStragglers:
    def test_straggler_without_speculation_drags_the_job(self):
        healthy = run(FaultPlan())
        dragged = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=False,
            )
        )
        assert dragged.timeline.duration_s > 1.5 * healthy.timeline.duration_s

    def test_speculation_bounds_straggler_damage(self):
        no_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=False,
            )
        )
        with_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=True,
            )
        )
        assert with_spec.timeline.duration_s < no_spec.timeline.duration_s
        assert with_spec.speculative_attempts > 0
        assert with_spec.speculative_wins > 0

    def test_speculation_wastes_work(self):
        with_spec = run(
            FaultPlan(
                straggler_nodes=("slave1",),
                straggler_factor=8.0,
                speculative_execution=True,
            )
        )
        assert with_spec.wasted_seconds > 0

    def test_single_node_cluster_cannot_speculate(self):
        result = run(
            FaultPlan(straggler_nodes=("slave1",), speculative_execution=True),
            slaves=1,
        )
        assert result.speculative_wins == 0

    def test_all_straggler_cluster_has_no_backup_targets(self):
        result = run(
            FaultPlan(
                straggler_nodes=("slave1", "slave2", "slave3", "slave4"),
                straggler_factor=4.0,
            )
        )
        assert result.speculative_wins == 0
