"""Multi-core system model: private cores sharing the LLC and DRAM.

The paper's machines run many co-scheduled tasks per socket (24 map slots
over two six-core Xeons), and its §V points to consolidation studies
(CloudRank) as the natural follow-up.  :class:`MultiCoreSystem` models the
first-order effects of co-location on a Westmere socket:

* each workload runs on its own core (private L1s, L2, TLBs, branch unit),
* all cores share one L3 — capacity contention appears as extra misses,
* all cores share one DRAM channel-set — bandwidth contention appears as
  a utilisation-dependent latency/occupancy inflation.

The model runs each co-scheduled trace through its own
:class:`~repro.uarch.pipeline.Core` against a shared L3 instance, then
applies a bandwidth-contention correction derived from the combined DRAM
line rate.  This captures the headline consolidation behaviours (cache
thrashing between antagonists, bandwidth saturation under streaming
neighbours) without a lock-step multi-core timing loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

from repro.uarch.caches import Cache
from repro.uarch.config import MachineConfig, XEON_E5645
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace, TraceSpec


def _merge(
    accumulated: SimulationResult | None, chunk: SimulationResult
) -> SimulationResult:
    """Accumulate one chunk's counters into the running total."""
    if accumulated is None:
        return chunk
    for f in fields(SimulationResult):
        if f.name in ("name", "machine", "extra"):
            continue
        setattr(accumulated, f.name, getattr(accumulated, f.name) + getattr(chunk, f.name))
    for key, value in chunk.extra.items():
        if isinstance(value, (int, float)):
            accumulated.extra[key] = accumulated.extra.get(key, 0) + value
    return accumulated


@dataclass
class CoLocationResult:
    """Outcome of one consolidation run."""

    solo: dict[str, SimulationResult]
    shared: dict[str, SimulationResult]
    #: cycles-per-instruction inflation per workload (>1 = slowdown)
    slowdowns: dict[str, float] = field(default_factory=dict)

    def slowdown(self, name: str) -> float:
        return self.slowdowns[name]

    def worst(self) -> tuple[str, float]:
        name = max(self.slowdowns, key=self.slowdowns.get)
        return name, self.slowdowns[name]


class MultiCoreSystem:
    """N cores sharing the machine's L3 and DRAM bandwidth."""

    def __init__(self, machine: MachineConfig = XEON_E5645) -> None:
        self.machine = machine

    # -- solo baseline --------------------------------------------------------

    def run_solo(self, spec: TraceSpec) -> SimulationResult:
        """One workload alone on the socket (private everything).

        Executed through the same chunked machinery as a co-located run
        (same chunk size, same 20 % warm-chunk discard) so that solo and
        shared numbers differ only by interference, not by chunking
        artefacts.
        """
        return self._run_chunked([spec], Cache(self.machine.l3))[spec.name]

    # -- co-located run --------------------------------------------------------

    #: micro-ops each core executes before yielding the shared L3 to the
    #: next core (time-multiplexed co-simulation granularity).
    CHUNK = 2000

    def run_colocated(self, specs: list[TraceSpec]) -> CoLocationResult:
        """Run all *specs* together: shared L3, shared DRAM bandwidth.

        The traces execute chunk-interleaved on per-workload cores that
        share one L3 instance, so every workload's lines genuinely fight
        the others' for LLC occupancy.  The first 20 % of chunks are the
        warm-up window and are excluded from the accumulated counters.
        DRAM contention is applied afterwards: if the mix's combined line
        rate oversubscribes the channel, each workload's memory-bound CPI
        share scales with the oversubscription factor.
        """
        if not specs:
            raise ValueError("need at least one co-located workload")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("co-located workloads need distinct names")

        solo = {spec.name: self.run_solo(spec) for spec in specs}
        shared = self._run_chunked(specs, Cache(self.machine.l3))

        # DRAM bandwidth contention: the socket sustains 1/occupancy
        # lines per cycle; if the mix demands more, everyone's memory
        # stall component scales by the over-subscription factor.
        occupancy = self.machine.dram_cycles_per_line
        demand = sum(
            result.extra.get("dram_transfers", 0) / max(result.cycles, 1)
            for result in shared.values()
        )
        capacity = 1.0 / occupancy
        oversubscription = max(1.0, demand / capacity)

        slowdowns: dict[str, float] = {}
        for name, result in shared.items():
            base_cpi = 1.0 / max(solo[name].ipc(), 1e-9)
            shared_cpi = 1.0 / max(result.ipc(), 1e-9)
            if oversubscription > 1.0:
                # Inflate the memory-bound share of the CPI.
                memory_share = min(
                    0.9,
                    result.extra.get("dram_transfers", 0)
                    * occupancy
                    / max(result.cycles, 1),
                )
                shared_cpi *= 1.0 + memory_share * (oversubscription - 1.0)
            slowdowns[name] = shared_cpi / base_cpi
        return CoLocationResult(solo=solo, shared=shared, slowdowns=slowdowns)

    def _run_chunked(
        self, specs: list[TraceSpec], l3: Cache
    ) -> dict[str, SimulationResult]:
        """Chunk-interleave *specs* on per-workload cores sharing *l3*."""
        cores: dict[str, Core] = {}
        iterators = {}
        offsets: dict[str, int] = {}
        for index, spec in enumerate(specs):
            core = Core(self.machine)
            core.l3 = l3
            core.icache_path.l3 = l3
            core.dcache_path.l3 = l3
            cores[spec.name] = core
            iterators[spec.name] = iter(SyntheticTrace(spec))
            # Distinct processes live in distinct address spaces: salt all
            # user-mode addresses per workload so co-located traces cannot
            # spuriously share (pre-warm) cache lines.  Kernel addresses
            # stay shared, as on a real machine.
            offsets[spec.name] = index << 42
        total_chunks = max(1, max(spec.instructions for spec in specs) // self.CHUNK)
        warm_chunks = total_chunks // 5
        accumulated: dict[str, SimulationResult | None] = {
            spec.name: None for spec in specs
        }
        for chunk_index in range(total_chunks):
            for spec in specs:
                ops = list(itertools.islice(iterators[spec.name], self.CHUNK))
                if not ops:
                    # Short traces loop (steady-state co-location).
                    iterators[spec.name] = iter(SyntheticTrace(spec))
                    ops = list(itertools.islice(iterators[spec.name], self.CHUNK))
                offset = offsets[spec.name]
                if offset:
                    for uop in ops:
                        if not uop.kernel:
                            uop.pc += offset
                            if uop.addr:
                                uop.addr += offset
                            if uop.target:
                                uop.target += offset
                result = cores[spec.name].run(
                    ops,
                    warmup=0,
                    rat_conflict_ratio=spec.partial_register_ratio,
                    name=spec.name,
                )
                if chunk_index >= warm_chunks:
                    accumulated[spec.name] = _merge(accumulated[spec.name], result)
        return {name: result for name, result in accumulated.items() if result}
