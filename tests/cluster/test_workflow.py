"""Tests for event-driven DAG workflows with lineage-based recovery.

The robustness contracts pinned here:

* a fault-free DAG completes with every sink committing its shadow-run
  payload (the functional output);
* destroying *every* replica of a completed stage's output triggers a
  minimal-subgraph lineage recomputation — the workflow still completes,
  bit-identical, instead of raising ``DataLossError``;
* a stage that exhausts its retry budget cancels exactly its downstream
  cone; independent branches still complete;
* a JobTracker crash mid-DAG resumes from the workflow journal and
  re-runs **zero** completed stages (asserted via accounting);
* the ProcFs workflow counters are observationally free: running with
  them off is bit-identical to running with them on;
* the chaos matrix: Hive chains and iterative DAGs x {fifo, fair} x
  seeds survive mid-workflow crashes, partitions and replica corruption
  with bit-identical final outputs.
"""

import pytest

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.chaos import run_workflow_chaos
from repro.cluster.eventbus import (
    EVENT_CHECKPOINT,
    EVENT_HEAL,
    EVENT_JOB_CANCELLED,
    EVENT_STAGE_FAILED,
    EVENT_STAGE_RETRY,
)
from repro.cluster.journal import WorkflowJournal, snapshot, restore_into
from repro.cluster.workflow import (
    Stage,
    StagePolicy,
    Workflow,
    WorkflowFaultPlan,
    WorkflowRunner,
    build_workflow,
    workflow_from_chain,
)


def small_work(name, n_maps=1, cpu=0.01):
    return JobWork(
        name,
        maps=[MapWork(1024, cpu, 1024) for _ in range(n_maps)],
        reduces=[ReduceWork(1024, cpu, 1024)],
    )


def fresh_cluster(num_slaves=4):
    return make_cluster(num_slaves=num_slaves, block_size=256 * 1024)


@pytest.fixture(scope="module")
def diamond():
    return build_workflow("diamond", scale=0.05, num_slaves=4)


@pytest.fixture(scope="module")
def diamond_baseline(diamond):
    return WorkflowRunner(fresh_cluster()).run(diamond)


# -- graph construction --------------------------------------------------------


class TestStagePolicy:
    def test_backoff_grows_exponentially(self):
        policy = StagePolicy(max_retries=3, backoff_s=1.0, backoff_factor=2.0)
        assert policy.retry_delay_s(1) == 1.0
        assert policy.retry_delay_s(2) == 2.0
        assert policy.retry_delay_s(3) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StagePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            StagePolicy(backoff_s=-0.5)
        with pytest.raises(ValueError):
            StagePolicy(backoff_factor=0.0)


class TestWorkflowGraph:
    def build(self):
        return Workflow(
            "wf",
            [
                Stage("a", small_work("a")),
                Stage("b", small_work("b"), deps=("a",)),
                Stage("c", small_work("c"), deps=("a",)),
                Stage("d", small_work("d"), deps=("b", "c")),
                Stage("e", small_work("e")),
            ],
        )

    def test_topological_order_respects_deps(self):
        wf = self.build()
        order = wf.order
        assert set(order) == {"a", "b", "c", "d", "e"}
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_sources_sinks_cone_closure(self):
        wf = self.build()
        assert set(wf.sources()) == {"a", "e"}
        assert set(wf.sinks()) == {"d", "e"}
        assert set(wf.downstream_cone("a")) == {"b", "c", "d"}
        assert set(wf.upstream_closure("d")) == {"a", "b", "c"}
        assert wf.consumers_of("b") == ("d",)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            Workflow(
                "cyc",
                [
                    Stage("a", small_work("a"), deps=("b",)),
                    Stage("b", small_work("b"), deps=("a",)),
                ],
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError):
            Workflow("wf", [Stage("a", small_work("a"), deps=("ghost",))])

    def test_duplicate_names_and_outputs_rejected(self):
        with pytest.raises(ValueError):
            Workflow(
                "wf", [Stage("a", small_work("a")), Stage("a", small_work("a"))]
            )
        with pytest.raises(ValueError):
            Workflow(
                "wf",
                [
                    Stage("a", small_work("a"), output="same"),
                    Stage("b", small_work("b"), output="same"),
                ],
            )

    def test_chain_builder_links_linearly(self):
        wf = workflow_from_chain(
            "chain", [small_work(f"s{i}") for i in range(3)], payload={"k": 1}
        )
        assert wf.order == ("s00", "s01", "s02")
        assert wf.stage("s02").deps == ("s01",)
        assert wf.stage("s02").payload == {"k": 1}


class TestWorkflowFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkflowFaultPlan(node_crashes=(("slave1", -1.0),))
        with pytest.raises(ValueError):
            WorkflowFaultPlan(partitions=(("slave1", 0.0, 0.0),))
        with pytest.raises(ValueError):
            WorkflowFaultPlan(fail_stages=(("s", 0),))
        with pytest.raises(ValueError):
            WorkflowFaultPlan(fail_stages=(("s", 1), ("s", 2)))

    def test_unknown_names_rejected_at_run(self, diamond):
        runner = WorkflowRunner(
            fresh_cluster(),
            plan=WorkflowFaultPlan(destroy_outputs=("ghost",)),
        )
        with pytest.raises(KeyError):
            runner.run(diamond)


# -- fault-free execution ------------------------------------------------------


class TestFaultFreeRun:
    def test_diamond_completes_with_sink_payloads(self, diamond, diamond_baseline):
        result = diamond_baseline
        assert result.status == "completed"
        assert {r.stage: r.status for r in result.reports} == {
            name: "completed" for name in diamond.order
        }
        assert set(result.outputs) == set(diamond.sinks())
        # The sinks commit the shadow-run payloads (the functional
        # outputs fixed at DAG build), so output identity across runs is
        # payload identity.
        for sink in diamond.sinks():
            assert result.outputs[sink] == diamond.stage(sink).payload

    def test_one_checkpoint_per_wave(self, diamond_baseline):
        acct = diamond_baseline.accounting
        assert acct.checkpoints == acct.waves
        types = [e.type for e in diamond_baseline.events]
        assert types.count(EVENT_CHECKPOINT) == acct.waves

    def test_procfs_workflow_counters(self, diamond):
        cluster = fresh_cluster()
        WorkflowRunner(cluster).run(diamond)
        proc = cluster.master.procfs
        assert proc.workflows_submitted == 1
        assert proc.workflows_completed == 1
        assert proc.stage_retries == 0
        assert proc.lineage_recomputes == 0
        assert "workflows_submitted 1" in proc.render_workflow()

    def test_runner_is_single_use(self, diamond):
        runner = WorkflowRunner(fresh_cluster())
        runner.run(diamond)
        with pytest.raises(RuntimeError):
            runner.run(diamond)

    def test_result_to_dict_round_trips_json(self, diamond_baseline):
        import json

        payload = json.loads(json.dumps(diamond_baseline.to_dict()))
        assert payload["status"] == "completed"
        assert len(payload["stages"]) == 5


# -- lineage-based recomputation (the pinned scenario) -------------------------


class TestLineageRecompute:
    def test_destroying_every_replica_recomputes_upstream(
        self, diamond, diamond_baseline
    ):
        plan = WorkflowFaultPlan(destroy_outputs=("ingest",))
        result = WorkflowRunner(fresh_cluster(), plan=plan).run(diamond)
        assert result.status == "completed"
        assert result.accounting.destroyed_outputs == 1
        assert result.accounting.lineage_recomputes >= 1
        assert result.report("ingest").recomputes == 1
        assert result.report("ingest").executions == 2
        # Stages outside the lost stage's lineage never re-ran.
        assert result.report("side").executions == 1
        assert [e.type for e in result.events].count(EVENT_HEAL) >= 1
        # Bit-identical final outputs despite total replica loss.
        assert repr(result.outputs) == repr(diamond_baseline.outputs)

    def test_hdfs_lineage_hooks(self):
        cluster = fresh_cluster()
        hdfs = cluster.hdfs
        hdfs.create_file("wf/x.out", 4096)
        assert hdfs.file_exists("wf/x.out")
        assert hdfs.lost_blocks("wf/x.out") == []
        assert hdfs.lost_blocks("missing") == [-1]
        destroyed = hdfs.destroy_replicas("wf/x.out")
        assert destroyed >= 1
        assert hdfs.file_exists("wf/x.out")  # namespace entry survives
        assert hdfs.lost_blocks("wf/x.out") != []

    def test_destroy_replicas_is_journaled(self):
        cluster = fresh_cluster()
        hdfs = cluster.hdfs
        hdfs.create_file("wf/x.out", 4096)
        hdfs.destroy_replicas("wf/x.out")
        ops = [op.op for op in hdfs.journal.edits.ops]
        assert "destroy_replicas" in ops


# -- stage retries and failure propagation -------------------------------------


class TestRetriesAndCancellation:
    def test_transient_stage_failure_retries_and_completes(
        self, diamond, diamond_baseline
    ):
        plan = WorkflowFaultPlan(fail_stages=(("left", 2),))
        result = WorkflowRunner(fresh_cluster(), plan=plan).run(diamond)
        assert result.status == "completed"
        assert result.accounting.stage_retries == 2
        assert result.accounting.injected_stage_failures == 2
        assert result.report("left").retries == 2
        assert repr(result.outputs) == repr(diamond_baseline.outputs)
        types = [e.type for e in result.events]
        assert types.count(EVENT_STAGE_RETRY) == 2

    def test_retry_backoff_delays_relaunch(self, diamond):
        plan = WorkflowFaultPlan(fail_stages=(("left", 1),))
        slow = Workflow(
            diamond.name,
            [
                Stage(
                    s.name,
                    s.work,
                    deps=s.deps,
                    output=s.output,
                    payload=s.payload,
                    policy=StagePolicy(max_retries=2, backoff_s=5.0),
                )
                for s in (diamond.stage(n) for n in diamond.order)
            ],
        )
        result = WorkflowRunner(fresh_cluster(), plan=plan).run(slow)
        assert result.status == "completed"
        first_fail_wave_end = min(
            e.time_s
            for e in result.events
            if e.type == EVENT_STAGE_RETRY and e.payload["stage"] == "left"
        )
        relaunch = result.report("left").finished_s
        assert relaunch >= first_fail_wave_end + 5.0

    def test_exhausted_retries_cancel_exactly_the_downstream_cone(self, diamond):
        budget = diamond.stage("left").policy.max_retries
        plan = WorkflowFaultPlan(fail_stages=(("left", budget + 1),))
        cluster = fresh_cluster()
        result = WorkflowRunner(cluster, plan=plan).run(diamond)
        assert result.status == "partial"
        statuses = {r.stage: r.status for r in result.reports}
        assert statuses == {
            "ingest": "completed",
            "side": "completed",
            "left": "failed",
            "right": "completed",
            "join": "cancelled",
        }
        assert result.report("join").cancelled_by == "left"
        assert result.report("join").executions == 0  # never dispatched
        assert result.accounting.stages_cancelled == 1
        assert result.accounting.stages_failed == 1
        assert cluster.master.procfs.stages_cancelled == 1
        # The surviving independent sink still committed its payload.
        assert result.outputs == {"side": diamond.stage("side").payload}
        types = [e.type for e in result.events]
        assert types.count(EVENT_STAGE_FAILED) == 1
        assert types.count(EVENT_JOB_CANCELLED) >= 1


# -- JobTracker crash: journal recovery and checkpoints ------------------------


class TestMasterCrashResume:
    def test_crash_resumes_from_journal_with_zero_reruns(
        self, diamond, diamond_baseline
    ):
        plan = WorkflowFaultPlan(master_crash_after="ingest")
        cluster = fresh_cluster()
        result = WorkflowRunner(cluster, plan=plan).run(diamond)
        assert result.status == "completed"
        assert result.accounting.master_crashes == 1
        assert result.accounting.stages_recovered >= 1
        # Zero completed stages re-ran: total executions equals the
        # stage count.
        assert result.accounting.stages_run == len(diamond)
        assert cluster.master.procfs.master_restarts == 1
        assert repr(result.outputs) == repr(diamond_baseline.outputs)

    def test_checkpoint_resume_runs_only_open_stages(
        self, diamond, diamond_baseline
    ):
        # Run to a partial stop (join fails forever), then resume a
        # fresh runner on the same cluster from the last checkpoint.
        plan = WorkflowFaultPlan(fail_stages=(("join", 99),))
        first = WorkflowRunner(fresh_cluster(), plan=plan)
        partial = first.run(diamond)
        assert partial.status == "partial"
        ckpt = first.last_checkpoint
        assert ckpt is not None
        assert ckpt.workflow == diamond.name

        resumed = WorkflowRunner(first.cluster).run(diamond, resume_from=ckpt)
        assert resumed.status == "completed"
        recovered = resumed.accounting.stages_recovered
        assert recovered >= 1
        assert resumed.accounting.stages_run == len(diamond) - recovered
        assert repr(resumed.outputs) == repr(diamond_baseline.outputs)

    def test_checkpoint_for_wrong_workflow_rejected(self, diamond):
        plan = WorkflowFaultPlan(fail_stages=(("join", 99),))
        first = WorkflowRunner(fresh_cluster(), plan=plan)
        first.run(diamond)
        other = workflow_from_chain("other", [small_work("s")])
        with pytest.raises(ValueError):
            WorkflowRunner(fresh_cluster()).run(
                other, resume_from=first.last_checkpoint
            )


class TestWorkflowJournal:
    def test_duplicate_stage_rejected(self):
        journal = WorkflowJournal(workflow="wf")
        journal.record_stage("a", 1.0, 1, "wf/a.out")
        with pytest.raises(ValueError):
            journal.record_stage("a", 2.0, 1, "wf/a.out")

    def test_forget_enables_rerecording(self):
        journal = WorkflowJournal(workflow="wf")
        journal.record_stage("a", 1.0, 1, "wf/a.out")
        journal.forget_stage("a")
        assert journal.completed_stages() == ()
        journal.record_stage("a", 3.0, 2, "wf/a.out")
        assert journal.record_for("a").finished_s == 3.0
        assert len(journal) == 1

    def test_snapshot_restore_preserves_namespace_after_destroy(self):
        cluster = fresh_cluster()
        cluster.hdfs.create_file("wf/a.out", 4096)
        cluster.hdfs.destroy_replicas("wf/a.out")
        image = snapshot(cluster.hdfs)
        other = fresh_cluster()
        restore_into(other.hdfs, image)
        assert other.hdfs.file_exists("wf/a.out")
        assert other.hdfs.lost_blocks("wf/a.out") != []


# -- observational freedom -----------------------------------------------------


class TestObservationalFreedom:
    def test_counters_on_equals_counters_off(self, diamond):
        plan = WorkflowFaultPlan(
            destroy_outputs=("ingest",), fail_stages=(("left", 1),)
        )
        observed_cluster = fresh_cluster()
        observed = WorkflowRunner(
            observed_cluster, plan=plan, observe=True
        ).run(diamond)
        blind_cluster = fresh_cluster()
        blind = WorkflowRunner(blind_cluster, plan=plan, observe=False).run(
            diamond
        )

        assert observed.to_dict() == blind.to_dict()
        assert [e.describe() for e in observed.events] == [
            e.describe() for e in blind.events
        ]
        assert observed_cluster.clock == blind_cluster.clock
        for obs_node, blind_node in zip(
            observed_cluster.slaves, blind_cluster.slaves
        ):
            assert vars(obs_node.procfs) == vars(blind_node.procfs)
        # The only divergence allowed: the master's workflow counters.
        assert observed_cluster.master.procfs.lineage_recomputes >= 1
        assert observed_cluster.master.procfs.stage_retries == 1
        assert blind_cluster.master.procfs.lineage_recomputes == 0
        assert blind_cluster.master.procfs.stage_retries == 0


# -- the chaos matrix ----------------------------------------------------------


class TestWorkflowChaosMatrix:
    @pytest.mark.parametrize("dag", ["hive-chain", "kmeans", "pagerank"])
    @pytest.mark.parametrize("scheduler", ["fifo", "fair"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dag_survives_every_fault_regime(self, dag, scheduler, seed):
        result = run_workflow_chaos(dag, seed=seed, scheduler=scheduler)
        assert result.crash_identical
        assert result.partition_identical
        assert result.corruption_identical
        assert result.lineage_recomputes >= 1
        assert result.stage_retries >= 1
        assert result.cone_exact
        assert result.survived

    def test_chaos_is_reproducible(self):
        one = run_workflow_chaos("diamond", seed=5, scheduler="fair")
        two = run_workflow_chaos("diamond", seed=5, scheduler="fair")
        assert one == two
