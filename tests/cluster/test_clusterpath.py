"""Fast cluster engine ≡ reference engine, bit for bit.

The indexed fast path (repro.perf.clusterpath) re-sources the reference
dispatch loop's candidates from incremental structures — a slot-time
segment tree, ready floors, a running-task heap — and its entire value
rests on never changing an outcome byte.  These tests enforce that
contract:

* a hypothesis property over randomized traces × schedulers ×
  topologies × fault plans × seeds × run modes asserting the canonical
  :func:`mix_outcome_payload` (plus per-node procfs state and the
  cluster clock) matches exactly,
* a pinned matrix over the regimes the ``bench-cluster`` harness times
  (FIFO contention, Fair preemption, Capacity chains, fault plans),
* a fast-only scale smoke with a wall-clock budget, so a perf
  regression that would break the headline claim fails loudly here.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    MultiJobCluster,
    PoolConfig,
    QueueConfig,
)
from repro.core.simcache import mix_outcome_payload
from repro.perf.clusterpath import FastMultiJobCluster


def procfs_state(cluster):
    """Every per-node counter the run touched, samples included."""
    return [
        (
            {k: v for k, v in vars(node.procfs).items() if k != "samples"},
            list(node.procfs.samples),
        )
        for node in cluster.slaves
    ]


def random_work(rng: random.Random, names: list[str]) -> JobWork:
    maps = []
    for _ in range(rng.randint(1, 5)):
        preferred = ()
        if rng.random() < 0.5:
            preferred = tuple(rng.sample(names, rng.randint(0, min(2, len(names)))))
        maps.append(
            MapWork(
                rng.randint(256, 1 << 16),
                rng.uniform(0.01, 0.4),
                rng.randint(256, 1 << 14),
                preferred_nodes=preferred,
            )
        )
    reduces = tuple(
        ReduceWork(
            rng.randint(256, 1 << 14),
            rng.uniform(0.01, 0.3),
            rng.randint(256, 1 << 14),
        )
        for _ in range(rng.randint(0, 2))
    )
    return JobWork(
        name=f"j{rng.randint(0, 10**9)}", maps=tuple(maps), reduces=reduces
    )


def build_mix(cls, seed, scheduler_kind, racks, plan_kind, observability):
    """One deterministic mix; *cls* picks the engine, all else is pinned."""
    rng = random.Random(seed)
    cluster = make_cluster(
        num_slaves=rng.randint(max(2, racks), 6),
        map_slots=rng.randint(2, 6),
        reduce_slots=2,
        block_size=64 * 1024,
        racks=racks,
    )
    names = [node.name for node in cluster.slaves]
    if scheduler_kind == "fifo":
        scheduler = FifoScheduler()
    elif scheduler_kind == "fair":
        scheduler = FairScheduler(
            pools=[PoolConfig("a", weight=2.0, min_share=2), PoolConfig("b")],
            preemption=True,
            min_share_timeout_s=3.0,
            fair_share_timeout_s=6.0,
        )
    else:
        scheduler = CapacityScheduler(
            queues=[
                QueueConfig("a", capacity=0.6),
                QueueConfig("b", capacity=0.4),
            ]
        )
    plan = None
    if plan_kind == "faults":
        plan = FaultPlan(
            node_crashes=((rng.choice(names), rng.uniform(0.5, 4.0)),),
            partitions=(
                (rng.choice(names), rng.uniform(0.2, 2.0), rng.uniform(0.3, 1.5)),
            ),
            speculative_execution=True,
        )
    elif plan_kind == "slow":
        plan = FaultPlan(
            limping_nodes=((rng.choice(names), 4.0),),
            speculative_execution=True,
        )
    multi = cls(cluster, scheduler=scheduler, plan=plan, observability=observability)
    submit_rng = random.Random(seed + 1)
    for i in range(submit_rng.randint(3, 10)):
        pool = submit_rng.choice(["a", "b"])
        if submit_rng.random() < 0.3:
            multi.submit_chain(
                [random_work(submit_rng, names) for _ in range(submit_rng.randint(2, 3))],
                arrival_s=submit_rng.uniform(0, 3),
                user=f"u{i % 2}",
                pool=pool,
                id_prefix=f"c{i}",
            )
        else:
            multi.submit(
                random_work(submit_rng, names),
                arrival_s=submit_rng.uniform(0, 3),
                user=f"u{i % 3}",
                pool=pool,
            )
    return cluster, multi


def assert_engines_agree(
    seed, scheduler_kind, racks, plan_kind, observability, run_engine
):
    ref_cluster, ref = build_mix(
        MultiJobCluster, seed, scheduler_kind, racks, plan_kind, observability
    )
    fast_cluster, fast = build_mix(
        FastMultiJobCluster, seed, scheduler_kind, racks, plan_kind, observability
    )
    ref_out = ref.run(engine=run_engine, raise_on_failure=False)
    fast_out = fast.run(engine=run_engine, raise_on_failure=False)
    assert mix_outcome_payload(ref_out) == mix_outcome_payload(fast_out)
    assert procfs_state(ref_cluster) == procfs_state(fast_cluster)
    assert ref_cluster.clock == fast_cluster.clock


class TestFastEqualsReference:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        scheduler_kind=st.sampled_from(["fifo", "fair", "capacity"]),
        racks=st.sampled_from([1, 3]),
        plan_kind=st.sampled_from([None, "faults", "slow"]),
        observability=st.sampled_from(["full", "lean"]),
        run_engine=st.sampled_from(["events", "legacy"]),
    )
    def test_property_bit_identical(
        self, seed, scheduler_kind, racks, plan_kind, observability, run_engine
    ):
        assert_engines_agree(
            seed, scheduler_kind, racks, plan_kind, observability, run_engine
        )


#: The CI tier's pinned equivalence matrix: one case per dispatch regime.
PINNED_CASES = [
    (7, "fifo", 1, None, "lean", "events"),
    (11, "fair", 1, None, "full", "events"),
    (13, "fair", 3, "slow", "full", "events"),
    (17, "capacity", 3, None, "full", "events"),
    (19, "fifo", 1, "faults", "full", "events"),
    (23, "capacity", 1, "faults", "lean", "legacy"),
]


class TestEquivalenceMatrix:
    @pytest.mark.parametrize(
        "seed,scheduler_kind,racks,plan_kind,observability,run_engine",
        PINNED_CASES,
    )
    def test_pinned_case(
        self, seed, scheduler_kind, racks, plan_kind, observability, run_engine
    ):
        assert_engines_agree(
            seed, scheduler_kind, racks, plan_kind, observability, run_engine
        )


class TestScaleSmoke:
    def test_contended_trace_is_fast(self):
        """2k uniform jobs on 96 nodes dispatch in a couple of seconds.

        The budget is ~20x slack over the measured time so only an
        algorithmic regression (quadratic candidate scans coming back)
        trips it, not machine noise.
        """
        cluster = make_cluster(
            num_slaves=96, map_slots=8, reduce_slots=4, block_size=256 * 1024
        )
        multi = FastMultiJobCluster(
            cluster, scheduler=FifoScheduler(), observability="lean"
        )
        rng = random.Random(5)
        for i in range(2000):
            maps = tuple(
                MapWork(1 << 18, rng.uniform(0.5, 3.0), 1 << 16) for _ in range(2)
            )
            reduces = (ReduceWork(1 << 16, rng.uniform(0.3, 1.0), 1 << 16),)
            multi.submit(
                JobWork(name=f"j{i}", maps=maps, reduces=reduces),
                arrival_s=i * 0.9,
                user=f"u{i % 5}",
            )
        start = time.perf_counter()
        outcome = multi.run(engine="events")
        elapsed = time.perf_counter() - start
        assert len(outcome.reports) == 2000
        assert not outcome.failed_jobs
        assert elapsed < 10.0, f"fast path took {elapsed:.1f}s for 2000 jobs"
