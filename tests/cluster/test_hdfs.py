"""Tests for HDFS block placement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.attempts import DataLossError
from repro.cluster.hdfs import Hdfs
from repro.cluster.node import Node


def make_hdfs(n_nodes=4, block_size=1024, replication=3):
    nodes = [Node(f"n{i}") for i in range(n_nodes)]
    return Hdfs(nodes, block_size=block_size, replication=replication)


class TestHdfs:
    def test_file_split_into_blocks(self):
        hdfs = make_hdfs(block_size=1024)
        f = hdfs.create_file("f", 2500)
        assert len(f) == 3
        assert [b.size_bytes for b in f.blocks] == [1024, 1024, 452]
        assert f.size_bytes == 2500

    def test_empty_file_has_no_blocks(self):
        hdfs = make_hdfs()
        f = hdfs.create_file("empty", 0)
        assert len(f) == 0

    def test_replication_count(self):
        hdfs = make_hdfs(n_nodes=4, replication=3)
        f = hdfs.create_file("f", 4096)
        for block in f.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3

    def test_replication_capped_by_cluster_size(self):
        hdfs = make_hdfs(n_nodes=2, replication=3)
        f = hdfs.create_file("f", 1024)
        assert len(f.blocks[0].replicas) == 2

    def test_placement_balanced(self):
        hdfs = make_hdfs(n_nodes=4, block_size=64, replication=1)
        hdfs.create_file("big", 64 * 40)
        counts = [len(hdfs.blocks_on_node(f"n{i}")) for i in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_duplicate_name_rejected(self):
        hdfs = make_hdfs()
        hdfs.create_file("f", 10)
        with pytest.raises(ValueError):
            hdfs.create_file("f", 10)

    def test_delete_file(self):
        hdfs = make_hdfs()
        hdfs.create_file("f", 10)
        hdfs.delete_file("f")
        with pytest.raises(KeyError):
            hdfs.blocks_of("f")
        hdfs.create_file("f", 10)  # name reusable

    def test_blocks_of_unknown_file(self):
        with pytest.raises(KeyError):
            make_hdfs().blocks_of("ghost")

    def test_total_stored_includes_replication(self):
        hdfs = make_hdfs(n_nodes=4, block_size=1024, replication=2)
        hdfs.create_file("f", 1024)
        assert hdfs.total_stored_bytes() == 2048

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Hdfs([], block_size=64)
        with pytest.raises(ValueError):
            make_hdfs(block_size=0)
        with pytest.raises(ValueError):
            make_hdfs(replication=0)

    def test_rejects_negative_file_size(self):
        with pytest.raises(ValueError):
            make_hdfs().create_file("f", -1)

    @given(
        size=st.integers(min_value=0, max_value=100_000),
        block=st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_blocks_reassemble_to_file_size(self, size, block):
        hdfs = make_hdfs(block_size=block)
        f = hdfs.create_file("f", size)
        assert f.size_bytes == size
        assert all(0 < b.size_bytes <= block for b in f.blocks)


class TestDatanodeLoss:
    def test_fail_node_drops_replicas(self):
        hdfs = make_hdfs(n_nodes=4, block_size=1024, replication=2)
        hdfs.create_file("f", 4096)
        under, lost = hdfs.fail_node("n0")
        assert lost == []
        assert under  # n0 held some replicas
        assert hdfs.blocks_on_node("n0") == []
        for block in under:
            assert "n0" not in block.replicas
            assert len(block.replicas) == 1

    def test_fail_node_reports_lost_blocks(self):
        hdfs = make_hdfs(n_nodes=2, block_size=1024, replication=1)
        hdfs.create_file("f", 2048)  # one block per node
        _, lost_first = hdfs.fail_node("n0")
        _, lost_second = hdfs.fail_node("n1")
        assert len(lost_first) + len(lost_second) == 2

    def test_fail_node_is_idempotent(self):
        hdfs = make_hdfs(n_nodes=4, replication=2)
        hdfs.create_file("f", 4096)
        first, _ = hdfs.fail_node("n1")
        second, second_lost = hdfs.fail_node("n1")
        assert first and second == [] and second_lost == []
        assert hdfs.dead_nodes == ("n1",)

    def test_re_replication_restores_degree(self):
        hdfs = make_hdfs(n_nodes=4, block_size=1024, replication=2)
        hdfs.create_file("f", 4096)
        under, _ = hdfs.fail_node("n2")
        for block in under:
            pair = hdfs.re_replicate_block(block)
            assert pair is not None
            src, dst = pair
            assert src in block.replicas
            assert dst not in block.replicas and dst != "n2"
        restored = hdfs.blocks_of("f")
        assert all(len(b.replicas) == 2 for b in restored)
        assert all("n2" not in b.replicas for b in restored)

    def test_re_replication_without_survivors_or_targets(self):
        hdfs = make_hdfs(n_nodes=2, block_size=1024, replication=2)
        hdfs.create_file("f", 1024)
        under, lost = hdfs.fail_node("n0")
        # Replication was 2 on 2 nodes: the survivor already holds the
        # block, so there is no eligible target.
        assert under and not lost
        assert hdfs.re_replicate_block(under[0]) is None

    def test_new_files_avoid_dead_nodes(self):
        hdfs = make_hdfs(n_nodes=4, block_size=64, replication=2)
        hdfs.fail_node("n3")
        hdfs.create_file("f", 64 * 8)
        for block in hdfs.blocks_of("f"):
            assert "n3" not in block.replicas
        assert hdfs.live_node_names() == ["n0", "n1", "n2"]

    def test_placement_fails_when_every_node_is_dead(self):
        hdfs = make_hdfs(n_nodes=2)
        hdfs.fail_node("n0")
        hdfs.fail_node("n1")
        with pytest.raises(DataLossError):
            hdfs.create_file("f", 10)

    def test_placement_degrades_when_too_few_live_nodes(self):
        # Losing nodes below the replication degree under-replicates new
        # blocks instead of failing the write (the namenode's gauge counts
        # them for later re-replication).
        hdfs = make_hdfs(n_nodes=4, block_size=64, replication=3)
        hdfs.fail_node("n0")
        hdfs.fail_node("n1")
        f = hdfs.create_file("f", 64 * 3)
        assert hdfs.under_replicated_blocks == 3
        for block in f.blocks:
            assert sorted(block.replicas) == ["n2", "n3"]
        # Recovering capacity is not retroactive: the gauge sticks until
        # re-replication, and fully-replicated writes don't touch it.
        hdfs2 = make_hdfs(n_nodes=4, block_size=64, replication=3)
        hdfs2.create_file("g", 64 * 3)
        assert hdfs2.under_replicated_blocks == 0
