"""Hadoop-like MapReduce engine.

This is the substrate the paper's eleven workloads run on.  Jobs are real:
the engine executes the user's map / combine / reduce functions over real
records, with hash or range partitioning, per-partition sorting and
merging, and full Hadoop-style counters.  From the measured record/byte
counts it derives the :class:`~repro.cluster.cluster.JobWork` that the
cluster timing model schedules, so functional results and timing both come
from the same execution.

Typical use::

    from repro.mapreduce import JobConf, MapReduceJob, LocalEngine

    def mapper(key, value):
        for word in value.split():
            yield word, 1

    def reducer(key, values):
        yield key, sum(values)

    job = MapReduceJob(mapper, reducer, JobConf(name="wordcount", num_reduces=4))
    result = LocalEngine().execute(job, [("doc0", "a b a")])
    dict(result.output)  # {'a': 2, 'b': 1}
"""

from repro.mapreduce.job import JobConf, MapReduceJob
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.partitioner import hash_partitioner, make_range_partitioner
from repro.mapreduce.io import DistributedInput, record_bytes
from repro.mapreduce.engine import JobResult, LocalEngine

__all__ = [
    "JobConf",
    "MapReduceJob",
    "JobCounters",
    "hash_partitioner",
    "make_range_partitioner",
    "DistributedInput",
    "record_bytes",
    "JobResult",
    "LocalEngine",
]
