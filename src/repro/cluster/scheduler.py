"""Multi-tenant job scheduling: FIFO / Fair / Capacity over one cluster.

The paper characterizes each DA workload as a solitary job on a dedicated
cluster; production data centers run heavy-tailed *mixes* of jobs that
share map/reduce slots, disks, NICs and HDFS.  This module adds the
Hadoop-1.x control plane for that regime:

* :class:`FifoScheduler` — the stock ``JobQueueTaskScheduler``: strict
  submission order, small jobs wait behind large ones (head-of-line
  blocking).
* :class:`FairScheduler` — Zaharia et al.'s fair scheduler: jobs grouped
  into weighted pools with minimum shares, slots divided evenly among
  pools with demand, *delay scheduling* for data locality, and optional
  preemption when a pool sits below its minimum share (or below half its
  fair share) past a timeout.
* :class:`CapacityScheduler` — Yahoo's capacity scheduler: queues with
  capacity fractions and per-user limits inside each queue.

:class:`MultiJobCluster` is the discrete-event dispatch loop that runs
many :class:`~repro.cluster.cluster.JobWork` submissions concurrently
over one :class:`~repro.cluster.cluster.HadoopCluster`.  It charges tasks
through the *same* primitives as the stock single-job executor
(``_charge_map_task`` / ``_charge_reduce_phase``), so with the FIFO
scheduler and a single submitted job it performs the identical sequence
of simulation-state mutations — the produced timeline and /proc counters
are bit-identical to ``HadoopCluster.run_job`` (tested in
``tests/cluster/test_scheduler.py``).

Fail-stop node crashes and timed network partitions (the
:class:`~repro.cluster.faults.FaultPlan` subset that makes sense across
a whole mix) are supported natively: lost attempts are detected by
heartbeat timeout and rescheduled, completed map outputs on crashed
nodes are re-executed before the owning job's reduce phase, and zombie
attempts that kept running behind a partition are fenced at commit
through the real :class:`~repro.cluster.attempts.CommitFence`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.attempts import CommitFence, JobFailedError, RetryPolicy
from repro.cluster.cluster import (
    TASK_LOG_BYTES,
    HadoopCluster,
    JobTimeline,
    JobWork,
    MapWork,
)
from repro.cluster.eventbus import (
    EVENT_ATTEMPT_FINISHED,
    EVENT_DISPATCH,
    EVENT_JOB_CANCELLED,
    EVENT_JOB_FAILED,
    EVENT_JOB_FINISHED,
    EVENT_STAGE_READY,
    EVENT_SUBMIT,
    EventBus,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.node import Node

__all__ = [
    "PoolConfig",
    "QueueConfig",
    "Scheduler",
    "FifoScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "make_scheduler",
    "ScheduledJob",
    "RunningTask",
    "TaskInterval",
    "JobReport",
    "MixFaultAccounting",
    "MixOutcome",
    "MultiJobCluster",
    "jain_index",
]


def jain_index(values) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly fair.

    Defined for non-negative allocations (we feed it per-job slowdowns or
    per-entity means); an empty or all-zero set is vacuously fair.
    """
    xs = [float(v) for v in values]
    if any(x < 0 for x in xs):
        raise ValueError("Jain's index is defined for non-negative values")
    square_sum = sum(x * x for x in xs)
    if not xs or square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


# -- scheduler configuration ---------------------------------------------------


@dataclass(frozen=True)
class PoolConfig:
    """One fair-scheduler pool (``PoolManager`` allocation entry).

    Attributes:
        name: pool name (jobs name their pool at submission).
        weight: relative share of slots among pools with demand.
        min_share: map slots guaranteed to the pool; a pool below its
            minimum share is served first and may preempt after
            ``min_share_timeout_s``.
    """

    name: str
    weight: float = 1.0
    min_share: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise ValueError("pool weight must be positive and finite")
        if self.min_share < 0:
            raise ValueError("pool min_share must be non-negative")


@dataclass(frozen=True)
class QueueConfig:
    """One capacity-scheduler queue.

    Attributes:
        name: queue name (jobs address queues through their ``pool``).
        capacity: fraction of the cluster's map slots this queue is
            entitled to (queues may exceed it when others are idle —
            the scheduler ranks queues by utilization of capacity).
        user_limit: largest fraction of the queue's capacity one user
            may occupy while other users' jobs wait.
    """

    name: str
    capacity: float = 1.0
    user_limit: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("queue name must be non-empty")
        if not (0.0 < self.capacity <= 1.0):
            raise ValueError("queue capacity must be in (0, 1]")
        if not (0.0 < self.user_limit <= 1.0):
            raise ValueError("queue user_limit must be in (0, 1]")


# -- submitted-job bookkeeping -------------------------------------------------


@dataclass(eq=False)  # identity semantics: a submission is not a value
class ScheduledJob:
    """One submitted job plus its dispatch-time state."""

    job_id: str
    work: JobWork
    arrival_s: float
    user: str = "default"
    pool: str = "default"
    seq: int = 0
    depends_on: "ScheduledJob | None" = None

    # dispatch state (owned by MultiJobCluster)
    pending: deque = field(default_factory=deque, repr=False)
    map_starts: dict = field(default_factory=dict, repr=False)
    map_ends: dict = field(default_factory=dict, repr=False)
    map_nodes: dict = field(default_factory=dict, repr=False)
    attempts: dict = field(default_factory=dict, repr=False)
    started_s: float | None = None
    first_launch_s: float | None = None
    map_phase_end_s: float | None = None
    finished_s: float | None = None
    net_bytes: int = 0
    disk_writes: dict = field(default_factory=dict, repr=False)
    #: running ``max(map_ends.values())`` maintained incrementally, so
    #: the dispatch loop never recomputes the max inside a sort key;
    #: ``None`` until the first map attempt commits an end time
    last_map_end_s: float | None = None
    preempted: int = 0
    timeline: JobTimeline | None = None
    #: "pending" until the mix resolves the job: "completed", "failed"
    #: (a task exhausted its attempts / no live node), or "cancelled"
    #: (an upstream dependency failed, so this job never dispatched)
    status: str = "pending"
    failure: JobFailedError | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.work.name

    def submit_key(self) -> tuple[float, int]:
        return (self.arrival_s, self.seq)


@dataclass(frozen=True)
class RunningTask:
    """A map attempt currently occupying a slot (preemption candidate)."""

    job: ScheduledJob
    m_index: int
    node: Node
    slot: int
    start_s: float
    end_s: float


@dataclass(frozen=True)
class TaskInterval:
    """One task occupancy interval, for slot-occupancy time series."""

    kind: str  # "map" | "reduce"
    job_id: str
    node: str
    start_s: float
    end_s: float


class SchedulerState:
    """Read-only view of the dispatch loop's state handed to schedulers."""

    def __init__(
        self,
        now: float,
        runnable: list[ScheduledJob],
        running: list[RunningTask],
        total_map_slots: int,
    ) -> None:
        self.now = now
        self.runnable = runnable
        self.running_tasks = list(running)
        self.total_map_slots = total_map_slots

    def running_in_pool(self, pool: str) -> int:
        return sum(1 for rt in self.running_tasks if rt.job.pool == pool)

    def running_for_user(self, user: str, pool: str | None = None) -> int:
        return sum(
            1
            for rt in self.running_tasks
            if rt.job.user == user and (pool is None or rt.job.pool == pool)
        )

    def pending_in_pool(self, pool: str) -> int:
        return sum(len(j.pending) for j in self.runnable if j.pool == pool)

    def pools_with_demand(self) -> list[str]:
        """Pools that currently hold runnable (arrived, unblocked) work."""
        return sorted({j.pool for j in self.runnable if j.pending})

    def slot_safe(self, rt: RunningTask) -> bool:
        """True when *rt* can be killed without rewriting history: it is
        still running, its job has not entered its reduce phase, and no
        later task has been charged onto its slot."""
        return (
            rt.end_s > self.now
            and rt.job.finished_s is None
            and rt.node.map_slot_free[rt.slot] == rt.end_s
        )


# -- schedulers ----------------------------------------------------------------


class Scheduler(ABC):
    """Pluggable task-assignment policy for :class:`MultiJobCluster`."""

    name = "scheduler"
    #: whether :meth:`tasks_to_preempt` can ever return victims — when
    #: False the execution loop skips starvation observations entirely,
    #: keeping the non-preempting dispatch sequence byte-for-byte stable
    preemption = False

    def reset(self) -> None:
        """Clear any per-run state (called once when the mix starts)."""

    def on_submit(self, job: ScheduledJob) -> None:
        """Observe a submission (before the mix runs)."""

    def locality_wait_s(self, cluster: HadoopCluster) -> float:
        """Delay-scheduling knob: how long a map waits for a local slot."""
        return cluster.locality_wait_s

    def rack_locality_wait_s(self, cluster: HadoopCluster) -> float:
        """Second delay level: extra wait for a rack-local slot before
        going off-rack (only reached on multi-rack topologies)."""
        return cluster.rack_locality_wait_s

    def tasks_to_preempt(
        self, now: float, state: SchedulerState
    ) -> list[RunningTask]:
        """Running map attempts to kill before the next assignment."""
        return []

    def next_wake_s(self) -> float | None:
        """Earliest future starvation deadline worth re-checking at."""
        return None

    def describe(self) -> dict:
        """Canonical config fingerprint (for content-addressed caching).

        Two scheduler instances that describe identically must make
        identical dispatch decisions on identical state; subclasses
        extend this with every knob that influences a decision.
        """
        return {"name": self.name}

    @abstractmethod
    def pick_job(
        self, now: float, runnable: list[ScheduledJob], state: SchedulerState
    ) -> ScheduledJob:
        """Choose which runnable job receives the next map slot."""


class FifoScheduler(Scheduler):
    """Hadoop 1.x's default ``JobQueueTaskScheduler``: strict job order."""

    name = "fifo"

    def pick_job(self, now, runnable, state):
        return min(runnable, key=ScheduledJob.submit_key)


class FairScheduler(Scheduler):
    """The Hadoop fair scheduler (Zaharia et al., delay scheduling).

    Slots go to the pool furthest below its guarantee: pools under their
    *minimum share* rank first (most starved by ``running/min_share``),
    everyone else by weighted running count ``running/weight`` — the
    discrete analogue of max-min fair sharing.  Within a pool, jobs run
    FIFO.  ``delay_s`` overrides the cluster's locality wait (delay
    scheduling: how long a map holds out for a data-local slot).

    With ``preemption`` on, a pool that has sat below its minimum share
    for ``min_share_timeout_s`` (or below half its fair share for
    ``fair_share_timeout_s``) kills the youngest slot-safe attempts of
    pools above their own guarantees, and the killed work is requeued.
    """

    name = "fair"

    def __init__(
        self,
        pools: tuple[PoolConfig, ...] | list[PoolConfig] = (),
        delay_s: float | None = None,
        preemption: bool = True,
        min_share_timeout_s: float = 1.0,
        fair_share_timeout_s: float = 4.0,
        rack_delay_s: float | None = None,
    ) -> None:
        self.pools = {}
        for cfg in pools:
            if cfg.name in self.pools:
                raise ValueError(f"duplicate pool {cfg.name!r}")
            self.pools[cfg.name] = cfg
        if delay_s is not None and not (delay_s >= 0 and math.isfinite(delay_s)):
            raise ValueError("delay_s must be finite and non-negative")
        if rack_delay_s is not None and not (
            rack_delay_s >= 0 and math.isfinite(rack_delay_s)
        ):
            raise ValueError("rack_delay_s must be finite and non-negative")
        if min_share_timeout_s <= 0 or fair_share_timeout_s <= 0:
            raise ValueError("preemption timeouts must be positive")
        self.delay_s = delay_s
        self.rack_delay_s = rack_delay_s
        self.preemption = preemption
        self.min_share_timeout_s = min_share_timeout_s
        self.fair_share_timeout_s = fair_share_timeout_s
        self.reset()

    def reset(self) -> None:
        # last instant each pool was at (min|fair) share while it had demand
        self._min_ok_at: dict[str, float] = {}
        self._fair_ok_at: dict[str, float] = {}

    def pool(self, name: str) -> PoolConfig:
        return self.pools.get(name) or PoolConfig(name)

    def locality_wait_s(self, cluster):
        return cluster.locality_wait_s if self.delay_s is None else self.delay_s

    def rack_locality_wait_s(self, cluster):
        if self.rack_delay_s is not None:
            return self.rack_delay_s
        return cluster.rack_locality_wait_s

    def fair_share(self, pool: str, state: SchedulerState) -> float:
        """Weighted share of map slots among pools that have demand."""
        demand = state.pools_with_demand()
        for rt in state.running_tasks:
            if rt.job.pool not in demand:
                demand.append(rt.job.pool)
        if pool not in demand:
            return 0.0
        total_weight = sum(self.pool(p).weight for p in demand)
        return state.total_map_slots * self.pool(pool).weight / total_weight

    def pick_job(self, now, runnable, state):
        def pool_rank(name: str):
            cfg = self.pool(name)
            running = state.running_in_pool(name)
            if cfg.min_share > 0 and running < cfg.min_share:
                return (0, running / cfg.min_share, name)
            return (1, running / cfg.weight, name)

        best_pool = min({j.pool for j in runnable}, key=pool_rank)
        candidates = [j for j in runnable if j.pool == best_pool]
        return min(candidates, key=ScheduledJob.submit_key)

    def _starvation(self, name: str, now: float, state: SchedulerState) -> int:
        """Map slots the pool may claim through preemption right now."""
        cfg = self.pool(name)
        running = state.running_in_pool(name)
        demand = running + state.pending_in_pool(name)
        min_target = min(cfg.min_share, demand)
        fair_target = min(self.fair_share(name, state), demand)
        # advance the satisfied-clocks (monotonically) whenever the pool
        # is at its guarantee — starvation is measured from the last
        # satisfied instant, as in the fair scheduler's update thread.
        if running >= min_target:
            self._min_ok_at[name] = max(now, self._min_ok_at.get(name, now))
        else:
            self._min_ok_at.setdefault(name, now)
        if running >= fair_target / 2.0:
            self._fair_ok_at[name] = max(now, self._fair_ok_at.get(name, now))
        else:
            self._fair_ok_at.setdefault(name, now)
        if (
            running < min_target
            and now - self._min_ok_at[name] >= self.min_share_timeout_s
        ):
            return int(min_target) - running
        if (
            running < fair_target / 2.0
            and now - self._fair_ok_at[name] >= self.fair_share_timeout_s
        ):
            return int(fair_target) - running
        return 0

    def tasks_to_preempt(self, now, state):
        if not self.preemption:
            return []
        needs = [
            (name, starved)
            for name in state.pools_with_demand()
            for starved in (self._starvation(name, now, state),)
            if starved > 0
        ]
        if not needs:
            return []
        victims: list[RunningTask] = []
        counts: dict[str, int] = {}
        for rt in state.running_tasks:
            counts[rt.job.pool] = counts.get(rt.job.pool, 0) + 1
        # youngest attempts die first (least work wasted), deterministically
        candidates = sorted(
            (rt for rt in state.running_tasks if state.slot_safe(rt)),
            key=lambda rt: (-rt.start_s, rt.job.seq, rt.m_index),
        )
        for name, need in needs:
            for rt in candidates:
                if need <= 0:
                    break
                pool = rt.job.pool
                if pool == name or rt in victims:
                    continue
                # never preempt a pool below its own guarantee
                guard = max(self.pool(pool).min_share, self.fair_share(pool, state))
                if counts.get(pool, 0) <= guard:
                    continue
                victims.append(rt)
                counts[pool] -= 1
                need -= 1
            # one preemption volley per timeout window: restart the clocks
            self._min_ok_at[name] = now
            self._fair_ok_at[name] = now
        return victims

    def next_wake_s(self):
        if not self.preemption:
            return None
        deadlines = [t + self.min_share_timeout_s for t in self._min_ok_at.values()]
        deadlines += [t + self.fair_share_timeout_s for t in self._fair_ok_at.values()]
        return min(deadlines, default=None)

    def describe(self):
        return {
            "name": self.name,
            "pools": [
                [cfg.name, cfg.weight, cfg.min_share]
                for cfg in sorted(self.pools.values(), key=lambda c: c.name)
            ],
            "delay_s": self.delay_s,
            "rack_delay_s": self.rack_delay_s,
            "preemption": self.preemption,
            "min_share_timeout_s": self.min_share_timeout_s,
            "fair_share_timeout_s": self.fair_share_timeout_s,
        }


class CapacityScheduler(Scheduler):
    """Yahoo's capacity scheduler: queues with capacities and user limits.

    Queues are served most-underutilized first (running slots over the
    queue's capacity in slots), FIFO within a queue, and a single user
    may not hold more than ``user_limit`` of the queue's capacity while
    the queue has other users' jobs waiting.  Idle capacity is elastic:
    a queue may exceed its share when no other queue has demand.
    """

    name = "capacity"

    def __init__(self, queues: tuple[QueueConfig, ...] | list[QueueConfig] = ()) -> None:
        self.queues = {}
        for cfg in queues:
            if cfg.name in self.queues:
                raise ValueError(f"duplicate queue {cfg.name!r}")
            self.queues[cfg.name] = cfg

    def queue(self, name: str) -> QueueConfig:
        return self.queues.get(name) or QueueConfig(name)

    def pick_job(self, now, runnable, state):
        total = state.total_map_slots

        def capacity_slots(cfg: QueueConfig) -> int:
            return max(1, round(cfg.capacity * total))

        def utilization(name: str) -> float:
            return state.running_in_pool(name) / capacity_slots(self.queue(name))

        for name in sorted({j.pool for j in runnable}, key=lambda q: (utilization(q), q)):
            cfg = self.queue(name)
            user_cap = max(1, math.ceil(cfg.user_limit * capacity_slots(cfg)))
            for job in sorted(
                (j for j in runnable if j.pool == name), key=ScheduledJob.submit_key
            ):
                if state.running_for_user(job.user, pool=name) < user_cap:
                    return job
        # every queue is user-limited: fall back to global FIFO rather
        # than deadlocking the cluster
        return min(runnable, key=ScheduledJob.submit_key)

    def describe(self):
        return {
            "name": self.name,
            "queues": [
                [cfg.name, cfg.capacity, cfg.user_limit]
                for cfg in sorted(self.queues.values(), key=lambda c: c.name)
            ],
        }


def make_scheduler(
    name: str,
    pools: tuple[PoolConfig, ...] | list[PoolConfig] = (),
    queues: tuple[QueueConfig, ...] | list[QueueConfig] = (),
    **kwargs,
) -> Scheduler:
    """Build a scheduler by CLI name: ``fifo``, ``fair`` or ``capacity``."""
    key = name.strip().lower()
    if key == "fifo":
        return FifoScheduler()
    if key == "fair":
        return FairScheduler(pools=pools, **kwargs)
    if key == "capacity":
        return CapacityScheduler(queues=queues, **kwargs)
    raise ValueError(f"unknown scheduler {name!r} (want fifo, fair or capacity)")


# -- per-job / mix reports -----------------------------------------------------


@dataclass
class JobReport:
    """Accounting for one job of a mix.

    ``first_launch_s`` / ``finished_s`` / ``timeline`` are ``None`` for
    jobs that did not complete (``status`` is ``"failed"`` — a task
    exhausted its attempts or no live node remained — or
    ``"cancelled"`` — an upstream dependency failed so the job was
    never dispatched against missing input).
    """

    job_id: str
    name: str
    user: str
    pool: str
    arrival_s: float
    first_launch_s: float | None
    finished_s: float | None
    preempted: int
    timeline: JobTimeline | None
    status: str = "completed"

    @property
    def wait_s(self) -> float | None:
        """Queueing delay: arrival until the first task launches."""
        if self.first_launch_s is None:
            return None
        return self.first_launch_s - self.arrival_s

    @property
    def turnaround_s(self) -> float | None:
        if self.finished_s is None:
            return None
        return self.finished_s - self.arrival_s

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "user": self.user,
            "pool": self.pool,
            "arrival_s": self.arrival_s,
            "first_launch_s": self.first_launch_s,
            "finished_s": self.finished_s,
            "wait_s": self.wait_s,
            "turnaround_s": self.turnaround_s,
            "preempted": self.preempted,
            "timeline": self.timeline.to_dict() if self.timeline else None,
            "status": self.status,
        }


@dataclass
class MixFaultAccounting:
    """What the fault machinery did during a mix."""

    nodes_crashed: tuple[str, ...] = ()
    partition_windows: int = 0
    limping_nodes: tuple[str, ...] = ()
    killed_attempts: int = 0
    zombies_fenced: int = 0
    maps_reexecuted: int = 0
    reduces_reexecuted: int = 0
    wasted_task_seconds: float = 0.0
    # Fail-slow mitigation: backup races launched by the mix-level
    # straggler detector, races the backup won, losing attempts whose
    # late commit the fence refused, and the nodes detection flagged.
    speculative_attempts: int = 0
    speculative_wins: int = 0
    speculative_losers_fenced: int = 0
    stragglers_detected: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "nodes_crashed": list(self.nodes_crashed),
            "partition_windows": self.partition_windows,
            "limping_nodes": list(self.limping_nodes),
            "killed_attempts": self.killed_attempts,
            "zombies_fenced": self.zombies_fenced,
            "maps_reexecuted": self.maps_reexecuted,
            "reduces_reexecuted": self.reduces_reexecuted,
            "wasted_task_seconds": self.wasted_task_seconds,
            "speculative_attempts": self.speculative_attempts,
            "speculative_wins": self.speculative_wins,
            "speculative_losers_fenced": self.speculative_losers_fenced,
            "stragglers_detected": list(self.stragglers_detected),
        }


@dataclass
class MixOutcome:
    """Everything :meth:`MultiJobCluster.run` produced."""

    scheduler: str
    reports: list[JobReport]
    end_s: float
    preemptions: int
    preemption_wasted_s: float
    task_intervals: list[TaskInterval]
    fault_accounting: MixFaultAccounting | None = None
    #: total attempts the commit fence refused (zombies + race losers)
    fenced_attempts: int = 0
    #: jobs that aborted permanently (attempts exhausted / no live node)
    failed_jobs: tuple[str, ...] = ()
    #: jobs never dispatched because an upstream dependency failed
    cancelled_jobs: tuple[str, ...] = ()
    #: the delivered control-plane event log (empty under engine="legacy")
    events: tuple = ()

    def report(self, job_id: str) -> JobReport:
        for report in self.reports:
            if report.job_id == job_id:
                return report
        raise KeyError(job_id)

    def occupancy_series(
        self, node: str | None = None
    ) -> list[tuple[float, int, int]]:
        """``(time, running_maps, running_reduces)`` at every task edge."""
        intervals = [
            iv
            for iv in self.task_intervals
            if (node is None or iv.node == node) and iv.end_s > iv.start_s
        ]
        edges = sorted({iv.start_s for iv in intervals} | {iv.end_s for iv in intervals})
        series = []
        for t in edges:
            maps = sum(
                1 for iv in intervals if iv.kind == "map" and iv.start_s <= t < iv.end_s
            )
            reduces = sum(
                1
                for iv in intervals
                if iv.kind == "reduce" and iv.start_s <= t < iv.end_s
            )
            series.append((t, maps, reduces))
        return series

    def peak_concurrency(self, node: str | None = None) -> int:
        return max(
            (maps + reduces for _t, maps, reduces in self.occupancy_series(node)),
            default=0,
        )

    def by_pool(self) -> dict[str, dict]:
        pools: dict[str, dict] = {}
        for report in self.reports:
            if report.status != "completed":
                continue
            agg = pools.setdefault(
                report.pool, {"jobs": 0, "wait_s": 0.0, "turnaround_s": 0.0}
            )
            agg["jobs"] += 1
            agg["wait_s"] += report.wait_s
            agg["turnaround_s"] += report.turnaround_s
        return {
            name: {
                "jobs": agg["jobs"],
                "mean_wait_s": agg["wait_s"] / agg["jobs"],
                "mean_turnaround_s": agg["turnaround_s"] / agg["jobs"],
            }
            for name, agg in pools.items()
        }

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "end_s": self.end_s,
            "preemptions": self.preemptions,
            "preemption_wasted_s": self.preemption_wasted_s,
            "jobs": [report.to_dict() for report in self.reports],
            "by_pool": self.by_pool(),
            "peak_concurrency": self.peak_concurrency(),
            "fault_accounting": (
                self.fault_accounting.to_dict() if self.fault_accounting else None
            ),
            "fenced_attempts": self.fenced_attempts,
            "failed_jobs": list(self.failed_jobs),
            "cancelled_jobs": list(self.cancelled_jobs),
            "events": len(self.events),
        }


# -- fault-plan view for mixes -------------------------------------------------


class _MixFaults:
    """The FaultPlan subset a multi-job mix honours, pre-indexed.

    Times are relative to the mix origin (the cluster clock when
    :meth:`MultiJobCluster.run` starts), matching the chaos harness's
    "relative to the first job's start" convention.
    """

    def __init__(self, plan: FaultPlan, cluster: HadoopCluster, origin: float) -> None:
        supported = FaultPlan(
            speculative_execution=plan.speculative_execution,
            node_crashes=plan.node_crashes,
            partitions=plan.partitions,
            limping_nodes=plan.limping_nodes,
            limping_disks=plan.limping_disks,
            limping_nics=plan.limping_nics,
            fail_slow_rate=plan.fail_slow_rate,
            fail_slow_factor_range=plan.fail_slow_factor_range,
            rack_outages=plan.rack_outages,
            tor_failures=plan.tor_failures,
            seed=plan.seed,
            policy=plan.policy,
        )
        if plan != supported:
            raise ValueError(
                "MultiJobCluster supports node_crashes, partitions, rack "
                "outages, ToR failures and fail-slow limping only; run "
                "other fault classes through FaultyCluster"
            )
        # Correlated rack faults expand to their per-node equivalents:
        # a rack power outage crashes every member at once; a ToR death
        # partitions every member for the failure window.
        node_crashes = list(plan.node_crashes)
        partitions = list(plan.partitions)
        if plan.rack_outages or plan.tor_failures:
            topology = cluster.topology
            if topology is None or topology.is_flat:
                raise ValueError(
                    "rack_outages/tor_failures need a multi-rack topology"
                )
            known_racks = set(topology.racks)
            for rack, at in plan.rack_outages:
                if rack not in known_racks:
                    raise ValueError(f"unknown outage rack {rack!r}")
                for member in topology.nodes_in(rack):
                    node_crashes.append((member, at))
            for rack, start, duration in plan.tor_failures:
                if rack not in known_racks:
                    raise ValueError(f"unknown ToR-failure rack {rack!r}")
                for member in topology.nodes_in(rack):
                    partitions.append((member, start, duration))
        names = {node.name for node in cluster.slaves}
        # Fail-slow hardware: resolve the limp factors (validating node
        # names) and push them onto the shared cluster's device models.
        # `speculation` arms the mix-level straggler detector — only when
        # the plan actually configures limping hardware, so crash/
        # partition-only plans keep their stock timelines bit for bit.
        self.slow_nodes: frozenset[str] = frozenset()
        if plan.injects_fail_slow:
            limp = plan.resolve_fail_slow(
                tuple(node.name for node in cluster.slaves)
            )
            for node in cluster.slaves:
                per_resource = limp[node.name]
                node.slow_factor = per_resource["cpu"]
                node.disk.slow_factor = per_resource["disk"]
                node.nic.slow_factor = per_resource["nic"]
            self.slow_nodes = frozenset(
                name
                for name, per_resource in limp.items()
                if any(factor != 1.0 for factor in per_resource.values())
            )
        self.speculation = plan.speculative_execution and bool(self.slow_nodes)
        for name, _at in node_crashes:
            if name not in names:
                raise ValueError(f"unknown crash node {name!r}")
        self.crash_at: dict[str, float] = {}
        for name, at in node_crashes:
            t = origin + at
            if name not in self.crash_at or t < self.crash_at[name]:
                self.crash_at[name] = t
        self.windows: dict[str, list[tuple[float, float]]] = {}
        for name, start, duration in partitions:
            if name not in names:
                raise ValueError(f"unknown partition node {name!r}")
            if start < 0 or duration <= 0:
                raise ValueError("partitions need start >= 0 and duration > 0")
            self.windows.setdefault(name, []).append(
                (origin + start, origin + start + duration)
            )
        for wins in self.windows.values():
            wins.sort()
        self.partition_windows = sum(len(w) for w in self.windows.values())
        self.policy = plan.policy

    def crash_time(self, name: str) -> float | None:
        return self.crash_at.get(name)

    def dead_at(self, name: str, t: float) -> bool:
        crash = self.crash_at.get(name)
        return crash is not None and t >= crash

    def partition_at(self, name: str, t: float) -> tuple[float, float] | None:
        for start, end in self.windows.get(name, ()):
            if start <= t < end:
                return (start, end)
        return None

    def partition_spanning(
        self, name: str, start_s: float, end_s: float
    ) -> tuple[float, float] | None:
        for win_start, win_end in self.windows.get(name, ()):
            if win_start < end_s and win_end > start_s:
                return (win_start, win_end)
        return None


# -- the multi-job dispatch loop -----------------------------------------------

#: bound on re-attempts of one task in the mix executor (faults are
#: finite, so this is a runaway guard, not a tunable)
_MAX_MIX_ATTEMPTS = 64


class _WriteProbe:
    """Per-job disk-write accounting via a full before-snapshot.

    The reference behavior: snapshot every slave's ``writes_completed``
    before a charge window, diff every slave after.  ``note`` is a
    no-op here because the snapshot already covers all nodes; the fast
    path (``perf/clusterpath.py``) substitutes a lazy probe that only
    tracks the nodes the charge functions announce through ``note``,
    avoiding two O(nodes) sweeps per task on big clusters.
    """

    __slots__ = ("_slaves", "_before")

    def __init__(self, slaves: list[Node]) -> None:
        self._slaves = slaves
        self._before = {n.name: n.procfs.writes_completed for n in slaves}

    def note(self, node: Node) -> None:
        pass

    def settle(self, job: "ScheduledJob") -> None:
        for node in self._slaves:
            delta = node.procfs.writes_completed - self._before[node.name]
            if delta:
                job.disk_writes[node.name] = (
                    job.disk_writes.get(node.name, 0) + delta
                )


class MultiJobCluster:
    """Run many jobs concurrently on one cluster under a scheduler.

    Usage::

        multi = MultiJobCluster(make_cluster(4), FairScheduler(pools))
        a = multi.submit(work_a, arrival_s=0.0, user="ada", pool="batch")
        b = multi.submit(work_b, arrival_s=1.5, user="bo", pool="interactive")
        outcome = multi.run()

    ``submit`` only records the job; :meth:`run` executes the whole mix
    and returns a :class:`MixOutcome` with one :class:`JobReport` (and
    one :class:`~repro.cluster.cluster.JobTimeline`) per job.  A job's
    per-node ``disk_writes_per_second`` and ``network_bytes`` count only
    *its own* charges, so concurrent jobs don't pollute each other's
    reports.  Multi-stage jobs chain with ``after=`` (or
    :meth:`submit_chain`): a stage's dispatch floor is its predecessor's
    finish, exactly like the sequential engine.
    """

    def __init__(
        self,
        cluster: HadoopCluster,
        scheduler: Scheduler | None = None,
        plan: FaultPlan | None = None,
        observability: str = "full",
    ) -> None:
        if observability not in ("full", "lean"):
            raise ValueError(
                f"unknown observability {observability!r} (want full or lean)"
            )
        self.cluster = cluster
        self.scheduler = scheduler or FifoScheduler()
        self.plan = plan
        #: ``"full"`` keeps the reference observability surface: per-job
        #: all-slave /proc sampling at start and finish, and (under
        #: ``engine="events"``) the control-plane event log.  ``"lean"``
        #: samples each slave once at the mix origin and once at the mix
        #: end, restricts per-job write rates to nodes the job touched,
        #: and suppresses the event bus — the regime for data-center
        #: scale runs where per-job × per-node sampling is quadratic.
        self.observability = observability
        self.jobs: list[ScheduledJob] = []
        self.fence = CommitFence()
        self._ids: set[str] = set()
        self._ran = False
        self._running: list[RunningTask] = []
        self._intervals: list[TaskInterval] = []
        self._faults: _MixFaults | None = None
        self._acct: MixFaultAccounting | None = None
        # Limping hosts whose attempts actually triggered a backup race.
        self._detected_slow: set[str] = set()
        #: the control-plane event bus (built by run(engine="events");
        #: stays None under the legacy reference engine, which publishes
        #: nothing)
        self.bus: EventBus | None = None
        self._failures: list[JobFailedError] = []
        self._ready_announced: set[str] = set()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        work: JobWork,
        arrival_s: float = 0.0,
        user: str = "default",
        pool: str = "default",
        job_id: str | None = None,
        after: ScheduledJob | None = None,
    ) -> ScheduledJob:
        if self._ran:
            raise RuntimeError("mix already ran; build a new MultiJobCluster")
        if not (math.isfinite(arrival_s) and arrival_s >= 0):
            raise ValueError("arrival_s must be finite and non-negative")
        if not user.strip() or not pool.strip():
            raise ValueError("user and pool must be non-empty")
        if after is not None and after not in self.jobs:
            raise ValueError("after= must name a job submitted to this mix")
        seq = len(self.jobs)
        if job_id is None:
            job_id = f"job-{seq:04d}"
        if not job_id or job_id != job_id.strip():
            raise ValueError("job_id must be a non-empty trimmed string")
        if job_id in self._ids:
            raise ValueError(f"duplicate job_id {job_id!r}")
        job = ScheduledJob(
            job_id=job_id,
            work=work,
            arrival_s=arrival_s,
            user=user,
            pool=pool,
            seq=seq,
            depends_on=after,
        )
        job.pending = deque(range(len(work.maps)))
        self._ids.add(job_id)
        self.jobs.append(job)
        self.scheduler.on_submit(job)
        return job

    def submit_chain(
        self,
        works: list[JobWork],
        arrival_s: float = 0.0,
        user: str = "default",
        pool: str = "default",
        id_prefix: str | None = None,
    ) -> list[ScheduledJob]:
        """Submit a multi-stage job: stage k+1 starts when stage k ends."""
        if not works:
            raise ValueError("a chain needs at least one job")
        chain: list[ScheduledJob] = []
        previous = None
        for stage, work in enumerate(works):
            job_id = None
            if id_prefix is not None:
                job_id = f"{id_prefix}/{stage}" if len(works) > 1 else id_prefix
            previous = self.submit(
                work,
                arrival_s=arrival_s,
                user=user,
                pool=pool,
                job_id=job_id,
                after=previous,
            )
            chain.append(previous)
        return chain

    # -- execution -------------------------------------------------------------

    def run(
        self, engine: str = "events", raise_on_failure: bool = True
    ) -> MixOutcome:
        """Execute the whole mix and return its :class:`MixOutcome`.

        ``engine="events"`` (the default) drives dispatch through the
        :class:`~repro.cluster.eventbus.EventBus`: every control-plane
        transition (submit, stage-ready, dispatch round, attempt
        finished, job finished/failed/cancelled) is published as a typed
        event and the delivered log rides on the outcome.
        ``engine="legacy"`` runs the original straight-line loop and
        publishes nothing.  Both engines execute the identical per-round
        logic in the identical order, so their simulation effects —
        timelines, /proc counters, clock — are bit-identical (pinned by
        ``tests/cluster/test_eventbus.py``).  Under
        ``observability="lean"`` the bus is suppressed for either engine
        (the outcome's ``events`` tuple is empty).

        When a job aborts permanently (a task exhausted its attempts, or
        no live node remained), the mix does not deadlock: the job is
        marked ``failed``, every job downstream of it (via ``after=`` /
        :meth:`submit_chain`) is marked ``cancelled`` without ever being
        dispatched against the missing input, and independent jobs run
        to completion.  With ``raise_on_failure=True`` (default) the
        first failure is re-raised after the survivors finish; with
        ``False`` the outcome is returned with per-job ``status`` and
        the mix-level ``failed_jobs`` / ``cancelled_jobs`` tuples.
        """
        if engine not in ("events", "legacy"):
            raise ValueError(f"unknown engine {engine!r} (want events or legacy)")
        if self._ran:
            raise RuntimeError("mix already ran; build a new MultiJobCluster")
        self._ran = True
        cluster = self.cluster
        cluster.ensure_schedulable()
        self.scheduler.reset()
        origin = cluster.clock
        if self.plan is not None:
            self._faults = _MixFaults(self.plan, cluster, origin)
            self._acct = MixFaultAccounting(
                nodes_crashed=tuple(sorted(self._faults.crash_at)),
                partition_windows=self._faults.partition_windows,
                limping_nodes=tuple(sorted(self._faults.slow_nodes)),
            )
        self._preemptions = 0
        self._preemption_wasted = 0.0
        self._obs_t = origin
        self._origin = origin
        lean = self.observability == "lean"
        if lean:
            # One sample stream for the whole mix (start + end), instead
            # of a pair of all-slave sweeps per job.
            for node in cluster.slaves:
                node.procfs.sample(origin)

        if engine == "events" and not lean:
            bus = self.bus = EventBus()
            for job in self.jobs:
                bus.publish(
                    EVENT_SUBMIT,
                    time_s=job.arrival_s,
                    job_id=job.job_id,
                    name=job.name,
                    user=job.user,
                    pool=job.pool,
                    after=job.depends_on.job_id if job.depends_on else None,
                )

            def on_dispatch(_event) -> None:
                if self._run_round():
                    bus.publish(EVENT_DISPATCH, time_s=cluster.clock)

            bus.subscribe(EVENT_DISPATCH, on_dispatch)
            bus.publish(EVENT_DISPATCH, time_s=origin)
            bus.pump()
        else:
            while self._run_round():
                pass

        unfinished = sorted(
            j.job_id for j in self.jobs if j.status == "pending"
        )
        if unfinished:
            raise JobFailedError(
                f"mix deadlocked with unfinished jobs: {', '.join(unfinished)}"
            )
        if raise_on_failure and self._failures:
            raise self._failures[0]
        if self._acct is not None:
            self._acct.stragglers_detected = tuple(sorted(self._detected_slow))
        end_s = max(
            (job.finished_s for job in self.jobs if job.finished_s is not None),
            default=origin,
        )
        if lean:
            for node in cluster.slaves:
                node.procfs.sample(end_s)
        reports = [
            JobReport(
                job_id=job.job_id,
                name=job.name,
                user=job.user,
                pool=job.pool,
                arrival_s=job.arrival_s,
                first_launch_s=job.first_launch_s,
                finished_s=job.finished_s,
                preempted=job.preempted,
                timeline=job.timeline,
                status=job.status,
            )
            for job in self.jobs
        ]
        return MixOutcome(
            scheduler=self.scheduler.name,
            reports=reports,
            end_s=end_s,
            preemptions=self._preemptions,
            preemption_wasted_s=self._preemption_wasted,
            task_intervals=list(self._intervals),
            fault_accounting=self._acct,
            fenced_attempts=self.fence.fenced,
            failed_jobs=tuple(
                j.job_id for j in self.jobs if j.status == "failed"
            ),
            cancelled_jobs=tuple(
                j.job_id for j in self.jobs if j.status == "cancelled"
            ),
            events=tuple(self.bus.log) if self.bus is not None else (),
        )

    # -- the dispatch round (shared by both engines) ---------------------------

    def _publish(self, event_type: str, time_s: float, **payload) -> None:
        """Publish onto the bus when one is live (no-op under legacy)."""
        if self.bus is not None:
            self.bus.publish(event_type, time_s=time_s, **payload)

    def _floor_of(self, job: ScheduledJob) -> float | None:
        if job.depends_on is not None:
            if job.depends_on.finished_s is None:
                return None
            return max(self._origin, job.arrival_s, job.depends_on.finished_s)
        return max(self._origin, job.arrival_s)

    def _finishable(self) -> list[ScheduledJob]:
        return sorted(
            (
                job
                for job in self.jobs
                if job.status == "pending"
                and job.finished_s is None
                and not job.pending
                and len(job.map_ends) == len(job.work.maps)
            ),
            # last_map_end_s is the incrementally-maintained
            # max(map_ends.values()) — never recomputed in a sort key
            key=lambda job: (job.last_map_end_s, job.seq),
        )

    def _run_round(self) -> bool:
        """One round of the dispatch loop; False when the mix quiesced.

        This is the single definition of dispatch semantics — the legacy
        engine iterates it directly, the events engine runs it from the
        ``dispatch`` handler — which is what makes the two engines
        bit-identical by construction.
        """
        cluster = self.cluster
        floors = {}
        for job in self.jobs:
            if job.status != "pending" or not job.pending:
                continue
            floor = self._floor_of(job)
            if floor is not None:
                floors[job] = floor
                if job.job_id not in self._ready_announced:
                    self._ready_announced.add(job.job_id)
                    self._publish(
                        EVENT_STAGE_READY,
                        time_s=floor,
                        job_id=job.job_id,
                        floor_s=floor,
                    )
        if not floors:
            # No dispatchable map work left: run the deferred reduce
            # phases (map-completion order), which may unblock chained
            # stages — then look again.
            ready = self._finishable()
            if not ready:
                return False
            for job in ready:
                self._finish_or_fail(job)
            return True
        now = max(self._earliest_slot_time(), min(floors.values()))
        if self.scheduler.preemption:
            # While every slot is busy until `now`, starvation can
            # build up unobserved: wake at arrivals and at the
            # scheduler's timeout deadlines so preemption can fire
            # before the next natural slot-free event.
            obs = self._next_observation(floors, now)
            if obs is not None:
                self._observe_starvation(obs, floors)
                return True
        # Charge deferred reduce phases the dispatch clock has caught
        # up with *before* assigning more maps, so disk/NIC charges
        # stay time-ordered across jobs (a job that finished its maps
        # must not queue its whole reduce phase's I/O ahead of map
        # tasks that start earlier).
        caught_up = [
            job for job in self._finishable() if job.last_map_end_s <= now
        ]
        if caught_up:
            for job in caught_up:
                self._finish_or_fail(job)
            return True
        runnable = [job for job, floor in floors.items() if floor <= now]
        self._running = [rt for rt in self._running if rt.end_s > now]
        state = SchedulerState(
            now, runnable, self._running, cluster.total_map_slots
        )
        victims = self.scheduler.tasks_to_preempt(now, state)
        if victims:
            self._apply_preemptions(now, state, victims)
            return True
        job = self.scheduler.pick_job(now, runnable, state)
        if job not in runnable:
            raise RuntimeError(
                f"{self.scheduler.name} picked a job that is not runnable"
            )
        try:
            self._dispatch_map(job, floors[job])
        except JobFailedError as exc:
            self._fail_job(job, exc)
        return True

    def _finish_or_fail(self, job: ScheduledJob) -> None:
        try:
            self._finish_job(job)
        except JobFailedError as exc:
            self._fail_job(job, exc)

    # -- failure propagation ---------------------------------------------------

    def _fail_job(self, job: ScheduledJob, exc: JobFailedError) -> None:
        """Mark *job* failed and cancel its whole downstream cone.

        Queued dependents are never dispatched against the missing
        input; jobs on independent branches keep running.
        """
        job.status = "failed"
        job.failure = exc
        job.pending.clear()
        self._failures.append(exc)
        self._running = [rt for rt in self._running if rt.job is not job]
        self._publish(
            EVENT_JOB_FAILED,
            time_s=self.cluster.clock,
            job_id=job.job_id,
            reason=str(exc),
        )
        doomed = {job}
        changed = True
        while changed:
            changed = False
            for other in self.jobs:
                if other.status == "pending" and other.depends_on in doomed:
                    other.status = "cancelled"
                    other.failure = exc
                    other.pending.clear()
                    doomed.add(other)
                    changed = True
                    self._publish(
                        EVENT_JOB_CANCELLED,
                        time_s=self.cluster.clock,
                        job_id=other.job_id,
                        upstream=job.job_id,
                    )

    # -- dispatch internals ----------------------------------------------------

    def _earliest_slot_time(self) -> float:
        """Earliest next-free map slot on any node still alive then."""
        best = None
        for node in self.cluster.slaves:
            t = min(node.map_slot_free)
            if self._faults is not None and self._faults.dead_at(node.name, t):
                continue
            if best is None or t < best:
                best = t
        return best if best is not None else self.cluster.clock

    def _write_probe(self) -> _WriteProbe:
        """Build the per-charge-window disk-write probe (overridable)."""
        return _WriteProbe(self.cluster.slaves)

    def _set_map_slot(self, node: Node, slot: int, at: float) -> None:
        """Write a map slot's next-free time (fast path hooks indexing)."""
        node.map_slot_free[slot] = at

    def _charge_map_clean(
        self,
        task: MapWork,
        floor: float,
        wait: float,
        rack_wait: float,
        probe: _WriteProbe,
    ) -> tuple[float, float, Node, int]:
        """Slot pick + charge for the no-fault path (fast path overrides)."""
        return self.cluster._charge_map_task(
            task, floor, wait, rack_wait, probe=probe
        )

    def _dispatch_map(self, job: ScheduledJob, floor: float) -> None:
        cluster = self.cluster
        if job.started_s is None:
            job.started_s = floor
            if self.observability == "full":
                for node in cluster.slaves:
                    node.procfs.sample(floor)
        m_index = job.pending.popleft()
        task = job.work.maps[m_index]
        wait = self.scheduler.locality_wait_s(cluster)
        rack_wait = self.scheduler.rack_locality_wait_s(cluster)
        net_before = cluster.network.bytes_moved
        probe = self._write_probe()
        if self._faults is None:
            task_start, end, node, slot = self._charge_map_clean(
                task, floor, wait, rack_wait, probe
            )
        else:
            task_start, end, node, slot = self._charge_map_faulty(
                job, task, m_index, floor, wait, rack_wait, probe=probe
            )
        job.net_bytes += cluster.network.bytes_moved - net_before
        probe.settle(job)
        job.map_starts[m_index] = task_start
        job.map_ends[m_index] = end
        job.map_nodes[m_index] = node
        if job.last_map_end_s is None or end > job.last_map_end_s:
            job.last_map_end_s = end
        if job.first_launch_s is None or task_start < job.first_launch_s:
            job.first_launch_s = task_start
        self._running.append(RunningTask(job, m_index, node, slot, task_start, end))
        self._intervals.append(
            TaskInterval("map", job.job_id, node.name, task_start, end)
        )
        self._publish(
            EVENT_ATTEMPT_FINISHED,
            time_s=end,
            job_id=job.job_id,
            task=f"m{m_index}",
            node=node.name,
            start_s=task_start,
            end_s=end,
        )

    def _next_observation(self, floors, natural: float) -> float | None:
        """Earliest unprocessed instant before *natural* worth waking at."""
        candidates = [f for f in floors.values() if self._obs_t < f < natural]
        wake = self.scheduler.next_wake_s()
        if wake is not None and self._obs_t < wake < natural:
            candidates.append(wake)
        return min(candidates, default=None)

    def _observe_starvation(self, obs: float, floors) -> None:
        """Let the scheduler see the cluster at *obs* and preempt if due."""
        self._obs_t = obs
        runnable = [job for job, floor in floors.items() if floor <= obs]
        if not runnable:
            return
        running = [rt for rt in self._running if rt.end_s > obs]
        state = SchedulerState(
            obs, runnable, running, self.cluster.total_map_slots
        )
        victims = self.scheduler.tasks_to_preempt(obs, state)
        if victims:
            self._running = running
            self._apply_preemptions(obs, state, victims)

    def _apply_preemptions(
        self, now: float, state: SchedulerState, victims: list[RunningTask]
    ) -> None:
        for rt in victims:
            if not state.slot_safe(rt):
                raise RuntimeError("scheduler proposed an unsafe preemption victim")
            self._set_map_slot(rt.node, rt.slot, now)
            rt.node.procfs.record_task_preemption()
            job = rt.job
            job.pending.appendleft(rt.m_index)
            job.map_starts.pop(rt.m_index, None)
            job.map_ends.pop(rt.m_index, None)
            job.map_nodes.pop(rt.m_index, None)
            # preemption can remove the latest end: recompute (rare path)
            job.last_map_end_s = (
                max(job.map_ends.values()) if job.map_ends else None
            )
            job.preempted += 1
            self._preemptions += 1
            self._preemption_wasted += now - rt.start_s
            self._running.remove(rt)
            # the attempt's charged I/O stays charged (work really done,
            # then thrown away); shrink its occupancy interval to the kill
            self._intervals.remove(
                TaskInterval("map", job.job_id, rt.node.name, rt.start_s, rt.end_s)
            )
            self._intervals.append(
                TaskInterval("map", job.job_id, rt.node.name, rt.start_s, now)
            )

    def _finish_job(self, job: ScheduledJob) -> None:
        cluster = self.cluster
        work = job.work
        count = len(work.maps)
        net_before = cluster.network.bytes_moved
        probe = self._write_probe()
        if self._faults is not None:
            self._reexecute_lost_maps(job, probe)
        map_end_times = [job.map_ends[i] for i in range(count)]
        map_nodes = [job.map_nodes[i] for i in range(count)]
        map_outputs = [task.output_bytes for task in work.maps]
        if self._faults is None:
            end, map_phase_end, spans = cluster._charge_reduce_phase(
                work, job.started_s, map_end_times, map_nodes, map_outputs,
                probe=probe,
            )
        else:
            end, map_phase_end, spans = self._charge_reduce_phase_faulty(
                job, job.started_s, map_end_times, map_nodes, map_outputs,
                probe=probe,
            )
        job.net_bytes += cluster.network.bytes_moved - net_before
        probe.settle(job)
        job.map_phase_end_s = map_phase_end
        job.finished_s = end
        if end > cluster.clock:
            cluster.clock = end
        rates: dict[str, float] = {}
        duration = end - job.started_s
        if self.observability == "full":
            for node in cluster.slaves:
                node.procfs.sample(end)
                if duration > 0:
                    rates[node.name] = job.disk_writes.get(node.name, 0) / duration
                else:
                    rates[node.name] = 0.0
        else:
            # lean: rate entries only for nodes this job actually wrote
            for name, writes in job.disk_writes.items():
                rates[name] = writes / duration if duration > 0 else 0.0
        tiers = [
            cluster._map_locality_tier(task, node)
            for task, node in zip(work.maps, map_nodes)
        ]
        job.timeline = JobTimeline(
            job_name=work.name,
            start_s=job.started_s,
            map_phase_end_s=map_phase_end,
            end_s=end,
            map_tasks=count,
            reduce_tasks=len(work.reduces),
            disk_writes_per_second=rates,
            network_bytes=job.net_bytes,
            maps_node_local=tiers.count("node"),
            maps_rack_local=tiers.count("rack"),
            maps_off_rack=tiers.count("off"),
            node_racks=cluster._node_racks(),
        )
        for r_index, (node, exec_start, exec_end) in enumerate(spans):
            self._intervals.append(
                TaskInterval("reduce", job.job_id, node.name, exec_start, exec_end)
            )
            self._publish(
                EVENT_ATTEMPT_FINISHED,
                time_s=exec_end,
                job_id=job.job_id,
                task=f"r{r_index}",
                node=node.name,
                start_s=exec_start,
                end_s=exec_end,
            )
        job.status = "completed"
        self._publish(
            EVENT_JOB_FINISHED,
            time_s=end,
            job_id=job.job_id,
            finished_s=end,
        )

    # -- fault-injected charging -----------------------------------------------

    def _pick_live_map_slot(
        self,
        task: MapWork,
        at: float,
        locality_wait: float,
        rack_wait: float | None = None,
    ) -> tuple[Node, int, float]:
        """Stock delay-scheduling pick, over nodes reachable at dispatch."""
        cluster = self.cluster
        if rack_wait is None:
            rack_wait = cluster.rack_locality_wait_s
        faults = self._faults
        best_node, best_slot, best_time = None, -1, float("inf")
        local_node, local_slot, local_time = None, -1, float("inf")
        rack_node, rack_slot, rack_time = None, -1, float("inf")
        preferred_racks = cluster._preferred_racks(task)
        for node in cluster.slaves:
            slot = node.earliest_map_slot()
            t = max(node.map_slot_free[slot], at)
            window = faults.partition_at(node.name, t)
            if window is not None:
                t = window[1]  # usable again when the partition heals
            if faults.dead_at(node.name, t):
                continue
            if t < best_time:
                best_node, best_slot, best_time = node, slot, t
            if task.preferred_nodes and node.name in task.preferred_nodes and t < local_time:
                local_node, local_slot, local_time = node, slot, t
            if (
                preferred_racks
                and t < rack_time
                and cluster.topology.has_node(node.name)
                and cluster.topology.rack_of(node.name) in preferred_racks
            ):
                rack_node, rack_slot, rack_time = node, slot, t
        if best_node is None:
            raise JobFailedError("no live node left to run map tasks")
        if local_node is not None and local_time <= best_time + locality_wait:
            return local_node, local_slot, local_time
        if rack_node is not None and rack_time <= best_time + locality_wait + rack_wait:
            return rack_node, rack_slot, rack_time
        return best_node, best_slot, best_time

    def _charge_map_faulty(
        self,
        job: ScheduledJob,
        task: MapWork,
        m_index: int,
        floor: float,
        locality_wait: float,
        rack_wait: float | None = None,
        probe: _WriteProbe | None = None,
    ) -> tuple[float, float, Node, int]:
        cluster, faults, acct = self.cluster, self._faults, self._acct
        policy: RetryPolicy = faults.policy
        task_id = f"{job.job_id}/m{m_index}"
        t = floor
        for _ in range(_MAX_MIX_ATTEMPTS):
            attempt = job.attempts[task_id] = job.attempts.get(task_id, -1) + 1
            node, slot, ready = self._pick_live_map_slot(
                task, t, locality_wait, rack_wait
            )
            task_start = max(ready, t)
            self.fence.grant(task_id, attempt)
            end = cluster._charge_map_on(task, node, task_start, probe=probe)
            crash = faults.crash_time(node.name)
            if crash is not None and task_start < crash < end:
                # fail-stop mid-attempt: the tracker stops heartbeating;
                # the jobtracker notices after the expiry interval and
                # reschedules the attempt elsewhere.
                self._set_map_slot(node, slot, crash)
                node.procfs.record_task_kill()
                acct.killed_attempts += 1
                acct.wasted_task_seconds += crash - task_start
                self.fence.revoke(task_id, attempt)
                t = max(t, crash + policy.heartbeat_timeout_s)
                continue
            window = faults.partition_spanning(node.name, task_start, end)
            self._set_map_slot(node, slot, end)
            if window is not None:
                win_start, win_end = window
                if win_end - win_start <= policy.heartbeat_timeout_s:
                    # blip: a missed heartbeat or two; the completion
                    # report lands when the link heals.
                    end = max(end, win_end)
                    self._set_map_slot(node, slot, end)
                    self.fence.try_commit(task_id, attempt)
                    return task_start, end, node, slot
                # long partition: tracker declared lost, attempt
                # rescheduled — but the zombie keeps running behind the
                # wall and is fenced when it asks to commit after rejoin.
                node.procfs.record_task_kill()
                acct.killed_attempts += 1
                acct.wasted_task_seconds += end - task_start
                self.fence.revoke(task_id, attempt)
                self.fence.try_commit(task_id, attempt)
                acct.zombies_fenced = self.fence.fenced - acct.speculative_losers_fenced
                t = max(t, win_start + policy.heartbeat_timeout_s)
                continue
            if faults.speculation and node.name in faults.slow_nodes:
                raced = self._speculate_map_mix(
                    job, task, task_id, attempt, node, slot, task_start, end,
                    probe=probe,
                )
                if raced is not None:
                    task_start, end, node, slot, attempt = raced
            self.fence.try_commit(task_id, attempt)
            return task_start, end, node, slot
        raise JobFailedError(f"map {task_id} exhausted {_MAX_MIX_ATTEMPTS} attempts")

    def _speculate_map_mix(
        self,
        job: ScheduledJob,
        task: MapWork,
        task_id: str,
        attempt: int,
        node: Node,
        slot: int,
        task_start: float,
        end: float,
        probe: _WriteProbe | None = None,
    ) -> tuple[float, float, Node, int, int] | None:
        """Speculative backup race for a map on a diagnosed limping host.

        The jobtracker's health monitor has flagged the host (the same
        per-node diagnosis the single-job engine speculates on), so the
        attempt gets a backup raced on a healthy node.  Whichever
        attempt loses the race was never (or no longer) granted commit
        rights, so the :class:`CommitFence` refuses its late commit —
        the same canCommit protocol that fences partition zombies — and
        exactly one attempt's output survives.  Returns the backup's
        ``(start, end, node, slot, attempt)`` when the backup wins,
        else ``None``.
        """
        cluster, faults, acct = self.cluster, self._faults, self._acct
        candidates = [
            n
            for n in cluster.slaves
            if n is not node
            and n.name not in faults.slow_nodes
            and not faults.dead_at(n.name, task_start)
            and faults.partition_at(n.name, task_start) is None
        ]
        if not candidates:
            return None
        self._detected_slow.add(node.name)
        acct.speculative_attempts += 1
        backup_node = min(
            candidates, key=lambda n: n.map_slot_free[n.earliest_map_slot()]
        )
        backup_slot = backup_node.earliest_map_slot()
        backup_start = max(backup_node.map_slot_free[backup_slot], task_start)
        backup_attempt = job.attempts[task_id] = attempt + 1
        backup_end = cluster._charge_map_on(
            task, backup_node, backup_start, probe=probe
        )
        self._set_map_slot(backup_node, backup_slot, backup_end)
        backup_node.procfs.record_speculative()
        crash = faults.crash_time(backup_node.name)
        backup_lost = (
            crash is not None and backup_start < crash < backup_end
        ) or faults.partition_spanning(
            backup_node.name, backup_start, backup_end
        ) is not None
        if backup_lost or backup_end >= end:
            # Original wins (or the backup's host crashed/partitioned
            # mid-race): the backup never held commit rights, so its
            # late commit is fenced.
            self.fence.try_commit(task_id, backup_attempt)
            acct.speculative_losers_fenced += 1
            acct.killed_attempts += 1
            acct.wasted_task_seconds += backup_end - backup_start
            backup_node.procfs.record_task_kill()
            return None
        # Backup wins: commit rights move to it and the limping
        # original is fenced when it finally reports in.
        self.fence.grant(task_id, backup_attempt)
        self.fence.try_commit(task_id, attempt)
        acct.speculative_losers_fenced += 1
        acct.killed_attempts += 1
        acct.wasted_task_seconds += end - task_start
        acct.speculative_wins += 1
        node.procfs.record_task_kill()
        backup_node.procfs.record_speculative_win()
        return backup_start, backup_end, backup_node, backup_slot, backup_attempt

    def _reexecute_lost_maps(
        self, job: ScheduledJob, probe: _WriteProbe | None = None
    ) -> None:
        """Re-run completed maps whose outputs died with their node.

        A map output lives on its tasktracker's local disk until the
        reducers have copied it; a crash inside the job's map phase
        (after the map finished, before the copy window closes) loses it
        and the jobtracker re-executes the map — same rule the
        single-job fault scheduler applies.  Jobs without reducers don't
        care: their output is already in HDFS.
        """
        if not job.work.reduces:
            return
        faults, acct = self._faults, self._acct
        wait = self.scheduler.locality_wait_s(self.cluster)
        for _ in range(_MAX_MIX_ATTEMPTS):
            map_phase_end = max(job.map_ends.values())
            lost = [
                m_index
                for m_index in range(len(job.work.maps))
                if (crash := faults.crash_time(job.map_nodes[m_index].name)) is not None
                and job.map_ends[m_index] <= crash < map_phase_end
            ]
            if not lost:
                return
            for m_index in lost:
                crash = faults.crash_time(job.map_nodes[m_index].name)
                acct.maps_reexecuted += 1
                acct.wasted_task_seconds += (
                    job.map_ends[m_index] - job.map_starts[m_index]
                )
                retry_floor = max(
                    job.map_ends[m_index], crash + faults.policy.heartbeat_timeout_s
                )
                task_start, end, node, slot = self._charge_map_faulty(
                    job, job.work.maps[m_index], m_index, retry_floor, wait,
                    probe=probe,
                )
                job.map_starts[m_index] = task_start
                job.map_ends[m_index] = end
                job.map_nodes[m_index] = node
                if job.last_map_end_s is None or end > job.last_map_end_s:
                    job.last_map_end_s = end
                self._intervals.append(
                    TaskInterval("map", job.job_id, node.name, task_start, end)
                )
        raise JobFailedError(f"{job.job_id}: map re-execution did not converge")

    def _shuffle_for(
        self,
        node: Node,
        task,
        floor: float,
        map_end_times: list[float],
        map_nodes: list[Node],
        map_outputs: list[int],
        total_map_output: int,
    ) -> float:
        """Charge one reducer's copy phase, stalling through partitions."""
        cluster, faults = self.cluster, self._faults
        shuffle_done = floor
        if not (total_map_output and task.shuffle_bytes):
            return shuffle_done
        for m_end, m_node, m_out in zip(map_end_times, map_nodes, map_outputs):
            segment = int(task.shuffle_bytes * (m_out / total_map_output))
            if segment <= 0:
                continue
            fetch_at = max(m_end, floor)
            for _ in range(_MAX_MIX_ATTEMPTS):
                window = faults.partition_at(m_node.name, fetch_at) or faults.partition_at(
                    node.name, fetch_at
                )
                if window is None:
                    break
                fetch_at = window[1]
            if m_node is node:
                done = m_node.disk.read(fetch_at, segment)
            else:
                read_done = m_node.disk.read(fetch_at, segment)
                done = cluster.network.transfer(read_done, m_node.nic, node.nic, segment)
            if done > shuffle_done:
                shuffle_done = done
        return shuffle_done

    def _charge_reduce_phase_faulty(
        self,
        job: ScheduledJob,
        start: float,
        map_end_times: list[float],
        map_nodes: list[Node],
        map_outputs: list[int],
        probe: _WriteProbe | None = None,
    ) -> tuple[float, float, list[tuple[Node, float, float]]]:
        cluster, faults, acct = self.cluster, self._faults, self._acct
        policy = faults.policy
        work = job.work
        map_phase_end = max(map_end_times) if map_end_times else start
        total_map_output = sum(map_outputs)
        end = map_phase_end
        spans: list[tuple[Node, float, float]] = []
        if not work.reduces:
            return end, map_phase_end, spans
        live = [n for n in cluster.slaves if not faults.dead_at(n.name, map_phase_end)]
        if not live:
            raise JobFailedError("no live node left to run reduce tasks")

        placements = []
        shuffle_done_times = []
        for r_index, task in enumerate(work.reduces):
            node = live[r_index % len(live)]
            slot = node.earliest_reduce_slot()
            ready = max(node.reduce_slot_free[slot], start)
            placements.append((node, slot))
            shuffle_done_times.append(
                max(
                    ready,
                    self._shuffle_for(
                        node, task, start, map_end_times, map_nodes,
                        map_outputs, total_map_output,
                    ),
                )
            )
        for r_index, ((node, slot), task, shuffle_done) in enumerate(
            zip(placements, work.reduces, shuffle_done_times)
        ):
            task_id = f"{job.job_id}/r{r_index}"
            for _ in range(_MAX_MIX_ATTEMPTS):
                attempt = job.attempts[task_id] = job.attempts.get(task_id, -1) + 1
                self.fence.grant(task_id, attempt)
                exec_start = max(shuffle_done, map_phase_end, node.reduce_slot_free[slot])
                window = faults.partition_at(node.name, exec_start)
                if window is not None:
                    exec_start = window[1]
                now = exec_start + node.cpu_time(task.cpu_seconds)
                if probe is not None:
                    probe.note(node)
                now = node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)
                crash = faults.crash_time(node.name)
                if crash is not None and exec_start < crash < now:
                    node.reduce_slot_free[slot] = crash
                    node.procfs.record_task_kill()
                    acct.killed_attempts += 1
                    acct.reduces_reexecuted += 1
                    acct.wasted_task_seconds += crash - exec_start
                    self.fence.revoke(task_id, attempt)
                    retry_at = crash + policy.heartbeat_timeout_s
                    survivors = [
                        n for n in cluster.slaves if not faults.dead_at(n.name, retry_at)
                    ]
                    if not survivors:
                        raise JobFailedError("no live node left to run reduce tasks")
                    node = min(
                        survivors,
                        key=lambda n: n.reduce_slot_free[n.earliest_reduce_slot()],
                    )
                    slot = node.earliest_reduce_slot()
                    # the replacement attempt re-copies its inputs
                    shuffle_done = self._shuffle_for(
                        node, task, retry_at, map_end_times, map_nodes,
                        map_outputs, total_map_output,
                    )
                    shuffle_done = max(shuffle_done, retry_at)
                    continue
                window = faults.partition_spanning(node.name, exec_start, now)
                if window is not None:
                    win_start, win_end = window
                    if win_end - win_start <= policy.heartbeat_timeout_s:
                        now = max(now, win_end)
                    else:
                        # zombie reducer behind the wall: fenced at commit
                        node.reduce_slot_free[slot] = now
                        node.procfs.record_task_kill()
                        acct.killed_attempts += 1
                        acct.reduces_reexecuted += 1
                        acct.wasted_task_seconds += now - exec_start
                        self.fence.revoke(task_id, attempt)
                        self.fence.try_commit(task_id, attempt)
                        acct.zombies_fenced = (
                            self.fence.fenced - acct.speculative_losers_fenced
                        )
                        shuffle_done = max(
                            shuffle_done, win_start + policy.heartbeat_timeout_s
                        )
                        continue
                if faults.speculation and node.name in faults.slow_nodes:
                    raced = self._speculate_reduce_mix(
                        job, task, task_id, attempt, shuffle_done,
                        map_phase_end, node, slot, exec_start, now,
                        probe=probe,
                    )
                    if raced is not None:
                        node, slot, exec_start, now, attempt = raced
                if task.output_bytes:
                    targets = [
                        n
                        for n in cluster.slaves
                        if n is not node and not faults.dead_at(n.name, now)
                    ]
                    copies = min(cluster.hdfs.replication - 1, len(targets))
                    offset = cluster._slave_index[node.name]
                    ordered = [
                        cluster.slaves[(offset + 1 + c) % len(cluster.slaves)]
                        for c in range(len(cluster.slaves) - 1)
                    ]
                    ordered = [n for n in ordered if n in targets][:copies]
                    for dst in ordered:
                        sent = cluster.network.transfer(
                            now, node.nic, dst.nic, task.output_bytes
                        )
                        if probe is not None:
                            probe.note(dst)
                        now = max(now, dst.disk.write(sent, task.output_bytes))
                node.reduce_slot_free[slot] = now
                self.fence.try_commit(task_id, attempt)
                spans.append((node, exec_start, now))
                if now > end:
                    end = now
                break
            else:
                raise JobFailedError(
                    f"reduce {task_id} exhausted {_MAX_MIX_ATTEMPTS} attempts"
                )
        return end, map_phase_end, spans

    def _speculate_reduce_mix(
        self,
        job: ScheduledJob,
        task,
        task_id: str,
        attempt: int,
        shuffle_done: float,
        map_phase_end: float,
        node: Node,
        slot: int,
        exec_start: float,
        now: float,
        probe: _WriteProbe | None = None,
    ) -> tuple[Node, int, float, float, int] | None:
        """Speculative backup race for a reduce on a diagnosed limping host.

        The backup's copy phase is assumed concurrent with the
        original's (both fetch the same map outputs), so the backup is
        charged execution and output I/O only — the same assumption the
        single-job engine's backup model makes.  Loser fencing is
        identical to the map race.  Returns the backup's ``(node, slot,
        start, end, attempt)`` when the backup wins, else ``None``.
        """
        cluster, faults, acct = self.cluster, self._faults, self._acct
        candidates = [
            n
            for n in cluster.slaves
            if n is not node
            and n.name not in faults.slow_nodes
            and not faults.dead_at(n.name, exec_start)
            and faults.partition_at(n.name, exec_start) is None
        ]
        if not candidates:
            return None
        self._detected_slow.add(node.name)
        acct.speculative_attempts += 1
        backup_node = min(
            candidates, key=lambda n: n.reduce_slot_free[n.earliest_reduce_slot()]
        )
        backup_slot = backup_node.earliest_reduce_slot()
        backup_start = max(
            shuffle_done, map_phase_end, backup_node.reduce_slot_free[backup_slot]
        )
        backup_attempt = job.attempts[task_id] = attempt + 1
        backup_end = backup_start + backup_node.cpu_time(task.cpu_seconds)
        if probe is not None:
            probe.note(backup_node)
        backup_end = backup_node.disk.write(
            backup_end, task.output_bytes + TASK_LOG_BYTES
        )
        backup_node.reduce_slot_free[backup_slot] = backup_end
        backup_node.procfs.record_speculative()
        crash = faults.crash_time(backup_node.name)
        backup_lost = (
            crash is not None and backup_start < crash < backup_end
        ) or faults.partition_spanning(
            backup_node.name, backup_start, backup_end
        ) is not None
        if backup_lost or backup_end >= now:
            self.fence.try_commit(task_id, backup_attempt)
            acct.speculative_losers_fenced += 1
            acct.killed_attempts += 1
            acct.wasted_task_seconds += backup_end - backup_start
            backup_node.procfs.record_task_kill()
            return None
        self.fence.grant(task_id, backup_attempt)
        self.fence.try_commit(task_id, attempt)
        acct.speculative_losers_fenced += 1
        acct.killed_attempts += 1
        acct.wasted_task_seconds += now - exec_start
        acct.speculative_wins += 1
        node.procfs.record_task_kill()
        backup_node.procfs.record_speculative_win()
        # The limping original still occupies its slot to its own end.
        node.reduce_slot_free[slot] = now
        return backup_node, backup_slot, backup_start, backup_end, backup_attempt
