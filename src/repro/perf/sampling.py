"""Sampled profiling — the ``perf record`` / ``perf report`` analogue.

Statistical profilers interrupt every N events and attribute the sample
to the interrupted instruction's address.  :func:`profile_trace` does the
same over a synthetic instruction stream: it samples the program counter
every ``period`` retired micro-ops and aggregates a flat profile by code
block, split by privilege mode — which is how the paper-era methodology
would locate the hot framework code behind the Figure 7 footprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.trace import SyntheticTrace, TraceSpec, KERNEL_CODE_BASE


@dataclass
class FlatProfile:
    """A flat (non-call-graph) sampled profile."""

    workload: str
    period: int
    block_bytes: int
    samples: int = 0
    kernel_samples: int = 0
    #: block base address -> sample count
    blocks: dict[int, int] = field(default_factory=dict)

    @property
    def kernel_share(self) -> float:
        return self.kernel_samples / self.samples if self.samples else 0.0

    def hot_blocks(self, n: int = 10) -> list[tuple[int, int]]:
        """The *n* hottest code blocks as (base address, samples)."""
        ranked = sorted(self.blocks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def coverage(self, n: int = 10) -> float:
        """Fraction of samples landing in the *n* hottest blocks."""
        if not self.samples:
            return 0.0
        return sum(count for _, count in self.hot_blocks(n)) / self.samples

    def distinct_blocks(self) -> int:
        return len(self.blocks)

    def render(self, n: int = 10) -> str:
        """perf-report-style text output."""
        lines = [
            f"# workload: {self.workload}  samples: {self.samples} "
            f"(period {self.period}, {self.block_bytes}-byte blocks)",
            f"# kernel: {self.kernel_share:.1%}",
            f"{'overhead':>9s}  {'address':>14s}  mode",
        ]
        for base, count in self.hot_blocks(n):
            mode = "kernel" if base >= KERNEL_CODE_BASE else "user"
            lines.append(f"{count / self.samples:>9.2%}  {base:>#14x}  {mode}")
        return "\n".join(lines)


def profile_trace(
    spec: TraceSpec, period: int = 97, block_bytes: int = 256
) -> FlatProfile:
    """Sample *spec*'s instruction stream every *period* retired ops.

    A prime default period avoids phase-locking with loop trip counts —
    the same reason ``perf`` uses non-round default frequencies.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError("block_bytes must be a positive power of two")
    profile = FlatProfile(workload=spec.name, period=period, block_bytes=block_bytes)
    mask = ~(block_bytes - 1)
    countdown = period
    for uop in SyntheticTrace(spec):
        countdown -= 1
        if countdown:
            continue
        countdown = period
        profile.samples += 1
        if uop.kernel:
            profile.kernel_samples += 1
        block = uop.pc & mask
        profile.blocks[block] = profile.blocks.get(block, 0) + 1
    return profile
