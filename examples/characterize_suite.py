#!/usr/bin/env python3
"""Reproduce the paper's cross-suite comparison (Figures 3-12).

Characterizes all 26 workloads — the eleven data-analysis workloads plus
CloudSuite, SPEC CPU2006, SPECweb2005 and HPCC — on the simulated Xeon
E5645, prints every figure's series in the paper's order, and evaluates
the paper's five key findings programmatically.

Run:  python examples/characterize_suite.py        (~2 minutes)
      python examples/characterize_suite.py --fast (~30 seconds)
"""

import sys

from repro.analysis import evaluate_findings
from repro.core import render_metric_table, render_stall_table
from repro.core.characterize import characterize_suite


def main() -> None:
    instructions = 60_000 if "--fast" in sys.argv else 200_000
    print(f"characterizing the full suite ({instructions} micro-ops per workload)...")
    chars = characterize_suite(instructions=instructions)

    for figure in (3, 4, 7, 8, 9, 10, 11, 12):
        print()
        print(render_metric_table(figure, chars))
    print()
    print(render_stall_table(chars))

    findings = evaluate_findings(chars)
    print("\n== The paper's key findings, re-evaluated ==")
    print(f"1. IPC ordering  services < data-analysis < HPL : {findings.ipc_ordering}"
          f"  ({findings.service_max_ipc:.2f} < {findings.da_avg_ipc:.2f} < {findings.hpl_ipc:.2f})")
    print(f"2. stall split   DA in OoO part, services before: {findings.stall_split}"
          f"  (DA backend {findings.da_backend_share:.0%}, services frontend "
          f"{findings.service_frontend_share:.0%})")
    print(f"3. front-end pressure from framework code       : {findings.frontend_pressure}"
          f"  (DA L1I MPKI {findings.da_avg_l1i_mpki:.1f} vs HPCC "
          f"{findings.hpcc_avg_l1i_mpki:.2f})")
    print(f"4. L2 effective for DA; LLC catches L2 misses   : {findings.cache_effectiveness}"
          f"  (L2 MPKI {findings.da_avg_l2_mpki:.1f} vs {findings.service_avg_l2_mpki:.1f}; "
          f"L3 ratios {findings.da_avg_l3_hit_ratio:.0%}/{findings.service_avg_l3_hit_ratio:.0%})")
    print(f"5. DA branches predict better than services     : {findings.branch_prediction}"
          f"  ({findings.da_avg_mispredict:.2%} vs {findings.service_avg_mispredict:.2%})")
    print(f"\nALL FINDINGS HOLD: {findings.all_hold()}")


if __name__ == "__main__":
    main()
