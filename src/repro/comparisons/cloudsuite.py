"""CloudSuite proxies (five of six benchmarks; Naive Bayes is the sixth
and lives with the data-analysis workloads).

Setups follow the paper's Section III-C2: Data Serving is a Cassandra
store driven by a YCSB client with a 50:50 read/update mix; Media
Streaming is a Darwin server feeding paced client sessions; Software
Testing is the Cloud9 symbolic-execution engine; Web Search is a Nutch
index server; Web Serving is the Olio social-events front end.  Each
proxy implements the essential computation for real and self-checks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from repro.comparisons.base import ComparisonRun, ComparisonWorkload, register
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen

#: Shared profile bits for the scale-out services: huge JVM/native service
#: binaries, request-driven control flow, kernel-heavy I/O, pointer-chased
#: heaps with hot object sets — the paper's "service workloads" signature
#: (in-order stalls ≈ 73 %, L2 MPKI ≈ 60, IPC < 0.6).
_SERVICE_BASE: dict[str, Any] = {
    "load_fraction": 0.28,
    "store_fraction": 0.12,
    # MB-scale binaries, but with a hot nucleus that lives in L2: the L1I
    # misses are frequent (Figure 7) yet individually cheap, which is why
    # the paper's service stalls concentrate in the RAT, not fetch.
    "code_footprint": 2 * 1024 * 1024,
    "hot_code_fraction": 0.08,
    "hot_code_weight": 0.9,
    "call_fraction": 0.22,
    "indirect_fraction": 0.06,
    "indirect_targets": 4,
    "mean_block_len": 5.5,
    "loop_branch_fraction": 0.3,
    "mean_trip_count": 8.0,
    "branch_regularity": 0.9,
    "taken_bias": 0.5,
    "dep_mean": 3.0,
    "dep_density": 0.7,
    # Figure 6: services spend ~60 % of stall cycles in the RAT (partial
    # register / flag merges and read-port conflicts pervade managed and
    # legacy server code); the counter ticks most cycles.
    "partial_register_ratio": 0.85,
    "kernel_fraction": 0.42,
    "kernel_episode_len": 220,
    "kernel_code_footprint": 384 * 1024,
    "kernel_buffer_bytes": 2 << 20,
}


def _service_profile(**overrides: Any) -> dict[str, Any]:
    params = dict(_SERVICE_BASE)
    params.update(overrides)
    return params


# ---------------------------------------------------------------------------
# Data Serving (Cassandra + YCSB)
# ---------------------------------------------------------------------------


class KeyValueStore:
    """A log-structured-ish KV store: memtable dict + read/update ops."""

    def __init__(self) -> None:
        self.data: dict[str, str] = {}
        self.reads = 0
        self.updates = 0

    def load(self, n: int, seed: int = 61) -> None:
        rng = random.Random(seed)
        for i in range(n):
            self.data[f"user{i:08d}"] = "".join(
                chr(97 + rng.randrange(26)) for _ in range(100)
            )

    def read(self, key: str) -> str | None:
        self.reads += 1
        return self.data.get(key)

    def update(self, key: str, value: str) -> None:
        self.updates += 1
        self.data[key] = value


@register
class DataServing(ComparisonWorkload):
    name = "Data Serving"
    suite = "CloudSuite"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        store = KeyValueStore()
        records = max(10, int(30_000 * scale))  # paper: 30 M records
        store.load(records)
        rng = random.Random(62)
        operations = max(10, int(20_000 * scale))
        misses = 0
        # YCSB zipfian key chooser over the record space
        for _ in range(operations):
            rank = int(records * (rng.random() ** 3))  # skewed towards 0
            key = f"user{min(rank, records - 1):08d}"
            if rng.random() < 0.5:  # 50:50 read to update (paper setup)
                if store.read(key) is None:
                    misses += 1
            else:
                store.update(key, "u" * 100)
        return ComparisonRun(
            self.name,
            store,
            {
                "reads": float(store.reads),
                "updates": float(store.updates),
                "read_update_ratio": store.reads / max(1, store.updates),
                "misses": float(misses),
            },
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _service_profile(
            regions=(
                # memtable + row cache: random key probes over a huge heap
                MemoryRegion("kv-heap", 2048 << 20, 1.0, "pointer", burst=2,
                             hot_fraction=0.001, hot_weight=0.95),
                MemoryRegion("commit-log", 32 << 20, 0.5, "sequential"),
            ),
        )


# ---------------------------------------------------------------------------
# Media Streaming (Darwin)
# ---------------------------------------------------------------------------


@register
class MediaStreaming(ComparisonWorkload):
    name = "Media Streaming"
    suite = "CloudSuite"

    CHUNK = 64 * 1024

    def run(self, scale: float = 1.0) -> ComparisonRun:
        rng = random.Random(63)
        # catalogue: GetMediumLow 70 / GetShortHi 30 (paper's Faban mix)
        videos = {
            f"medium{i}": 300 * self.CHUNK for i in range(max(1, int(10 * scale)))
        }
        videos.update(
            {f"short{i}": 60 * self.CHUNK for i in range(max(1, int(10 * scale)))}
        )
        sessions = max(2, int(20 * scale))  # paper: 20 client threads
        delivered = 0
        stalls = 0
        for _ in range(sessions):
            name = (
                rng.choice([v for v in videos if v.startswith("medium")])
                if rng.random() < 0.7
                else rng.choice([v for v in videos if v.startswith("short")])
            )
            size = videos[name]
            buffered = 0
            # paced chunk delivery with a client buffer model
            for offset in range(0, size, self.CHUNK):
                buffered += self.CHUNK
                consumed = self.CHUNK * 0.97  # client drains slightly slower
                buffered -= consumed
                if buffered < 0:
                    stalls += 1
                    buffered = 0
                delivered += self.CHUNK
        return ComparisonRun(
            self.name,
            None,
            {"delivered_bytes": float(delivered), "sessions": float(sessions),
             "stalls": float(stalls)},
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _service_profile(
            # §IV-C: "Media streaming has a larger instruction footprint and
            # suffers from severe L1 Instruction cache misses ... about
            # three times more than the average of the data analysis
            # workloads" — the biggest code footprint in the study.
            code_footprint=4 * 1024 * 1024,
            hot_code_fraction=0.3,
            hot_code_weight=0.8,
            regions=(
                # media chunks stream from the page cache
                MemoryRegion("media-files", 4096 << 20, 1.0, "sequential"),
                MemoryRegion("session-state", 64 << 20, 0.5, "pointer", burst=2,
                             hot_fraction=0.01, hot_weight=0.9),
            ),
            # packetised sends: the most kernel-intensive service
            kernel_fraction=0.5,
            kernel_episode_len=260,
        )


# ---------------------------------------------------------------------------
# Software Testing (Cloud9)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymProgram:
    """A toy branching program over one symbolic integer variable.

    Each instruction is (op, constant): the symbolic executor forks on
    every comparison, maintaining an interval path condition — the essence
    of Cloud9's path exploration over the coreutils binaries.
    """

    branches: tuple[tuple[str, int], ...]


def explore(program: SymProgram, lo: int = 0, hi: int = 1 << 16) -> int:
    """Count feasible paths through *program* by interval splitting."""
    frontier = [(0, lo, hi)]
    feasible = 0
    while frontier:
        pc, lo_bound, hi_bound = frontier.pop()
        if pc == len(program.branches):
            feasible += 1
            continue
        op, const = program.branches[pc]
        if op == "lt":
            true_range = (lo_bound, min(hi_bound, const - 1))
            false_range = (max(lo_bound, const), hi_bound)
        elif op == "ge":
            true_range = (max(lo_bound, const), hi_bound)
            false_range = (lo_bound, min(hi_bound, const - 1))
        elif op == "eq":
            true_range = (max(lo_bound, const), min(hi_bound, const))
            false_range = (lo_bound, hi_bound) if not lo_bound <= const <= hi_bound else (
                lo_bound, hi_bound
            )
        else:
            raise ValueError(f"unknown op {op!r}")
        if true_range[0] <= true_range[1]:
            frontier.append((pc + 1, *true_range))
        if op != "eq" and false_range[0] <= false_range[1]:
            frontier.append((pc + 1, *false_range))
        elif op == "eq":
            # != side: approximate by keeping the full range minus nothing
            # when the constant splits it (two sub-ranges).
            if lo_bound <= const <= hi_bound:
                if lo_bound <= const - 1:
                    frontier.append((pc + 1, lo_bound, const - 1))
                if const + 1 <= hi_bound:
                    frontier.append((pc + 1, const + 1, hi_bound))
            else:
                frontier.append((pc + 1, lo_bound, hi_bound))
    return feasible


@register
class SoftwareTesting(ComparisonWorkload):
    name = "Software Testing"
    suite = "CloudSuite"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        rng = random.Random(64)
        depth = max(3, int(14 * scale))
        program = SymProgram(
            tuple(
                (rng.choice(["lt", "ge", "eq"]), rng.randrange(1, 1 << 16))
                for _ in range(depth)
            )
        )
        paths = explore(program)
        return ComparisonRun(
            self.name,
            program,
            {"feasible_paths": float(paths), "branch_depth": float(depth),
             "path_bound": float(2 ** depth)},
        )

    def uarch_profile(self) -> dict[str, Any]:
        # Cloud9 = LLVM interpreter + solver: interpreter dispatch makes it
        # code-footprint heavy and indirect-branch bound, but it is CPU
        # work, not service I/O (its Figure 4 kernel share is small).
        return _service_profile(
            code_footprint=1536 * 1024,
            indirect_fraction=0.06,
            indirect_targets=4,
            regions=(
                MemoryRegion("interpreter-state", 16 << 20, 0.5, "pointer", burst=3,
                             hot_fraction=0.015, hot_weight=0.95),
                MemoryRegion("constraint-pool", 8 << 20, 0.3, "random", burst=3,
                             hot_fraction=0.05, hot_weight=0.9),
            ),
            kernel_fraction=0.08,
            partial_register_ratio=0.2,
            branch_regularity=0.9,
        )


# ---------------------------------------------------------------------------
# Web Search (Nutch)
# ---------------------------------------------------------------------------


class InvertedIndex:
    """Inverted index with tf-idf scoring (the Nutch index server's job)."""

    def __init__(self) -> None:
        self.postings: dict[str, dict[str, int]] = {}
        self.doc_lengths: dict[str, int] = {}

    def add(self, doc_id: str, text: str) -> None:
        words = text.split()
        self.doc_lengths[doc_id] = len(words)
        for word in words:
            self.postings.setdefault(word, {}).setdefault(doc_id, 0)
            self.postings[word][doc_id] += 1

    def search(self, query: list[str], top_n: int = 10) -> list[tuple[str, float]]:
        n_docs = len(self.doc_lengths) or 1
        scores: dict[str, float] = {}
        for term in query:
            docs = self.postings.get(term)
            if not docs:
                continue
            idf = math.log(1 + n_docs / len(docs))
            for doc_id, tf in docs.items():
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf / self.doc_lengths[doc_id]
        return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:top_n]


@register
class WebSearch(ComparisonWorkload):
    name = "Web Search"
    suite = "CloudSuite"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        docs = datagen.generate_documents(max(5, int(800 * scale)), seed=65)
        index = InvertedIndex()
        for doc_id, text in docs:
            index.add(doc_id, text)
        rng = random.Random(66)
        vocab = list(index.postings)
        queries = max(5, int(200 * scale))
        answered = 0
        for _ in range(queries):
            query = [vocab[rng.randrange(len(vocab))] for _ in range(rng.randint(1, 3))]
            hits = index.search(query)
            if hits:
                answered += 1
                # every hit must actually contain a query term
                best_doc = hits[0][0]
                text = dict(docs)[best_doc]
                assert any(term in text.split() for term in query)
        return ComparisonRun(
            self.name,
            index,
            {"documents": float(len(docs)), "queries": float(queries),
             "answered": float(answered)},
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _service_profile(
            regions=(
                # posting lists: the paper's 17 GB index + 35 GB segments —
                # term lookups are random, traversals sequential
                MemoryRegion("postings", 1536 << 20, 1.0, "random", burst=8,
                             hot_fraction=0.003, hot_weight=0.92),
                MemoryRegion("segments", 512 << 20, 0.4, "sequential"),
            ),
            # query handling does more user-level scoring than the other
            # services: a bit less kernel share
            kernel_fraction=0.4,
        )


# ---------------------------------------------------------------------------
# Web Serving (Olio)
# ---------------------------------------------------------------------------


@register
class WebServing(ComparisonWorkload):
    name = "Web Serving"
    suite = "CloudSuite"

    def run(self, scale: float = 1.0) -> ComparisonRun:
        rng = random.Random(67)
        users = max(5, int(500 * scale))  # paper: 500 concurrent users
        events: list[dict[str, Any]] = []
        attendance: dict[int, set[int]] = {}
        pages_rendered = 0
        requests = max(10, int(5000 * scale))
        for _ in range(requests):
            action = rng.random()
            if action < 0.6:  # browse home page: render top events
                top = sorted(events, key=lambda e: -len(attendance.get(e["id"], ())))[:10]
                page = "".join(f"<li>{e['title']}</li>" for e in top)
                pages_rendered += 1
                assert page.count("<li>") == len(top)
            elif action < 0.8 and events:  # attend an event
                event = events[rng.randrange(len(events))]
                attendance.setdefault(event["id"], set()).add(rng.randrange(users))
                pages_rendered += 1
            else:  # add an event
                event_id = len(events)
                events.append({"id": event_id, "title": f"event{event_id}"})
                pages_rendered += 1
        return ComparisonRun(
            self.name,
            events,
            {"events": float(len(events)), "pages": float(pages_rendered),
             "attendees": float(sum(len(a) for a in attendance.values()))},
        )

    def uarch_profile(self) -> dict[str, Any]:
        return _service_profile(
            # PHP/interpreted front end: the most irregular control flow
            code_footprint=2560 * 1024,
            indirect_fraction=0.08,
            branch_regularity=0.88,
            regions=(
                MemoryRegion("php-heap", 1024 << 20, 1.0, "pointer", burst=2,
                             hot_fraction=0.002, hot_weight=0.95),
                MemoryRegion("template-cache", 16 << 20, 0.6, "sequential"),
            ),
            kernel_fraction=0.44,
        )
