"""Symbolic performance-event catalogue.

Each :class:`PerfEvent` mirrors a Westmere PMU event the paper programs via
event-select MSRs: a symbolic name, the (event number, umask) pair from the
Intel SDM, and an extractor that reads the corresponding count from a
:class:`~repro.uarch.pipeline.SimulationResult`.  The catalogue covers the
~20 events the paper collects: cycles, instructions, cache and TLB misses,
branch activity, and the six pipeline-stall categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.uarch.pipeline import SimulationResult


@dataclass(frozen=True)
class PerfEvent:
    """One programmable PMU event.

    Attributes:
        name: perf-style symbolic name.
        event_select: hardware event number (Intel SDM, for flavour).
        umask: unit mask.
        description: human-readable description.
        extract: reads the count from a simulation result.
    """

    name: str
    event_select: int
    umask: int
    description: str
    extract: Callable[[SimulationResult], int]

    @property
    def code(self) -> str:
        """The raw perf event code string, e.g. ``r0280``."""
        return f"r{self.umask:02x}{self.event_select:02x}"

    def read(self, result: SimulationResult) -> int:
        return int(self.extract(result))


def _catalog() -> dict[str, PerfEvent]:
    entries = [
        # name, event, umask, description, extractor
        ("cycles", 0x3C, 0x00, "Unhalted core cycles", lambda r: r.cycles),
        ("instructions", 0xC0, 0x00, "Instructions retired", lambda r: r.instructions),
        (
            "kernel-instructions",
            0xC0,
            0x02,
            "Instructions retired in ring 0",
            lambda r: r.kernel_instructions,
        ),
        ("branches", 0xC4, 0x00, "Branch instructions retired", lambda r: r.branches),
        (
            "branch-misses",
            0xC5,
            0x00,
            "Mispredicted branch instructions retired",
            lambda r: r.branch_mispredictions,
        ),
        ("L1-icache-loads", 0x80, 0x03, "L1I fetches", lambda r: r.l1i_accesses),
        ("L1-icache-load-misses", 0x80, 0x02, "L1I misses", lambda r: r.l1i_misses),
        ("L1-dcache-loads", 0x43, 0x01, "L1D accesses", lambda r: r.l1d_accesses),
        ("L1-dcache-load-misses", 0x51, 0x01, "L1D misses", lambda r: r.l1d_misses),
        ("l2_rqsts.references", 0x24, 0xFF, "L2 requests", lambda r: r.l2_accesses),
        ("l2_rqsts.miss", 0x24, 0xAA, "L2 misses", lambda r: r.l2_misses),
        ("llc.references", 0x2E, 0x4F, "L3 requests", lambda r: r.l3_accesses),
        ("llc.misses", 0x2E, 0x41, "L3 misses", lambda r: r.l3_misses),
        (
            "itlb_misses.walk_completed",
            0x85,
            0x02,
            "Completed page walks from ITLB misses",
            lambda r: r.itlb_walks,
        ),
        (
            "dtlb_misses.walk_completed",
            0x49,
            0x02,
            "Completed page walks from DTLB misses",
            lambda r: r.dtlb_walks,
        ),
        ("mem_inst_retired.loads", 0x0B, 0x01, "Loads retired", lambda r: r.loads),
        ("mem_inst_retired.stores", 0x0B, 0x02, "Stores retired", lambda r: r.stores),
        (
            "ild_stall.any",
            0x87,
            0x0F,
            "Instruction-fetch stall cycles (L1I + ITLB)",
            lambda r: r.fetch_stall_cycles,
        ),
        (
            "rat_stalls.any",
            0xD2,
            0x0F,
            "Register-allocation-table stall cycles",
            lambda r: r.rat_stall_cycles,
        ),
        (
            "resource_stalls.load",
            0xA2,
            0x02,
            "Load-buffer-full stall cycles",
            lambda r: r.load_stall_cycles,
        ),
        (
            "resource_stalls.rs_full",
            0xA2,
            0x04,
            "Reservation-station-full stall cycles",
            lambda r: r.rs_full_stall_cycles,
        ),
        (
            "resource_stalls.store",
            0xA2,
            0x08,
            "Store-buffer-full stall cycles",
            lambda r: r.store_stall_cycles,
        ),
        (
            "resource_stalls.rob_full",
            0xA2,
            0x10,
            "Re-order-buffer-full stall cycles",
            lambda r: r.rob_full_stall_cycles,
        ),
    ]
    return {
        name: PerfEvent(name, event, umask, desc, fn)
        for name, event, umask, desc, fn in entries
    }


#: All supported events, keyed by symbolic name.
EVENT_CATALOG: dict[str, PerfEvent] = _catalog()


def lookup_event(name: str) -> PerfEvent:
    """Return the catalogue entry for *name*; raise KeyError with the
    available names otherwise."""
    try:
        return EVENT_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(EVENT_CATALOG))
        raise KeyError(f"unknown perf event {name!r}; known events: {known}") from None
