"""Tests for the MapReduce engine: functional semantics and counters."""

import collections
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import make_cluster
from repro.mapreduce import (
    DistributedInput,
    JobConf,
    LocalEngine,
    MapReduceJob,
    hash_partitioner,
    make_range_partitioner,
    record_bytes,
)
from repro.mapreduce.io import records_bytes, value_bytes


def wc_map(key, value):
    for word in value.split():
        yield word, 1


def wc_reduce(key, values):
    yield key, sum(values)


def identity_map(key, value):
    yield key, value


def identity_reduce(key, values):
    for value in values:
        yield key, value


def wordcount_job(reduces=4, combiner=False):
    return MapReduceJob(
        wc_map,
        wc_reduce,
        JobConf("wordcount", num_reduces=reduces),
        combiner=wc_reduce if combiner else None,
    )


class TestWordCountSemantics:
    DOCS = [("d%d" % i, "the quick brown fox the dog the end") for i in range(10)]

    def test_matches_collections_counter(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        expected = collections.Counter(
            word for _, text in self.DOCS for word in text.split()
        )
        assert dict(result.output) == dict(expected)

    def test_combiner_does_not_change_result(self):
        plain = LocalEngine().execute(wordcount_job(combiner=False), self.DOCS)
        combined = LocalEngine().execute(wordcount_job(combiner=True), self.DOCS)
        assert dict(plain.output) == dict(combined.output)

    def test_combiner_shrinks_shuffle(self):
        plain = LocalEngine().execute(wordcount_job(combiner=False), self.DOCS)
        combined = LocalEngine().execute(wordcount_job(combiner=True), self.DOCS)
        assert combined.counters.shuffle_bytes < plain.counters.shuffle_bytes

    def test_single_reducer(self):
        result = LocalEngine().execute(wordcount_job(reduces=1), self.DOCS)
        assert len(result.reducer_outputs) == 1
        assert dict(result.output)["the"] == 30

    def test_each_key_in_exactly_one_partition(self):
        result = LocalEngine().execute(wordcount_job(reduces=4), self.DOCS)
        seen = collections.Counter()
        for part in result.reducer_outputs:
            for key, _ in part:
                seen[key] += 1
        assert all(count == 1 for count in seen.values())


class TestCounters:
    DOCS = [("d", "a b c a"), ("e", "b c")]

    def test_map_input_records(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert result.counters.map_input_records == 2

    def test_map_output_records(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert result.counters.map_output_records == 6

    def test_reduce_input_equals_spill_without_combiner(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert result.counters.reduce_input_records == result.counters.spilled_records

    def test_reduce_groups_equals_distinct_keys(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert result.counters.reduce_input_groups == 3

    def test_output_records_counted(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert result.counters.reduce_output_records == 3

    def test_shuffle_bytes_sum_per_reducer(self):
        result = LocalEngine().execute(wordcount_job(), self.DOCS)
        assert sum(result.counters.reduce_shuffle_bytes) == result.counters.shuffle_bytes

    def test_counters_merge(self):
        a = LocalEngine().execute(wordcount_job(), self.DOCS).counters
        b = LocalEngine().execute(wordcount_job(), self.DOCS).counters
        before = a.map_input_records
        a.merge(b)
        assert a.map_input_records == 2 * before

    def test_as_dict_has_hadoop_names(self):
        counters = LocalEngine().execute(wordcount_job(), self.DOCS).counters
        d = counters.as_dict()
        assert "Map input records" in d
        assert "Reduce shuffle bytes" in d


class TestMapOnlyJobs:
    def test_map_only_output(self):
        job = MapReduceJob(wc_map, None, JobConf("grep-like", num_reduces=0))
        result = LocalEngine().execute(job, [("d", "x y")])
        assert sorted(result.output) == [("x", 1), ("y", 1)]
        assert result.work.reduces == []

    def test_reducerless_with_reduces_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob(wc_map, None, JobConf("bad", num_reduces=2))


class TestSorting:
    def test_range_partitioned_total_order(self):
        rng = random.Random(7)
        records = [(rng.randrange(10**6), None) for _ in range(5000)]
        partitioner = make_range_partitioner([k for k, _ in records[:500]], 8)
        job = MapReduceJob(
            identity_map,
            identity_reduce,
            JobConf("sort", num_reduces=8),
            partitioner=partitioner,
        )
        result = LocalEngine().execute(job, records)
        keys = [k for k, _ in result.output]
        assert keys == sorted(k for k, _ in records)

    def test_sort_is_permutation(self):
        rng = random.Random(8)
        records = [(rng.randrange(100), i) for i in range(1000)]
        job = MapReduceJob(identity_map, identity_reduce, JobConf("s", num_reduces=4))
        result = LocalEngine().execute(job, records)
        assert collections.Counter(v for _, v in result.output) == collections.Counter(
            v for _, v in records
        )

    def test_unsorted_grouping_without_total_order(self):
        # Keys of mixed types cannot be sorted; sort_keys=False must work.
        records = [((1, "a"), 1), (("b",), 2), ((1, "a"), 3)]
        job = MapReduceJob(
            identity_map,
            wc_reduce,
            JobConf("group", num_reduces=1, sort_keys=False),
        )
        result = LocalEngine().execute(job, records)
        assert dict(result.output) == {(1, "a"): 4, ("b",): 2}


class TestPartitioners:
    def test_hash_partitioner_stable(self):
        assert hash_partitioner("abc", 8) == hash_partitioner("abc", 8)

    def test_hash_partitioner_range(self):
        for key in ("a", "b", 42, (1, 2)):
            assert 0 <= hash_partitioner(key, 5) < 5

    def test_hash_partitioner_rejects_zero(self):
        with pytest.raises(ValueError):
            hash_partitioner("a", 0)

    def test_range_partitioner_monotone(self):
        part = make_range_partitioner(list(range(100)), 4)
        parts = [part(k, 4) for k in range(100)]
        assert parts == sorted(parts)
        assert max(parts) <= 3

    def test_range_partitioner_single_reduce(self):
        part = make_range_partitioner([1, 2, 3], 1)
        assert part(99, 1) == 0

    def test_range_partitioner_empty_sample(self):
        part = make_range_partitioner([], 4)
        assert part(5, 4) == 0

    @given(st.lists(st.integers(), min_size=2, max_size=300), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_range_partitioner_preserves_order_property(self, keys, reduces):
        part = make_range_partitioner(keys, reduces)
        ordered = sorted(keys)
        parts = [part(k, reduces) for k in ordered]
        assert parts == sorted(parts)


class TestRecordSizing:
    @pytest.mark.parametrize(
        "value,size",
        [
            (None, 1),
            (True, 1),
            (7, 8),
            (3.14, 8),
            ("abc", 3),
            (b"abcd", 4),
            ((1, 2), 18),
            ([1.0], 10),
            ({"a": 1}, 11),
        ],
    )
    def test_value_bytes(self, value, size):
        assert value_bytes(value) == size

    def test_record_bytes_includes_framing(self):
        assert record_bytes("ab", 1) == 4 + 2 + 8

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            value_bytes(object())

    def test_numpy_arrays_sized(self):
        import numpy as np

        assert value_bytes(np.zeros(4)) == 32


class TestClusterIntegration:
    def test_timeline_attached_with_cluster(self):
        cluster = make_cluster(2, block_size=4096)
        result = LocalEngine().execute(
            wordcount_job(), [("d%d" % i, "lorem ipsum " * 50) for i in range(20)],
            cluster=cluster, input_name="docs",
        )
        assert result.timeline is not None
        assert result.timeline.duration_s > 0
        assert result.timeline.map_tasks == result.work.maps.__len__()

    def test_distributed_input_splits_follow_blocks(self):
        cluster = make_cluster(2, block_size=1024)
        records = [("k%05d" % i, "v" * 50) for i in range(200)]
        dist = DistributedInput.put(cluster.hdfs, "f", records)
        assert dist.num_splits == len(dist.hfile.blocks)
        reassembled = [r for i in range(dist.num_splits) for r in dist.split(i)]
        assert reassembled == records

    def test_split_bytes_total_matches_file(self):
        cluster = make_cluster(2, block_size=1024)
        records = [("k%05d" % i, "v" * 50) for i in range(100)]
        dist = DistributedInput.put(cluster.hdfs, "f", records)
        total = sum(dist.split_bytes(i) for i in range(dist.num_splits))
        assert total == dist.size_bytes == records_bytes(records)

    def test_auto_input_names_unique(self):
        cluster = make_cluster(2)
        engine = LocalEngine()
        engine.execute(wordcount_job(), [("a", "x")], cluster=cluster)
        engine.execute(wordcount_job(), [("a", "x")], cluster=cluster)  # must not clash

    def test_work_byte_accounting_consistent(self):
        result = LocalEngine().execute(wordcount_job(), [("d", "w " * 100)])
        total_map_out = sum(m.output_bytes for m in result.work.maps)
        total_shuffle = sum(r.shuffle_bytes for r in result.work.reduces)
        assert total_map_out == result.counters.spilled_bytes
        assert total_shuffle == result.counters.shuffle_bytes


class TestEngineProperties:
    @given(
        st.lists(
            st.tuples(st.text(max_size=5), st.integers(0, 100)), min_size=1, max_size=200
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_and_sum_equals_counter(self, records, reduces):
        job = MapReduceJob(identity_map, wc_reduce, JobConf("sum", num_reduces=reduces))
        result = LocalEngine().execute(job, records)
        expected = collections.defaultdict(int)
        for key, value in records:
            expected[key] += value
        assert dict(result.output) == dict(expected)

    @given(st.integers(1, 16))
    @settings(max_examples=16, deadline=None)
    def test_output_independent_of_split_count(self, splits):
        docs = [("d%d" % i, "alpha beta gamma alpha") for i in range(12)]
        result = LocalEngine(default_splits=splits).execute(wordcount_job(), docs)
        assert dict(result.output) == {"alpha": 24, "beta": 12, "gamma": 12}
