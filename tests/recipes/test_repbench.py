"""Repetition benchmark: the pinned per-bucket cache-payoff contract."""

import pytest

from repro.recipes import run_repetition_benchmark
from repro.recipes.repbench import DEFAULT_BUCKETS, _query_stream
import random


class TestContract:
    REPORT = run_repetition_benchmark(queries_per_bucket=16, seed=0)

    def test_hit_rate_grows_monotonically_with_repetitiveness(self):
        rates = [b.hit_rate for b in self.REPORT.buckets]
        assert rates == sorted(rates)
        assert self.REPORT.hit_rates_monotone()

    def test_zero_repetition_bucket_never_hits(self):
        assert self.REPORT.buckets[0].target_rate == 0.0
        assert self.REPORT.buckets[0].hits == 0

    def test_most_repetitive_bucket_has_a_latency_win(self):
        top = self.REPORT.top_bucket
        assert top.saved_s > 0
        assert top.mean_effective_s < top.mean_cold_s
        assert self.REPORT.contract_holds()

    def test_accounting_adds_up(self):
        for bucket in self.REPORT.buckets:
            assert bucket.hits + bucket.misses == bucket.queries
            assert bucket.hit_rate == bucket.hits / bucket.queries

    def test_report_is_deterministic(self):
        again = run_repetition_benchmark(queries_per_bucket=16, seed=0)
        assert again.to_dict() == self.REPORT.to_dict()


class TestCacheOff:
    def test_no_result_cache_means_no_hits(self):
        report = run_repetition_benchmark(
            buckets=(0.0, 0.9), queries_per_bucket=6, use_cache=False
        )
        assert not report.cache_enabled
        assert all(b.hits == 0 for b in report.buckets)
        assert all(b.saved_s == 0.0 for b in report.buckets)
        # nothing to claim with the cache off — the contract is vacuous
        assert report.contract_holds()

    def test_env_escape_hatch_disables_the_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        report = run_repetition_benchmark(
            buckets=(0.9,), queries_per_bucket=6, use_cache=True
        )
        assert not report.cache_enabled
        assert all(b.hits == 0 for b in report.buckets)


class TestStreams:
    def test_zero_rate_stream_has_no_duplicates(self):
        stream = _query_stream(0.0, 40, random.Random("s"))
        assert len(set(stream)) == len(stream)

    def test_high_rate_stream_repeats(self):
        stream = _query_stream(0.9, 40, random.Random("s"))
        assert len(set(stream)) < len(stream) / 2


class TestValidation:
    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bad_inputs_are_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            run_repetition_benchmark(buckets=(0.5, 0.1), queries_per_bucket=1)
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            run_repetition_benchmark(buckets=(0.5, 1.5), queries_per_bucket=1)
        with pytest.raises(ValueError, match="positive"):
            run_repetition_benchmark(queries_per_bucket=0)
