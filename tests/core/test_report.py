"""Tests for the table/figure renderers."""

import pytest

from repro.core import (
    DCBench,
    characterize,
    render_figure_series,
    render_metric_table,
    render_stall_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.core.report import FIGURE_METRICS


@pytest.fixture(scope="module")
def mini_chars():
    suite = DCBench.default()
    names = ["Naive Bayes", "Sort", "SPECWeb", "HPCC-HPL"]
    return [characterize(suite.entry(n), instructions=20_000) for n in names]


class TestFigureRenderers:
    def test_all_scalar_figures_covered(self):
        assert set(FIGURE_METRICS) == {3, 4, 7, 8, 9, 10, 11, 12}

    @pytest.mark.parametrize("figure", sorted(FIGURE_METRICS))
    def test_series_has_avg_bar(self, figure, mini_chars):
        series = render_figure_series(figure, mini_chars)
        assert "avg" in series  # the data-analysis average bar
        assert "Sort" in series

    def test_avg_is_da_average(self, mini_chars):
        series = render_figure_series(3, mini_chars)
        da = [series["Naive Bayes"], series["Sort"]]
        assert series["avg"] == pytest.approx(sum(da) / 2)

    def test_series_rejects_figure_6(self, mini_chars):
        with pytest.raises(ValueError):
            render_figure_series(6, mini_chars)

    @pytest.mark.parametrize("figure", sorted(FIGURE_METRICS))
    def test_metric_table_renders(self, figure, mini_chars):
        text = render_metric_table(figure, mini_chars)
        assert f"Figure {figure}" in text
        assert "Sort" in text

    def test_stall_table(self, mini_chars):
        text = render_stall_table(mini_chars)
        assert "Figure 6" in text
        assert "rs_full" in text
        assert "SPECWeb" in text


class TestTableRenderers:
    def test_table1_rows(self):
        text = render_table1()
        assert "Table I" in text
        assert "150 GB documents" in text
        assert "68131" in text  # Naive Bayes retired instructions
        assert "mahout" in text

    def test_table2_scenarios(self):
        text = render_table2()
        assert "Table II" in text
        assert "Spam recognition" in text
        assert "Word frequency count" in text

    def test_table3_matches_paper(self):
        text = render_table3()
        assert "Intel Xeon E5645" in text
        assert "6 cores@2.4G" in text
        assert "12 MB" in text
        assert "32 GB , DDR3" in text
