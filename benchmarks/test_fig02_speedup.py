"""Figure 2: speedup of the eleven workloads on 1/4/8 slaves.

Paper shape: speedups at 8 slaves range 3.3–8.2 (Naive Bayes 6.6) —
"the data analysis workloads are diverse in terms of performance
characteristics".
"""

from conftest import run_once

from repro.analysis.speedup import speedup_study

PAPER_RANGE_AT_8 = (3.3, 8.2)
PAPER_NAIVE_BAYES_AT_8 = 6.6


def test_fig02(benchmark):
    result = run_once(benchmark, speedup_study)
    print()
    print("Figure 2: Speed up on 1/4/8 slaves (normalised to 1 slave)")
    print(f"{'workload':<16s}{'1 slave':>9s}{'4 slaves':>10s}{'8 slaves':>10s}")
    for name in result.durations:
        s1, s4, s8 = result.series(name)
        print(f"{name:<16s}{s1:>9.2f}{s4:>10.2f}{s8:>10.2f}")
    lo, hi = result.max_spread()
    print(f"\nspread at 8 slaves: {lo:.2f} – {hi:.2f}  (paper: 3.3 – 8.2)")

    # Shape checks: monotone scaling, wide diversity, sub-9x envelope.
    for name in result.durations:
        series = result.series(name)
        assert series[0] == 1.0
        assert series == sorted(series), f"{name} slowed down with more slaves"
    assert hi - lo > 2.0, "workloads should scale diversely"
    assert 2.0 <= lo, "worst scaling collapsed below the paper's regime"
    assert hi <= 9.0
    bayes = result.speedup("Naive Bayes", 8)
    assert 4.0 <= bayes <= 8.5  # paper: 6.6
