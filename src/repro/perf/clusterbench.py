"""Benchmark harness for the cluster dispatch engines (``bench-cluster``).

Times a pinned matrix of scheduler mixes three ways —

* **reference**: the straight-line ``MultiJobCluster._run_round`` loop
  (cold),
* **fast**: the indexed engine in ``perf/clusterpath.py`` (cold), and
* **warm**: the fast path through a freshly-populated
  :class:`~repro.core.simcache.MixCache` (a cache hit),

verifies bit-identical :class:`MixOutcome` payloads across all three,
and writes the measurements to ``BENCH_cluster.json`` (next to
``BENCH_uarch.json``) so the cluster layer's perf trajectory is tracked
across PRs.  On top of the matrix it runs the headline **scale row** — a
day-long 100k-job trace on a simulated 1000-node cluster — fast-cold
and warm only (the reference engine would take minutes there, which is
the point of the fast path).

The matrix pins one mix per dispatch regime: FIFO under sustained slot
contention, the Fair scheduler with preemption timeouts firing, the
Capacity scheduler with chained stages on a multi-rack topology, and a
fault plan exercising crash/partition/fail-slow paths with speculation.
``docs/performance.md`` explains how to read the file.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
    MultiJobCluster,
    PoolConfig,
    QueueConfig,
)
from repro.core.simcache import (
    MixCache,
    cluster_code_version,
    mix_cache_key,
    mix_outcome_payload,
    store_mix,
)
from repro.perf.clusterpath import FastMultiJobCluster

#: Schema of BENCH_cluster.json; bump on layout changes.
BENCH_SCHEMA = 1

#: The headline scale row: a day-long trace, paper-scale node count.
DEFAULT_SCALE_JOBS = 100_000
DEFAULT_SCALE_NODES = 1000
DAY_S = 86_400.0


# -- pinned mix builders ------------------------------------------------------


def _submit_uniform(multi, jobs: int, rng: random.Random, spacing_s: float) -> None:
    for i in range(jobs):
        maps = tuple(
            MapWork(1 << 18, rng.uniform(0.5, 3.0), 1 << 16) for _ in range(2)
        )
        reduces = (ReduceWork(1 << 16, rng.uniform(0.3, 1.0), 1 << 16),)
        multi.submit(
            JobWork(name=f"j{i}", maps=maps, reduces=reduces),
            arrival_s=i * spacing_s,
            user=f"u{i % 5}",
        )


def _mix_fifo(cls, jobs: int, nodes: int):
    """FIFO under sustained contention: arrivals outpace slot drain."""
    cluster = make_cluster(
        num_slaves=nodes, map_slots=8, reduce_slots=4, block_size=256 * 1024
    )
    multi = cls(cluster, scheduler=FifoScheduler(), observability="lean")
    _submit_uniform(multi, jobs, random.Random(101), spacing_s=0.9)
    return multi


def _mix_fair(cls, jobs: int, nodes: int):
    """Fair scheduler, preemption on, bursty pools so timeouts fire."""
    cluster = make_cluster(
        num_slaves=nodes, map_slots=4, reduce_slots=2, block_size=128 * 1024
    )
    scheduler = FairScheduler(
        pools=[
            PoolConfig("etl", weight=2.0, min_share=2 * nodes),
            PoolConfig("adhoc"),
        ],
        preemption=True,
        min_share_timeout_s=5.0,
        fair_share_timeout_s=15.0,
    )
    multi = cls(cluster, scheduler=scheduler, observability="full")
    rng = random.Random(202)
    for i in range(jobs):
        n_maps = rng.randint(1, 6)
        maps = tuple(
            MapWork(1 << 17, rng.uniform(1.0, 6.0), 1 << 15)
            for _ in range(n_maps)
        )
        reduces = (ReduceWork(1 << 15, rng.uniform(0.2, 0.8), 1 << 15),)
        # adhoc floods early, etl arrives into a saturated cluster — the
        # min-share starvation clock has to preempt to honour it
        pool = "adhoc" if i % 3 else "etl"
        multi.submit(
            JobWork(name=f"j{i}", maps=maps, reduces=reduces),
            arrival_s=rng.uniform(0.0, jobs * 0.35),
            user=f"u{i % 4}",
            pool=pool,
        )
    return multi


def _mix_capacity(cls, jobs: int, nodes: int):
    """Capacity queues + chained stages + racks + placement hints."""
    cluster = make_cluster(
        num_slaves=nodes,
        map_slots=4,
        reduce_slots=2,
        block_size=128 * 1024,
        racks=4,
    )
    scheduler = CapacityScheduler(
        queues=[
            QueueConfig("prod", capacity=0.7, user_limit=0.5),
            QueueConfig("dev", capacity=0.3),
        ]
    )
    multi = cls(cluster, scheduler=scheduler, observability="full")
    rng = random.Random(303)
    names = [node.name for node in cluster.slaves]
    for i in range(jobs):
        works = []
        for stage in range(rng.randint(1, 3)):
            maps = tuple(
                MapWork(
                    1 << 17,
                    rng.uniform(0.5, 3.0),
                    1 << 15,
                    preferred_nodes=tuple(rng.sample(names, 2)),
                )
                for _ in range(rng.randint(1, 4))
            )
            reduces = (ReduceWork(1 << 15, rng.uniform(0.2, 0.6), 1 << 15),)
            works.append(JobWork(name=f"j{i}s{stage}", maps=maps, reduces=reduces))
        multi.submit_chain(
            works,
            arrival_s=rng.uniform(0.0, jobs * 0.3),
            user=f"u{i % 3}",
            pool="prod" if i % 4 else "dev",
            id_prefix=f"c{i:04d}",
        )
    return multi


def _mix_faults(cls, jobs: int, nodes: int):
    """Crash + partition + fail-slow under FIFO with speculation."""
    cluster = make_cluster(
        num_slaves=nodes, map_slots=4, reduce_slots=2, block_size=128 * 1024
    )
    plan = FaultPlan(
        node_crashes=(("slave2", 40.0),),
        partitions=(("slave3", 10.0, 8.0),),
        limping_nodes=(("slave4", 3.0),),
        speculative_execution=True,
    )
    multi = cls(
        cluster, scheduler=FifoScheduler(), plan=plan, observability="full"
    )
    rng = random.Random(404)
    for i in range(jobs):
        maps = tuple(
            MapWork(1 << 17, rng.uniform(0.5, 4.0), 1 << 15)
            for _ in range(rng.randint(1, 4))
        )
        reduces = (ReduceWork(1 << 15, rng.uniform(0.2, 0.8), 1 << 15),)
        multi.submit(
            JobWork(name=f"j{i}", maps=maps, reduces=reduces),
            arrival_s=rng.uniform(0.0, jobs * 0.4),
            user=f"u{i % 3}",
        )
    return multi


def _mix_scale(cls, jobs: int, nodes: int):
    """The headline row: a day-long trace at data-center node count."""
    cluster = make_cluster(
        num_slaves=nodes, map_slots=8, reduce_slots=4, block_size=256 * 1024
    )
    multi = cls(cluster, scheduler=FifoScheduler(), observability="lean")
    _submit_uniform(multi, jobs, random.Random(11), spacing_s=DAY_S / max(jobs, 1))
    return multi


@dataclass(frozen=True)
class MixSpec:
    """One pinned benchmark mix."""

    name: str
    group: str
    jobs: int
    nodes: int
    build: Callable
    #: False for the scale row: the reference engine is not raced there.
    compare_reference: bool = True


def pinned_matrix(
    scale_jobs: int = DEFAULT_SCALE_JOBS, scale_nodes: int = DEFAULT_SCALE_NODES
) -> list[MixSpec]:
    """The benchmark matrix (equivalence rows + the scale row)."""
    return [
        MixSpec("fifo-contended", "fifo", 2500, 96, _mix_fifo),
        MixSpec("fair-preemption", "fair", 160, 16, _mix_fair),
        MixSpec("capacity-chains", "capacity", 120, 16, _mix_capacity),
        MixSpec("faults-speculation", "faults", 120, 12, _mix_faults),
        MixSpec(
            "scale-day-trace",
            "scale",
            scale_jobs,
            scale_nodes,
            _mix_scale,
            compare_reference=False,
        ),
    ]


# -- measurement --------------------------------------------------------------


@dataclass
class ClusterBenchRow:
    """Per-mix engine timings (seconds) and derived rates."""

    name: str
    group: str
    jobs: int
    nodes: int
    fast_seconds: float
    warm_seconds: float
    bit_identical: bool
    reference_seconds: float | None = None

    @property
    def engine_speedup(self) -> float | None:
        if self.reference_seconds is None or not self.fast_seconds:
            return None
        return self.reference_seconds / self.fast_seconds

    @property
    def warm_speedup(self) -> float | None:
        if self.reference_seconds is None or not self.warm_seconds:
            return None
        return self.reference_seconds / self.warm_seconds

    @property
    def jobs_per_sec_fast(self) -> float:
        return self.jobs / self.fast_seconds if self.fast_seconds else 0.0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "jobs": self.jobs,
            "nodes": self.nodes,
            "reference_seconds": (
                round(self.reference_seconds, 4)
                if self.reference_seconds is not None
                else None
            ),
            "fast_seconds": round(self.fast_seconds, 4),
            "warm_seconds": round(self.warm_seconds, 4),
            "engine_speedup": (
                round(self.engine_speedup, 3)
                if self.engine_speedup is not None
                else None
            ),
            "warm_speedup": (
                round(self.warm_speedup, 3)
                if self.warm_speedup is not None
                else None
            ),
            "jobs_per_sec_fast": round(self.jobs_per_sec_fast, 1),
            "bit_identical": self.bit_identical,
        }


@dataclass
class ClusterBenchReport:
    """The full bench-cluster run: rows plus aggregate totals."""

    rows: list[ClusterBenchRow] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def totals(self) -> dict:
        compared = [r for r in self.rows if r.reference_seconds is not None]
        ref = sum(r.reference_seconds for r in compared)
        fast_compared = sum(r.fast_seconds for r in compared)
        warm_compared = sum(r.warm_seconds for r in compared)
        fast = sum(r.fast_seconds for r in self.rows)
        warm = sum(r.warm_seconds for r in self.rows)
        jobs = sum(r.jobs for r in self.rows)
        probes = self.cache_hits + self.cache_misses
        totals = {
            "mixes": len(self.rows),
            "jobs": jobs,
            "reference_seconds": round(ref, 4),
            "fast_seconds": round(fast, 4),
            "warm_seconds": round(warm, 4),
            "engine_speedup_cold": (
                round(ref / fast_compared, 3) if fast_compared else 0.0
            ),
            "fastpath_speedup_warm": (
                round(ref / warm_compared, 3) if warm_compared else 0.0
            ),
            "jobs_per_sec_fast": round(jobs / fast) if fast else 0,
            "cache_hit_rate": (
                round(self.cache_hits / probes, 4) if probes else 0.0
            ),
            "bit_identical": all(r.bit_identical for r in self.rows),
        }
        scale_rows = [r for r in self.rows if r.reference_seconds is None]
        if scale_rows:
            row = scale_rows[0]
            totals["scale_jobs"] = row.jobs
            totals["scale_nodes"] = row.nodes
            totals["scale_fast_seconds"] = round(row.fast_seconds, 4)
            totals["scale_warm_seconds"] = round(row.warm_seconds, 4)
            totals["scale_jobs_per_sec"] = round(row.jobs_per_sec_fast)
        return totals

    def to_json(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "generated_unix": int(time.time()),
            "cluster_code_version": cluster_code_version(),
            "totals": self.totals(),
            "mixes": [row.to_json() for row in self.rows],
        }


def run_cluster_bench(
    matrix: list[MixSpec] | None = None,
    cache_root: str | None = None,
) -> ClusterBenchReport:
    """Time reference vs fast vs warm-cache for each pinned mix.

    ``cache_root=None`` uses a throwaway temp directory so benchmarking
    never interferes with (or benefits from) the working tree's cache.
    """
    if matrix is None:
        matrix = pinned_matrix()
    report = ClusterBenchReport()

    def measure(spec: MixSpec, root: str) -> ClusterBenchRow:
        reference_seconds = None
        reference_payload = None
        if spec.compare_reference:
            multi = spec.build(MultiJobCluster, spec.jobs, spec.nodes)
            t0 = time.perf_counter()
            outcome = multi.run(engine="events", raise_on_failure=False)
            reference_seconds = time.perf_counter() - t0
            reference_payload = mix_outcome_payload(outcome)
        # fast cold — key the cache entry before the run mutates state
        multi = spec.build(FastMultiJobCluster, spec.jobs, spec.nodes)
        key = mix_cache_key(multi, run_engine="events")
        t0 = time.perf_counter()
        outcome = multi.run(engine="events", raise_on_failure=False)
        fast_seconds = time.perf_counter() - t0
        fast_payload = mix_outcome_payload(outcome)
        store_mix(key, outcome, root)
        report.cache_misses += 1
        # warm — a fresh build must hit the entry just stored
        cache = MixCache(root=root, enabled=True)
        multi = spec.build(FastMultiJobCluster, spec.jobs, spec.nodes)
        t0 = time.perf_counter()
        warm = cache.run(multi, engine="events")
        warm_seconds = time.perf_counter() - t0
        report.cache_hits += cache.hits
        report.cache_misses += cache.misses
        bit_identical = cache.hits == 1 and mix_outcome_payload(warm) == fast_payload
        if reference_payload is not None:
            bit_identical = bit_identical and reference_payload == fast_payload
        return ClusterBenchRow(
            name=spec.name,
            group=spec.group,
            jobs=spec.jobs,
            nodes=spec.nodes,
            fast_seconds=fast_seconds,
            warm_seconds=warm_seconds,
            bit_identical=bit_identical,
            reference_seconds=reference_seconds,
        )

    if cache_root is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            for spec in matrix:
                report.rows.append(measure(spec, tmp))
    else:
        for spec in matrix:
            report.rows.append(measure(spec, cache_root))
    return report


def write_cluster_report(
    report: ClusterBenchReport, path: str = "BENCH_cluster.json"
) -> str:
    """Serialize *report* to *path*; return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
