"""Bulk-synchronous MPI-collectives runtime.

Ranks map round-robin onto cluster nodes (several ranks per node, like
one MPI process per core).  The runtime keeps a per-rank clock; local
compute advances one rank's clock, collectives synchronise all clocks
through tree- or pairwise-structured message exchanges timed on the same
:class:`~repro.cluster.network.Network`/:class:`~repro.cluster.network.Nic`
models the MapReduce shuffle uses.  Data really moves: ``allreduce``
combines the ranks' Python values with the caller's operator, so MPI
programs compute the same answers as their MapReduce twins.

Supported operations (the ones the DCBench-style programs need):

* :meth:`MpiRuntime.compute` — per-rank local work (cost model seconds),
* :meth:`MpiRuntime.barrier`,
* :meth:`MpiRuntime.broadcast` — binomial tree,
* :meth:`MpiRuntime.allreduce` — reduce-to-root + broadcast,
* :meth:`MpiRuntime.alltoall` — pairwise exchange (the shuffle analogue),
* :meth:`MpiRuntime.gather`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.network import Network, Nic
from repro.cluster.node import Node
from repro.mapreduce.io import value_bytes


@dataclass
class MpiStats:
    """Accumulated communication statistics for one runtime."""

    messages: int = 0
    bytes_sent: int = 0
    collectives: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, messages: int, num_bytes: int) -> None:
        self.messages += messages
        self.bytes_sent += num_bytes
        self.collectives[op] = self.collectives.get(op, 0) + 1


class MpiRuntime:
    """A communicator of ``num_ranks`` ranks over cluster nodes."""

    def __init__(
        self,
        num_ranks: int,
        nodes: Sequence[Node] | None = None,
        network: Network | None = None,
        cpu_speed: float = 1.0,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("need at least one rank")
        if cpu_speed <= 0:
            raise ValueError("cpu speed must be positive")
        if nodes is None:
            nodes = [Node(f"mpinode{i}", cpu_speed=cpu_speed) for i in range(min(num_ranks, 8))]
        if not nodes:
            raise ValueError("need at least one node")
        self.num_ranks = num_ranks
        self.nodes = list(nodes)
        self.network = network or Network()
        self.cpu_speed = cpu_speed
        self.clocks = [0.0] * num_ranks
        self.stats = MpiStats()

    # -- helpers --------------------------------------------------------------

    def node_of(self, rank: int) -> Node:
        return self.nodes[rank % len(self.nodes)]

    def nic_of(self, rank: int) -> Nic:
        return self.node_of(rank).nic

    def elapsed(self) -> float:
        """Wall time so far: the slowest rank's clock."""
        return max(self.clocks)

    def _transfer(self, src: int, dst: int, payload) -> None:
        """Move *payload* from rank *src* to rank *dst*, advancing clocks."""
        size = value_bytes(payload)
        start = max(self.clocks[src], self.clocks[dst])
        src_nic, dst_nic = self.nic_of(src), self.nic_of(dst)
        if src_nic is dst_nic:
            # Same node: shared-memory copy at ~memcpy speed.
            done = start + size / 4e9 + 1e-6
        else:
            done = self.network.transfer(start, src_nic, dst_nic, size)
        self.clocks[src] = done
        self.clocks[dst] = done
        self.stats.record("p2p", 1, size)

    # -- operations -----------------------------------------------------------

    def compute(
        self,
        fn: Callable[[int], object],
        cost: Callable[[int], float] | float = 0.0,
    ) -> list[object]:
        """Run *fn(rank)* on every rank; charge *cost* seconds of CPU.

        ``cost`` is either a constant or a per-rank callable (normalised
        seconds, scaled by the node's speed) — the same cost-model style
        the MapReduce conf uses.
        """
        results = []
        for rank in range(self.num_ranks):
            seconds = cost(rank) if callable(cost) else cost
            if seconds < 0:
                raise ValueError("compute cost must be non-negative")
            self.clocks[rank] += self.node_of(rank).cpu_time(seconds)
            results.append(fn(rank))
        return results

    def barrier(self) -> None:
        """Synchronise all clocks (dissemination barrier cost folded into
        a small latency per round)."""
        rounds = max(1, (self.num_ranks - 1).bit_length())
        done = max(self.clocks) + rounds * self.network.latency_s
        self.clocks = [done] * self.num_ranks
        self.stats.record("barrier", self.num_ranks * rounds, 0)

    def broadcast(self, value, root: int = 0):
        """Binomial-tree broadcast of *value* from *root*; returns it."""
        self._check_rank(root)
        # Tree rounds: in round k, ranks [0, 2^k) send to [2^k, 2^{k+1}).
        order = [root] + [r for r in range(self.num_ranks) if r != root]
        have = 1
        while have < self.num_ranks:
            for i in range(min(have, self.num_ranks - have)):
                self._transfer(order[i], order[have + i], value)
            have *= 2
        self.stats.record("broadcast", 0, 0)
        return value

    def allreduce(self, values: list, op: Callable[[object, object], object]):
        """Combine per-rank *values* with *op*; every rank gets the result.

        Implemented as a binomial reduce to rank 0 followed by a
        broadcast — the classic small-communicator algorithm.
        """
        if len(values) != self.num_ranks:
            raise ValueError(f"expected {self.num_ranks} values, got {len(values)}")
        partial = list(values)
        stride = 1
        while stride < self.num_ranks:
            for dst in range(0, self.num_ranks - stride, 2 * stride):
                src = dst + stride
                self._transfer(src, dst, partial[src])
                partial[dst] = op(partial[dst], partial[src])
            stride *= 2
        result = partial[0]
        self.broadcast(result, root=0)
        self.stats.record("allreduce", 0, 0)
        return result

    def alltoall(self, send: list[list]):
        """Pairwise exchange: ``send[i][j]`` goes from rank i to rank j.

        Returns ``recv`` with ``recv[j][i] == send[i][j]`` — the MPI
        shuffle that replaces MapReduce's disk-based one.
        """
        n = self.num_ranks
        if len(send) != n or any(len(row) != n for row in send):
            raise ValueError("send must be a num_ranks x num_ranks matrix")
        recv = [[None] * n for _ in range(n)]
        # n-1 rounds of pairwise exchange (ring schedule).
        for shift in range(n):
            for src in range(n):
                dst = (src + shift) % n
                if src == dst:
                    recv[dst][src] = send[src][dst]
                    continue
                self._transfer(src, dst, send[src][dst])
                recv[dst][src] = send[src][dst]
        self.stats.record("alltoall", 0, 0)
        return recv

    def gather(self, values: list, root: int = 0) -> list:
        """Collect every rank's value at *root* (returned in rank order)."""
        if len(values) != self.num_ranks:
            raise ValueError(f"expected {self.num_ranks} values, got {len(values)}")
        self._check_rank(root)
        for rank in range(self.num_ranks):
            if rank != root:
                self._transfer(rank, root, values[rank])
        self.stats.record("gather", 0, 0)
        return list(values)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")
