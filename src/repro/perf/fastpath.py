"""Batched fast-path simulation engine.

``run_fast(core, trace)`` produces a :class:`~repro.uarch.pipeline.SimulationResult`
**bit-identical** to ``core.run(trace)`` (the reference engine) while running
several times faster.  Three mechanisms, none of which changes a counter:

1. **Batched micro-op streams** — the trace is expanded through
   :meth:`~repro.uarch.trace.SyntheticTrace.iter_batches` into
   struct-of-arrays :class:`~repro.uarch.trace.TraceBatch` chunks instead of
   one ``MicroOp`` object per instruction, eliminating per-op object
   construction and generator suspension.
2. **Vectorized decode kernels** — the data-independent per-op stages
   (line-address and set-index decode for the caches, virtual-page decode
   for the TLBs, the ``pc >> 2`` predictor/BTB keys) are computed for a
   whole batch at once with NumPy shifts and handed to the scalar loop as
   plain lists.
3. **Flattened scalar mechanics** — the inherently sequential parts
   (LRU state machines, branch-history updates, the one-pass timing model)
   run in a single loop over local variables, with the reference engine's
   method-call chains (FetchEngine → TlbHierarchy → Tlb → …) collapsed
   into closures over flat state.

The sequential mechanics are *transliterated* from the reference modules
(`uarch/pipeline.py`, `frontend.py`, `caches.py`, `tlb.py`, `branch.py`)
line for line: same update order, same float expressions, same RNG call
sequence.  The contract — fast ≡ reference, bit for bit, for every counter
— is enforced by ``tests/uarch/test_fastpath.py`` (hypothesis property over
randomized specs and machines) and by the CI ``perf`` tier's equivalence
matrix.  After a run, the core's cache/TLB/predictor state is written back,
so a reused :class:`~repro.uarch.pipeline.Core` behaves identically no
matter which engine ran first.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None

from repro.uarch.branch import GSharePredictor, TournamentPredictor
from repro.uarch.frontend import FRONT_DEPTH, FetchEngine
from repro.uarch.isa import OpClass
from repro.uarch.pipeline import (
    RAT_STALL_PENALTY,
    STORE_DRAIN_LATENCY,
    SimulationResult,
)
from repro.uarch.trace import (
    DEFAULT_BATCH_SIZE,
    MAX_DEP_DISTANCE,
    SyntheticTrace,
    TraceSpec,
)

#: int values of the op classes, hoisted for the hot loop.
_ALU = int(OpClass.ALU)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_DIV = int(OpClass.DIV)

_MISFETCH_BUBBLE = FetchEngine.MISFETCH_BUBBLE


def decode_batch(batch, shifts):
    """Vectorized per-batch decode of the data-independent address stages.

    Given a :class:`TraceBatch` and the tuple of shift amounts
    ``(l1i_line, itlb_page, l1d_line, dtlb_page)``, return the decoded
    columns ``(iline, ipage, dline, dpage, pc2)`` as plain lists ready for
    the scalar loop.  Uses NumPy when available; the pure-Python fallback
    computes the identical values.
    """
    l1i_shift, itlb_shift, l1d_shift, dtlb_shift = shifts
    if _np is not None:
        pc_a = _np.asarray(batch.pc, dtype=_np.int64)
        addr_a = _np.asarray(batch.addr, dtype=_np.int64)
        return (
            (pc_a >> l1i_shift).tolist(),
            (pc_a >> itlb_shift).tolist(),
            (addr_a >> l1d_shift).tolist(),
            (addr_a >> dtlb_shift).tolist(),
            (pc_a >> 2).tolist(),
        )
    pc_c = batch.pc
    addr_c = batch.addr
    return (
        [p >> l1i_shift for p in pc_c],
        [p >> itlb_shift for p in pc_c],
        [a >> l1d_shift for a in addr_c],
        [a >> dtlb_shift for a in addr_c],
        [p >> 2 for p in pc_c],
    )


def run_fast(
    core,
    trace,
    rat_conflict_ratio: float | None = None,
    name: str | None = None,
    warmup: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SimulationResult:
    """Fast-engine twin of :meth:`repro.uarch.pipeline.Core.run`.

    Accepts a :class:`TraceSpec` or a :class:`SyntheticTrace` (the batched
    generator needs the spec; arbitrary micro-op iterables stay on the
    reference engine).
    """
    if isinstance(trace, TraceSpec):
        trace = SyntheticTrace(trace)
    if not isinstance(trace, SyntheticTrace):
        raise TypeError("run_fast requires a TraceSpec or SyntheticTrace")
    spec = trace.spec
    if rat_conflict_ratio is None:
        rat_conflict_ratio = getattr(spec, "partial_register_ratio", 0.0)
    if name is None:
        name = getattr(spec, "name", "trace")
    if warmup is None:
        warmup = len(trace) // 5

    machine = core.machine
    core_cfg = machine.core
    result = SimulationResult(name=name, machine=machine.name)

    # ---- flatten the cache hierarchy --------------------------------------
    l1i = core.l1i
    l1d = core.l1d
    l2 = core.l2
    l3 = core.l3
    l1i_sets = l1i._sets
    l1d_sets = l1d._sets
    l2_sets = l2._sets
    l3_sets = l3._sets
    l1i_mask, l1i_nsets, l1i_ways = l1i._set_mask, l1i._num_sets, l1i.ways
    l1d_mask, l1d_nsets, l1d_ways = l1d._set_mask, l1d._num_sets, l1d.ways
    l2_mask, l2_nsets, l2_ways = l2._set_mask, l2._num_sets, l2.ways
    l3_mask, l3_nsets, l3_ways = l3._set_mask, l3._num_sets, l3.ways
    l1i_shift = l1i._line_shift
    l1d_shift = l1d._line_shift
    l2_shift = l2._line_shift
    l3_shift = l3._line_shift
    l1i_hitlat = l1i.config.hit_latency
    l1d_hitlat = l1d.config.hit_latency
    l2_hitlat = l2.config.hit_latency
    l3_hitlat = l3.config.hit_latency
    memory_latency = machine.memory_latency
    prefetch = core.icache_path.prefetch
    i_line_bytes = core.icache_path._line_bytes
    d_line_bytes = core.dcache_path._line_bytes

    l1i_hits, l1i_misses, l1i_evict = l1i.hits, l1i.misses, l1i.evictions
    l1d_hits, l1d_misses, l1d_evict = l1d.hits, l1d.misses, l1d.evictions
    l2_hits, l2_misses, l2_evict = l2.hits, l2.misses, l2.evictions
    l3_hits, l3_misses, l3_evict = l3.hits, l3.misses, l3.evictions
    i_dram = core.icache_path.dram_transfers
    d_dram = core.dcache_path.dram_transfers
    i_pref_fills = core.icache_path.prefetch_fills
    d_pref_fills = core.dcache_path.prefetch_fills

    # ---- flatten the TLBs -------------------------------------------------
    itlb_l1 = core.itlb.l1
    dtlb_l1 = core.dtlb.l1
    l2tlb = core.l2tlb
    walker = core.walker
    itlb_sets, itlb_mask, itlb_nsets, itlb_ways = (
        itlb_l1._sets,
        itlb_l1._set_mask,
        itlb_l1._num_sets,
        itlb_l1.ways,
    )
    dtlb_sets, dtlb_mask, dtlb_nsets, dtlb_ways = (
        dtlb_l1._sets,
        dtlb_l1._set_mask,
        dtlb_l1._num_sets,
        dtlb_l1.ways,
    )
    l2tlb_sets, l2tlb_mask, l2tlb_nsets, l2tlb_ways = (
        l2tlb._sets,
        l2tlb._set_mask,
        l2tlb._num_sets,
        l2tlb.ways,
    )
    itlb_shift = itlb_l1._page_shift
    dtlb_shift = dtlb_l1._page_shift
    l2tlb_shift = l2tlb._page_shift
    walk_latency = walker.walk_latency
    itlb_hits, itlb_misses = itlb_l1.hits, itlb_l1.misses
    dtlb_hits, dtlb_misses = dtlb_l1.hits, dtlb_l1.misses
    l2tlb_hits, l2tlb_misses = l2tlb.hits, l2tlb.misses
    itlb_hier_walks = core.itlb.completed_walks
    dtlb_hier_walks = core.dtlb.completed_walks
    walker_walks = walker.completed_walks

    # ---- flatten the branch unit ------------------------------------------
    branch_unit = core.branch_unit
    direction = branch_unit.direction
    btb = branch_unit.btb
    btb_sets = btb._sets
    btb_set_mask = btb._set_mask
    btb_ways = btb.ways
    btb_hits, btb_misses = btb.hits, btb.misses
    bu_branches = branch_unit.branches
    bu_mispredicts = branch_unit.mispredictions
    bu_misfetches = branch_unit.misfetches

    if isinstance(direction, TournamentPredictor):
        pred_kind = 2
        ch_table, ch_mask = direction._chooser, direction._mask
        b_table, b_mask = direction._bimodal._table, direction._bimodal._mask
        gsh = direction._gshare
        g_table, g_mask = gsh._table, gsh._mask
        g_hist = gsh._history
        g_hist_mask = (1 << gsh._history_bits) - 1
    elif isinstance(direction, GSharePredictor):
        pred_kind = 1
        g_table, g_mask = direction._table, direction._mask
        g_hist = direction._history
        g_hist_mask = (1 << direction._history_bits) - 1
        b_table = b_mask = ch_table = ch_mask = None
    else:  # BimodalPredictor
        pred_kind = 0
        b_table, b_mask = direction._table, direction._mask
        g_table = g_mask = ch_table = ch_mask = None
        g_hist = g_hist_mask = 0

    # ---- front-end / pipeline locals --------------------------------------
    fetch_width = core_cfg.fetch_width
    rename_width = core_cfg.rename_width
    retire_width = core_cfg.retire_width
    mispredict_penalty = core_cfg.mispredict_penalty
    redirect_gap = max(1, mispredict_penalty - FRONT_DEPTH)
    fetch_time = 0
    slots_used = 0
    current_line = -1
    icache_stall = 0
    itlb_stall = 0
    mispredict_stall = 0

    rs_cap = core_cfg.rs_entries
    rob_cap = core_cfg.rob_entries
    lb_cap = core_cfg.load_buffer_entries
    sb_cap = core_cfg.store_buffer_entries
    rs_heap: list[int] = []
    lb_heap: list[int] = []
    sb_heap: list[int] = []
    rob_ring = [0] * rob_cap
    rob_count = 0

    rng = random.Random((getattr(spec, "seed", 0) or 0) + 0x5A17)
    rng_random = rng.random

    latencies = core.execution.latencies
    lat_branch = latencies[OpClass.BRANCH]
    # Dense latency table indexed by int op class for the FP/MUL/DIV arm.
    lat_table = [latencies[OpClass(k)] for k in range(len(OpClass))]

    ring_size = MAX_DEP_DISTANCE + 1
    complete_ring = [0] * ring_size
    retire_ring_size = max(retire_width + 1, 2)
    retire_ring = [0] * retire_ring_size
    last_retire = 0

    dispatch_cycle = -1
    dispatch_in_cycle = 0
    rat_sampled_cycle = -1
    virtualized = machine.virtualized
    vm_transition = machine.vm_transition_cycles
    vm_exits = 0
    vm_exit_cycles = 0
    prev_kernel = False

    dram_free = 0
    dram_occupancy = machine.dram_cycles_per_line
    dram_seen = d_dram
    port_load = 0
    port_store = 0
    port_fp = 0

    loads = 0
    stores = 0
    kernel_instructions = 0
    rat_stall = 0
    rs_stall = 0
    rob_stall = 0
    load_stall = 0
    store_stall = 0

    # ---- inlined component mechanics --------------------------------------
    # Each closure transliterates one reference method chain over the flat
    # locals above; call sites below mirror the reference call order.

    def access_i(addr_: int, line_: int) -> int:
        """CacheHierarchy.access on the instruction path (L1I → L2 → L3)."""
        nonlocal l1i_hits, l1i_misses, l1i_evict, l2_hits, l2_misses, l2_evict
        nonlocal l3_hits, l3_misses, l3_evict, i_dram, i_pref_fills
        ways = l1i_sets[line_ & l1i_mask if l1i_mask is not None else line_ % l1i_nsets]
        if line_ in ways:
            if ways[0] != line_:
                ways.remove(line_)
                ways.insert(0, line_)
            l1i_hits += 1
            return l1i_hitlat
        l1i_misses += 1
        ways.insert(0, line_)
        if len(ways) > l1i_ways:
            ways.pop()
            l1i_evict += 1
        latency = l1i_hitlat + l2_hitlat
        line2 = addr_ >> l2_shift
        ways = l2_sets[line2 & l2_mask if l2_mask is not None else line2 % l2_nsets]
        if line2 in ways:
            if ways[0] != line2:
                ways.remove(line2)
                ways.insert(0, line2)
            l2_hits += 1
            if prefetch:
                nxt = addr_ + i_line_bytes
                p2 = nxt >> l2_shift
                if p2 not in l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]:
                    p3 = nxt >> l3_shift
                    ways3 = l3_sets[p3 & l3_mask if l3_mask is not None else p3 % l3_nsets]
                    if p3 not in ways3:
                        ways3.insert(0, p3)
                        if len(ways3) > l3_ways:
                            ways3.pop()
                            l3_evict += 1
                        i_dram += 1
                    ways2 = l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]
                    ways2.insert(0, p2)
                    if len(ways2) > l2_ways:
                        ways2.pop()
                        l2_evict += 1
                    i_pref_fills += 1
            return latency
        l2_misses += 1
        ways.insert(0, line2)
        if len(ways) > l2_ways:
            ways.pop()
            l2_evict += 1
        latency += l3_hitlat
        line3 = addr_ >> l3_shift
        ways = l3_sets[line3 & l3_mask if l3_mask is not None else line3 % l3_nsets]
        if line3 in ways:
            if ways[0] != line3:
                ways.remove(line3)
                ways.insert(0, line3)
            l3_hits += 1
        else:
            l3_misses += 1
            ways.insert(0, line3)
            if len(ways) > l3_ways:
                ways.pop()
                l3_evict += 1
            latency += memory_latency
            i_dram += 1
        if prefetch:
            nxt = addr_ + i_line_bytes
            p2 = nxt >> l2_shift
            if p2 not in l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]:
                p3 = nxt >> l3_shift
                ways3 = l3_sets[p3 & l3_mask if l3_mask is not None else p3 % l3_nsets]
                if p3 not in ways3:
                    ways3.insert(0, p3)
                    if len(ways3) > l3_ways:
                        ways3.pop()
                        l3_evict += 1
                    i_dram += 1
                ways2 = l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]
                ways2.insert(0, p2)
                if len(ways2) > l2_ways:
                    ways2.pop()
                    l2_evict += 1
                i_pref_fills += 1
        return latency

    def access_d(addr_: int, line_: int) -> int:
        """CacheHierarchy.access on the data path (L1D → L2 → L3)."""
        nonlocal l1d_hits, l1d_misses, l1d_evict, l2_hits, l2_misses, l2_evict
        nonlocal l3_hits, l3_misses, l3_evict, d_dram, d_pref_fills
        ways = l1d_sets[line_ & l1d_mask if l1d_mask is not None else line_ % l1d_nsets]
        if line_ in ways:
            if ways[0] != line_:
                ways.remove(line_)
                ways.insert(0, line_)
            l1d_hits += 1
            return l1d_hitlat
        l1d_misses += 1
        ways.insert(0, line_)
        if len(ways) > l1d_ways:
            ways.pop()
            l1d_evict += 1
        latency = l1d_hitlat + l2_hitlat
        line2 = addr_ >> l2_shift
        ways = l2_sets[line2 & l2_mask if l2_mask is not None else line2 % l2_nsets]
        if line2 in ways:
            if ways[0] != line2:
                ways.remove(line2)
                ways.insert(0, line2)
            l2_hits += 1
            if prefetch:
                nxt = addr_ + d_line_bytes
                p2 = nxt >> l2_shift
                if p2 not in l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]:
                    p3 = nxt >> l3_shift
                    ways3 = l3_sets[p3 & l3_mask if l3_mask is not None else p3 % l3_nsets]
                    if p3 not in ways3:
                        ways3.insert(0, p3)
                        if len(ways3) > l3_ways:
                            ways3.pop()
                            l3_evict += 1
                        d_dram += 1
                    ways2 = l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]
                    ways2.insert(0, p2)
                    if len(ways2) > l2_ways:
                        ways2.pop()
                        l2_evict += 1
                    d_pref_fills += 1
            return latency
        l2_misses += 1
        ways.insert(0, line2)
        if len(ways) > l2_ways:
            ways.pop()
            l2_evict += 1
        latency += l3_hitlat
        line3 = addr_ >> l3_shift
        ways = l3_sets[line3 & l3_mask if l3_mask is not None else line3 % l3_nsets]
        if line3 in ways:
            if ways[0] != line3:
                ways.remove(line3)
                ways.insert(0, line3)
            l3_hits += 1
        else:
            l3_misses += 1
            ways.insert(0, line3)
            if len(ways) > l3_ways:
                ways.pop()
                l3_evict += 1
            latency += memory_latency
            d_dram += 1
        if prefetch:
            nxt = addr_ + d_line_bytes
            p2 = nxt >> l2_shift
            if p2 not in l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]:
                p3 = nxt >> l3_shift
                ways3 = l3_sets[p3 & l3_mask if l3_mask is not None else p3 % l3_nsets]
                if p3 not in ways3:
                    ways3.insert(0, p3)
                    if len(ways3) > l3_ways:
                        ways3.pop()
                        l3_evict += 1
                    d_dram += 1
                ways2 = l2_sets[p2 & l2_mask if l2_mask is not None else p2 % l2_nsets]
                ways2.insert(0, p2)
                if len(ways2) > l2_ways:
                    ways2.pop()
                    l2_evict += 1
                d_pref_fills += 1
        return latency

    def translate_i(addr_: int, page_: int) -> int:
        """TlbHierarchy.translate on the instruction side."""
        nonlocal itlb_hits, itlb_misses, l2tlb_hits, l2tlb_misses
        nonlocal itlb_hier_walks, walker_walks
        ways = itlb_sets[page_ & itlb_mask if itlb_mask is not None else page_ % itlb_nsets]
        if page_ in ways:
            if ways[0] != page_:
                ways.remove(page_)
                ways.insert(0, page_)
            itlb_hits += 1
            return 0
        itlb_misses += 1
        ways.insert(0, page_)
        if len(ways) > itlb_ways:
            ways.pop()
        page2 = page_ if l2tlb_shift == itlb_shift else addr_ >> l2tlb_shift
        ways = l2tlb_sets[page2 & l2tlb_mask if l2tlb_mask is not None else page2 % l2tlb_nsets]
        if page2 in ways:
            if ways[0] != page2:
                ways.remove(page2)
                ways.insert(0, page2)
            l2tlb_hits += 1
            return 7
        l2tlb_misses += 1
        ways.insert(0, page2)
        if len(ways) > l2tlb_ways:
            ways.pop()
        itlb_hier_walks += 1
        walker_walks += 1
        return walk_latency

    def translate_d(addr_: int, page_: int) -> int:
        """TlbHierarchy.translate on the data side."""
        nonlocal dtlb_hits, dtlb_misses, l2tlb_hits, l2tlb_misses
        nonlocal dtlb_hier_walks, walker_walks
        ways = dtlb_sets[page_ & dtlb_mask if dtlb_mask is not None else page_ % dtlb_nsets]
        if page_ in ways:
            if ways[0] != page_:
                ways.remove(page_)
                ways.insert(0, page_)
            dtlb_hits += 1
            return 0
        dtlb_misses += 1
        ways.insert(0, page_)
        if len(ways) > dtlb_ways:
            ways.pop()
        page2 = page_ if l2tlb_shift == dtlb_shift else addr_ >> l2tlb_shift
        ways = l2tlb_sets[page2 & l2tlb_mask if l2tlb_mask is not None else page2 % l2tlb_nsets]
        if page2 in ways:
            if ways[0] != page2:
                ways.remove(page2)
                ways.insert(0, page2)
            l2tlb_hits += 1
            return 7
        l2tlb_misses += 1
        ways.insert(0, page2)
        if len(ways) > l2tlb_ways:
            ways.pop()
        dtlb_hier_walks += 1
        walker_walks += 1
        return walk_latency

    def resolve_branch(pc2_: int, taken_: bool, target_: int) -> int:
        """BranchUnit.resolve: predict, BTB, update, count; returns outcome."""
        nonlocal bu_branches, bu_mispredicts, bu_misfetches
        nonlocal btb_hits, btb_misses, g_hist
        bu_branches += 1
        # -- direction predict (pre-update state) --
        if pred_kind == 2:
            if ch_table[pc2_ & ch_mask] >= 2:
                predicted = g_table[(pc2_ ^ g_hist) & g_mask] >= 2
            else:
                predicted = b_table[pc2_ & b_mask] >= 2
        elif pred_kind == 1:
            predicted = g_table[(pc2_ ^ g_hist) & g_mask] >= 2
        else:
            predicted = b_table[pc2_ & b_mask] >= 2
        outcome = 0
        if predicted != taken_:
            outcome = 1
        elif taken_:
            ways = btb_sets[pc2_ & btb_set_mask]
            stored = None
            for wi, (tag, tgt) in enumerate(ways):
                if tag == pc2_:
                    if wi:
                        ways.insert(0, ways.pop(wi))
                    btb_hits += 1
                    stored = tgt
                    break
            else:
                btb_misses += 1
            if stored is None:
                outcome = 2
            elif stored != target_:
                outcome = 1
        if taken_:
            ways = btb_sets[pc2_ & btb_set_mask]
            for wi, (tag, _) in enumerate(ways):
                if tag == pc2_:
                    ways.pop(wi)
                    break
            ways.insert(0, (pc2_, target_))
            if len(ways) > btb_ways:
                ways.pop()
        # -- direction update --
        if pred_kind == 2:
            idx = pc2_ & ch_mask
            bi_correct = (b_table[pc2_ & b_mask] >= 2) == taken_
            gs_correct = (g_table[(pc2_ ^ g_hist) & g_mask] >= 2) == taken_
            ctr = ch_table[idx]
            if gs_correct and not bi_correct and ctr < 3:
                ch_table[idx] = ctr + 1
            elif bi_correct and not gs_correct and ctr > 0:
                ch_table[idx] = ctr - 1
            idx = pc2_ & b_mask
            ctr = b_table[idx]
            if taken_:
                if ctr < 3:
                    b_table[idx] = ctr + 1
            elif ctr > 0:
                b_table[idx] = ctr - 1
            idx = (pc2_ ^ g_hist) & g_mask
            ctr = g_table[idx]
            if taken_:
                if ctr < 3:
                    g_table[idx] = ctr + 1
            elif ctr > 0:
                g_table[idx] = ctr - 1
            g_hist = ((g_hist << 1) | (1 if taken_ else 0)) & g_hist_mask
        elif pred_kind == 1:
            idx = (pc2_ ^ g_hist) & g_mask
            ctr = g_table[idx]
            if taken_:
                if ctr < 3:
                    g_table[idx] = ctr + 1
            elif ctr > 0:
                g_table[idx] = ctr - 1
            g_hist = ((g_hist << 1) | (1 if taken_ else 0)) & g_hist_mask
        else:
            idx = pc2_ & b_mask
            ctr = b_table[idx]
            if taken_:
                if ctr < 3:
                    b_table[idx] = ctr + 1
            elif ctr > 0:
                b_table[idx] = ctr - 1
        if outcome == 1:
            bu_mispredicts += 1
        elif outcome == 2:
            bu_misfetches += 1
        return outcome

    def snapshot() -> tuple:
        """The reference _counter_snapshot, over the flat locals."""
        return (
            l1i_hits,
            l1i_misses,
            l1d_hits,
            l1d_misses,
            l2_hits,
            l2_misses,
            l3_hits,
            l3_misses,
            itlb_hier_walks,
            dtlb_hier_walks,
            bu_branches,
            bu_mispredicts,
            icache_stall,
            itlb_stall,
            mispredict_stall,
            i_dram + d_dram,
        )

    baseline = snapshot()
    baseline_result = (0, 0, 0)
    baseline_stalls = (0, 0, 0, 0, 0)
    baseline_retire = 0

    decode_shifts = (l1i_shift, itlb_shift, l1d_shift, dtlb_shift)
    i = 0
    for batch in trace.iter_batches(batch_size):
        iline_c, ipage_c, dline_c, dpage_c, pc2_c = decode_batch(batch, decode_shifts)
        for op_, pc_, addr_, taken_, target_, dep1_, dep2_, kernel_, iline_, ipage_, dline_, dpage_, pc2_ in zip(
            batch.op,
            batch.pc,
            batch.addr,
            batch.taken,
            batch.target,
            batch.dep1,
            batch.dep2,
            batch.kernel,
            iline_c,
            ipage_c,
            dline_c,
            dpage_c,
            pc2_c,
        ):
            if virtualized and kernel_ and not prev_kernel:
                fetch_time += vm_transition
                slots_used = 0
                vm_exits += 1
                vm_exit_cycles += vm_transition
            prev_kernel = kernel_

            # -- fetch (FetchEngine.fetch) --
            if iline_ != current_line:
                current_line = iline_
                tlb_latency = translate_i(pc_, ipage_)
                if tlb_latency:
                    fetch_time += tlb_latency
                    itlb_stall += tlb_latency
                    slots_used = 0
                latency = access_i(pc_, iline_)
                if latency > l1i_hitlat:
                    stall = latency - l1i_hitlat - 8  # FETCH_HIDE
                    if stall > 0:
                        fetch_time += stall
                        icache_stall += stall
                        slots_used = 0
            fetch_cycle = fetch_time
            slots_used += 1
            if slots_used >= fetch_width:
                fetch_time += 1
                slots_used = 0
            base = fetch_cycle + FRONT_DEPTH

            # -- rename width --
            if base <= dispatch_cycle:
                if dispatch_in_cycle >= rename_width:
                    base = dispatch_cycle + 1
                    dispatch_in_cycle = 0
                else:
                    base = dispatch_cycle
            else:
                dispatch_in_cycle = 0

            # -- RAT conflicts --
            if rat_conflict_ratio > 0.0 and base != rat_sampled_cycle:
                rat_sampled_cycle = base
                if rng_random() < rat_conflict_ratio:
                    rat_stall += RAT_STALL_PENALTY
                    base += RAT_STALL_PENALTY
                    dispatch_in_cycle = 0

            # -- back-end structural constraints --
            t = base
            # RS (BufferTracker.earliest_slot)
            while rs_heap and rs_heap[0] <= base:
                heappop(rs_heap)
            if len(rs_heap) < rs_cap:
                slot = base
            else:
                release = rs_heap[0]
                while rs_heap and rs_heap[0] <= release:
                    heappop(rs_heap)
                slot = release
            if slot > base:
                rs_stall += slot - base
                if slot > t:
                    t = slot
            # ROB (RingTracker.earliest_slot)
            if rob_count < rob_cap:
                slot = base
            else:
                slot = rob_ring[rob_count % rob_cap]
                if slot < base:
                    slot = base
            if slot > base:
                rob_stall += slot - base
                if slot > t:
                    t = slot
            if op_ == _LOAD:
                while lb_heap and lb_heap[0] <= base:
                    heappop(lb_heap)
                if len(lb_heap) < lb_cap:
                    slot = base
                else:
                    release = lb_heap[0]
                    while lb_heap and lb_heap[0] <= release:
                        heappop(lb_heap)
                    slot = release
                if slot > base:
                    load_stall += slot - base
                    if slot > t:
                        t = slot
            elif op_ == _STORE:
                while sb_heap and sb_heap[0] <= base:
                    heappop(sb_heap)
                if len(sb_heap) < sb_cap:
                    slot = base
                else:
                    release = sb_heap[0]
                    while sb_heap and sb_heap[0] <= release:
                        heappop(sb_heap)
                    slot = release
                if slot > base:
                    store_stall += slot - base
                    if slot > t:
                        t = slot

            if t == dispatch_cycle:
                dispatch_in_cycle += 1
            else:
                dispatch_cycle = t
                dispatch_in_cycle = 1

            # -- operand readiness --
            ready = t + 1
            if dep1_:
                producer = complete_ring[(i - dep1_) % ring_size]
                if producer > ready:
                    ready = producer
            if dep2_:
                producer = complete_ring[(i - dep2_) % ring_size]
                if producer > ready:
                    ready = producer

            # -- execute --
            if op_ == _LOAD:
                issue = ready if ready > port_load else port_load
                port_load = issue + 1
                tlb_latency = translate_d(addr_, dpage_)
                mem_latency = access_d(addr_, dline_)
                complete = issue + tlb_latency + mem_latency
                transfers = d_dram - dram_seen
                if transfers:
                    dram_seen = d_dram
                    dram_free = (dram_free if dram_free > issue else issue) + (
                        transfers * dram_occupancy
                    )
                    if complete < dram_free:
                        complete = dram_free
                heappush(lb_heap, complete)
                loads += 1
            elif op_ == _STORE:
                issue = ready if ready > port_store else port_store
                port_store = issue + 1
                tlb_latency = translate_d(addr_, dpage_)
                complete = issue + 1 + tlb_latency
                mem_latency = access_d(addr_, dline_)
                drain_done = complete + STORE_DRAIN_LATENCY + mem_latency
                transfers = d_dram - dram_seen
                if transfers:
                    dram_seen = d_dram
                    dram_free = (dram_free if dram_free > issue else issue) + (
                        transfers * dram_occupancy
                    )
                    if drain_done < dram_free:
                        drain_done = dram_free
                heappush(sb_heap, drain_done)
                stores += 1
            elif op_ == _BRANCH:
                issue = ready
                complete = issue + lat_branch
                outcome = resolve_branch(pc2_, taken_, target_)
                if outcome == 1:
                    # FetchEngine.redirect
                    restart = complete + redirect_gap
                    if restart > fetch_time:
                        mispredict_stall += restart - fetch_time
                        fetch_time = restart
                        slots_used = 0
                        current_line = -1
                elif outcome == 2:
                    # FetchEngine.misfetch
                    fetch_time += _MISFETCH_BUBBLE
                    icache_stall += _MISFETCH_BUBBLE
                    slots_used = 0
            elif op_ == _ALU:
                issue = ready
                complete = issue + 1
            else:
                issue = ready if ready > port_fp else port_fp
                latency = lat_table[op_]
                port_fp = issue + (latency if op_ == _DIV else 1)
                complete = issue + latency

            heappush(rs_heap, issue)
            complete_ring[i % ring_size] = complete

            # -- in-order retirement --
            retire = complete
            if retire < last_retire:
                retire = last_retire
            width_gate = (
                retire_ring[(i - retire_width) % retire_ring_size] + 1
                if i >= retire_width
                else 0
            )
            if retire < width_gate:
                retire = width_gate
            retire_ring[i % retire_ring_size] = retire
            last_retire = retire
            rob_ring[rob_count % rob_cap] = retire
            rob_count += 1

            if kernel_:
                kernel_instructions += 1
            i += 1
            if i == warmup:
                baseline = snapshot()
                baseline_result = (kernel_instructions, loads, stores)
                baseline_stalls = (rat_stall, rs_stall, rob_stall, load_stall, store_stall)
                baseline_retire = last_retire

    end = snapshot()
    result.instructions = i - (warmup if i > warmup else 0)
    result.cycles = max(last_retire - (baseline_retire if i > warmup else 0), 1)
    result.kernel_instructions = kernel_instructions - baseline_result[0]
    result.loads = loads - baseline_result[1]
    result.stores = stores - baseline_result[2]
    result.rat_stall_cycles = rat_stall - baseline_stalls[0]
    result.rs_full_stall_cycles = rs_stall - baseline_stalls[1]
    result.rob_full_stall_cycles = rob_stall - baseline_stalls[2]
    result.load_stall_cycles = load_stall - baseline_stalls[3]
    result.store_stall_cycles = store_stall - baseline_stalls[4]
    delta = [end[j] - baseline[j] for j in range(len(end))]
    result.fetch_stall_cycles = delta[12] + delta[13]
    result.mispredict_stall_cycles = delta[14]
    result.l1i_accesses = delta[0] + delta[1]
    result.l1i_misses = delta[1]
    result.l1d_accesses = delta[2] + delta[3]
    result.l1d_misses = delta[3]
    result.l2_accesses = delta[4] + delta[5]
    result.l2_misses = delta[5]
    result.l3_accesses = delta[6] + delta[7]
    result.l3_misses = delta[7]
    result.itlb_walks = delta[8]
    result.dtlb_walks = delta[9]
    result.branches = delta[10]
    result.branch_mispredictions = delta[11]
    result.extra["itlb_stall_cycles"] = delta[13]
    result.extra["icache_stall_cycles"] = delta[12]
    result.extra["dram_transfers"] = delta[15]
    result.extra["warmup_instructions"] = warmup if i > warmup else 0
    if virtualized:
        result.extra["vm_exits"] = vm_exits
        result.extra["vm_exit_cycles"] = vm_exit_cycles

    # ---- write the flattened state back to the core -----------------------
    l1i.hits, l1i.misses, l1i.evictions = l1i_hits, l1i_misses, l1i_evict
    l1d.hits, l1d.misses, l1d.evictions = l1d_hits, l1d_misses, l1d_evict
    l2.hits, l2.misses, l2.evictions = l2_hits, l2_misses, l2_evict
    l3.hits, l3.misses, l3.evictions = l3_hits, l3_misses, l3_evict
    core.icache_path.dram_transfers = i_dram
    core.icache_path.prefetch_fills = i_pref_fills
    core.dcache_path.dram_transfers = d_dram
    core.dcache_path.prefetch_fills = d_pref_fills
    itlb_l1.hits, itlb_l1.misses = itlb_hits, itlb_misses
    dtlb_l1.hits, dtlb_l1.misses = dtlb_hits, dtlb_misses
    l2tlb.hits, l2tlb.misses = l2tlb_hits, l2tlb_misses
    core.itlb.completed_walks = itlb_hier_walks
    core.dtlb.completed_walks = dtlb_hier_walks
    walker.completed_walks = walker_walks
    branch_unit.branches = bu_branches
    branch_unit.mispredictions = bu_mispredicts
    branch_unit.misfetches = bu_misfetches
    btb.hits, btb.misses = btb_hits, btb_misses
    if pred_kind == 2:
        direction._gshare._history = g_hist
    elif pred_kind == 1:
        direction._history = g_hist

    return result
