"""SVM — Table I row 5 (the paper's own implementation).

Distributed linear SVM trained by mini-batch sub-gradient descent (the
standard MapReduce formulation: each map task computes the hinge-loss
sub-gradient over its split, the single reducer averages and steps the
weight vector; iterate).  Features are hashed bag-of-words from HTML
pages, matching the paper's "148 GB html file" input.
"""

from __future__ import annotations

import re
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register

_TAG_RE = re.compile(r"<[^>]+>")

#: hashed feature space size
FEATURE_DIM = 512


def extract_features(html: str) -> dict[int, float]:
    """Strip tags, hash words into FEATURE_DIM buckets, L2-ish scale."""
    text = _TAG_RE.sub(" ", html)
    features: dict[int, float] = {}
    words = text.split()
    if not words:
        return features
    for word in words:
        idx = hash_word(word)
        features[idx] = features.get(idx, 0.0) + 1.0
    norm = sum(v * v for v in features.values()) ** 0.5
    return {i: v / norm for i, v in features.items()}


def hash_word(word: str) -> int:
    h = 2166136261
    for ch in word:
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h % FEATURE_DIM


def _dot(weights: list[float], features: dict[int, float]) -> float:
    return sum(weights[i] * v for i, v in features.items())


def _make_gradient_map(weights: list[float], lam: float):
    def gradient_map(doc_id, labeled):
        label, features = labeled  # label in {-1, +1}
        margin = label * _dot(weights, features)
        if margin < 1.0:
            # sub-gradient contribution: -y * x
            yield 0, (1, {i: -label * v for i, v in features.items()})
        else:
            yield 0, (1, {})

    return gradient_map


def _gradient_reduce(_key, contributions):
    count = 0
    grad: dict[int, float] = {}
    for n, partial in contributions:
        count += n
        for i, v in partial.items():
            grad[i] = grad.get(i, 0.0) + v
    yield 0, (count, grad)


@register
class SvmWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="SVM",
        input_description="148 GB html file",
        input_gb_low=148,
        retired_instructions_1e9=2051,
        source="our implementation",
        scenarios=(
            ("social network", "Image Processing"),
            ("electronic commerce", "Data Mining / Text Categorization"),
        ),
        table1_row=5,
    )

    BASE_PAGES = 600
    ITERATIONS = 5

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        labeled = datagen.generate_labeled_documents(
            max(4, int(self.BASE_PAGES * scale)), classes=("pos", "neg"), seed=51
        )
        examples = [
            (doc_id, (1 if label == "pos" else -1, extract_features(text)))
            for doc_id, (label, text) in labeled
        ]
        lam = 0.01
        weights = [0.0] * FEATURE_DIM
        results = []
        for iteration in range(self.ITERATIONS):
            job = MapReduceJob(
                _make_gradient_map(weights, lam),
                _gradient_reduce,
                JobConf(
                    name=f"svm-iter{iteration}",
                    num_reduces=1,
                    # Dot products per example: compute-heavy per record.
                    map_cost_per_record=3e-5,
                    map_cost_per_byte=2e-8,
                    reduce_cost_per_record=5e-6,
                ),
            )
            result = engine.execute(
                job, examples, cluster=cluster, input_name=f"svm-in-{iteration}"
            )
            results.append(result)
            count, grad = result.output[0][1]
            # Decaying step on the averaged sub-gradient; features are
            # L2-normalised so eta ~ 1 is well-scaled.
            eta = 2.0 / (iteration + 2)
            weights = [w * (1.0 - eta * lam) for w in weights]
            if count:
                for i, g in grad.items():
                    weights[i] -= eta * g / count

        correct = sum(
            1 for _, (y, x) in examples if (1 if _dot(weights, x) >= 0 else -1) == y
        )
        accuracy = correct / len(examples)
        return self._merge_results(
            self.info.name,
            results,
            weights,
            accuracy=accuracy,
            iterations=self.ITERATIONS,
            examples=len(examples),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Sparse dot products: FP multiply-accumulate over hashed indices.
            "load_fraction": 0.30,
            "store_fraction": 0.08,
            "fp_fraction": 0.18,
            "mul_fraction": 0.03,
            "regions": (
                # feature vectors streamed from the split
                MemoryRegion("examples", 128 << 20, 0.2, "sequential"),
                # weight vector: small, cache-resident, random-indexed
                MemoryRegion("weights", 512 << 10, 0.5, "random", burst=2,
                             hot_fraction=0.5, hot_weight=0.7),
            ),
            "kernel_fraction": 0.03,
            # margin test per example is the only data-dependent branch
            "branch_regularity": 0.965,
            # accumulation chains but multiple independent features in flight
            "dep_mean": 3.0,
            "dep_density": 0.75,
        }
