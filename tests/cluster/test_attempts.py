"""Unit tests for the task-attempt state machine."""

import pytest

from repro.cluster.attempts import (
    AttemptState,
    DataLossError,
    JobFailedError,
    NodeBlacklist,
    RetryPolicy,
    TaskAttempts,
)


class TestRetryPolicy:
    def test_defaults_match_hadoop_1x(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4          # mapred.map.max.attempts
        assert policy.node_failure_threshold == 4  # mapred.max.tracker.failures

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_fetch_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(node_failure_threshold=0)
        with pytest.raises(ValueError):
            RetryPolicy(heartbeat_timeout_s=-0.1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_fetch_backoff_grows_too(self):
        policy = RetryPolicy(fetch_backoff_base_s=0.05, backoff_factor=2.0)
        assert policy.fetch_backoff_s(1) == pytest.approx(0.05)
        assert policy.fetch_backoff_s(2) == pytest.approx(0.1)


class TestTaskAttempts:
    def attempts(self, max_attempts=4) -> TaskAttempts:
        return TaskAttempts("m_000000", RetryPolicy(max_attempts=max_attempts))

    def test_only_failures_count_against_the_budget(self):
        attempts = self.attempts()
        attempts.record("slave1", 0.0, 1.0, AttemptState.FAILED, "boom")
        attempts.record("slave2", 1.5, 2.0, AttemptState.KILLED, "node lost")
        assert attempts.failures == 1

    def test_tried_nodes_include_killed_attempts(self):
        attempts = self.attempts()
        attempts.record("slave1", 0.0, 1.0, AttemptState.FAILED, "boom")
        attempts.record("slave2", 1.5, 2.0, AttemptState.KILLED, "node lost")
        assert attempts.tried_nodes == {"slave1", "slave2"}

    def test_recorded_attempt_numbering(self):
        attempts = self.attempts()
        first = attempts.record("slave1", 0.0, 1.0, AttemptState.FAILED, "x")
        second = attempts.record("slave2", 1.0, 2.0, AttemptState.SUCCEEDED)
        assert first.attempt == 0 and second.attempt == 1
        assert first.task_id == "m_000000"

    def test_exhaustion_raises_with_context(self):
        attempts = self.attempts(max_attempts=2)
        attempts.record("slave1", 0.0, 1.0, AttemptState.FAILED, "boom")
        attempts.check_exhausted("boom")  # one left
        attempts.record("slave2", 1.0, 2.0, AttemptState.FAILED, "boom")
        with pytest.raises(JobFailedError) as excinfo:
            attempts.check_exhausted("boom")
        assert excinfo.value.task_id == "m_000000"
        assert excinfo.value.attempts == 2
        assert "boom" in str(excinfo.value)

    def test_killed_attempts_never_exhaust(self):
        attempts = self.attempts(max_attempts=1)
        for i in range(5):
            attempts.record(f"slave{i}", 0.0, 1.0, AttemptState.KILLED, "lost")
        assert not attempts.exhausted
        attempts.check_exhausted("lost")

    def test_next_retry_time_backs_off(self):
        attempts = self.attempts()
        attempts.record("slave1", 0.0, 1.0, AttemptState.FAILED, "x")
        one = attempts.next_retry_time(1.0)
        attempts.record("slave2", one, one + 1, AttemptState.FAILED, "x")
        two = attempts.next_retry_time(one + 1)
        assert one > 1.0
        assert two - (one + 1) > one - 1.0


class TestNodeBlacklist:
    def test_blacklists_at_threshold(self):
        blacklist = NodeBlacklist(threshold=3)
        assert not blacklist.record_failure("slave1")
        assert not blacklist.record_failure("slave1")
        assert blacklist.record_failure("slave1")  # newly blacklisted
        assert blacklist.is_blacklisted("slave1")
        assert not blacklist.record_failure("slave1")  # already listed

    def test_nodes_are_sorted(self):
        blacklist = NodeBlacklist(threshold=1)
        blacklist.record_failure("slave3")
        blacklist.record_failure("slave1")
        assert blacklist.nodes == ("slave1", "slave3")

    def test_independent_counters_per_node(self):
        blacklist = NodeBlacklist(threshold=2)
        blacklist.record_failure("slave1")
        blacklist.record_failure("slave2")
        assert blacklist.nodes == ()


class TestErrors:
    def test_data_loss_is_a_job_failure(self):
        error = DataLossError("m_000003", 0, "all replicas gone")
        assert isinstance(error, JobFailedError)
        assert error.task_id == "m_000003"
