"""Tests for HDFS block placement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hdfs import Hdfs
from repro.cluster.node import Node


def make_hdfs(n_nodes=4, block_size=1024, replication=3):
    nodes = [Node(f"n{i}") for i in range(n_nodes)]
    return Hdfs(nodes, block_size=block_size, replication=replication)


class TestHdfs:
    def test_file_split_into_blocks(self):
        hdfs = make_hdfs(block_size=1024)
        f = hdfs.create_file("f", 2500)
        assert len(f) == 3
        assert [b.size_bytes for b in f.blocks] == [1024, 1024, 452]
        assert f.size_bytes == 2500

    def test_empty_file_has_no_blocks(self):
        hdfs = make_hdfs()
        f = hdfs.create_file("empty", 0)
        assert len(f) == 0

    def test_replication_count(self):
        hdfs = make_hdfs(n_nodes=4, replication=3)
        f = hdfs.create_file("f", 4096)
        for block in f.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3

    def test_replication_capped_by_cluster_size(self):
        hdfs = make_hdfs(n_nodes=2, replication=3)
        f = hdfs.create_file("f", 1024)
        assert len(f.blocks[0].replicas) == 2

    def test_placement_balanced(self):
        hdfs = make_hdfs(n_nodes=4, block_size=64, replication=1)
        hdfs.create_file("big", 64 * 40)
        counts = [len(hdfs.blocks_on_node(f"n{i}")) for i in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_duplicate_name_rejected(self):
        hdfs = make_hdfs()
        hdfs.create_file("f", 10)
        with pytest.raises(ValueError):
            hdfs.create_file("f", 10)

    def test_delete_file(self):
        hdfs = make_hdfs()
        hdfs.create_file("f", 10)
        hdfs.delete_file("f")
        with pytest.raises(KeyError):
            hdfs.blocks_of("f")
        hdfs.create_file("f", 10)  # name reusable

    def test_blocks_of_unknown_file(self):
        with pytest.raises(KeyError):
            make_hdfs().blocks_of("ghost")

    def test_total_stored_includes_replication(self):
        hdfs = make_hdfs(n_nodes=4, block_size=1024, replication=2)
        hdfs.create_file("f", 1024)
        assert hdfs.total_stored_bytes() == 2048

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Hdfs([], block_size=64)
        with pytest.raises(ValueError):
            make_hdfs(block_size=0)
        with pytest.raises(ValueError):
            make_hdfs(replication=0)

    def test_rejects_negative_file_size(self):
        with pytest.raises(ValueError):
            make_hdfs().create_file("f", -1)

    @given(
        size=st.integers(min_value=0, max_value=100_000),
        block=st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_blocks_reassemble_to_file_size(self, size, block):
        hdfs = make_hdfs(block_size=block)
        f = hdfs.create_file("f", size)
        assert f.size_bytes == size
        assert all(0 < b.size_bytes <= block for b in f.blocks)
