"""Micro-benchmark harness for the simulation engines (``bench-sim``).

Times every suite workload three ways —

* **reference**: the per-μop interpreter in ``uarch/pipeline.py`` (cold),
* **fast**: the batched engine in ``perf/fastpath.py`` (cold), and
* **warm**: the fast path through a freshly-populated
  :class:`~repro.core.simcache.SimCache` (a cache hit),

verifies all three produced bit-identical :class:`SimulationResult`s, and
writes the measurements to ``BENCH_uarch.json`` so the perf trajectory is
tracked across PRs.  ``docs/performance.md`` explains how to read the file.

The headline ``totals.fastpath_speedup_warm`` is the speedup of the fast
path as deployed (fast engine + result cache, which is how benchmarks and
the CLI consume it); ``totals.engine_speedup_cold`` isolates the engine
itself with an empty cache.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass, field

from repro.core.simcache import SimCache, code_version
from repro.core.suite import DCBench
from repro.perf.fastpath import run_fast
from repro.uarch.config import MachineConfig, scaled_machine
from repro.uarch.pipeline import Core
from repro.uarch.trace import SyntheticTrace

#: Schema of BENCH_uarch.json; bump on layout changes.
BENCH_SCHEMA = 1

#: Default per-workload μop budget for benchmarking.
DEFAULT_BENCH_INSTRUCTIONS = 200_000


@dataclass
class BenchRow:
    """Per-workload engine timings (seconds) and derived rates."""

    name: str
    group: str
    uops: int
    reference_seconds: float
    fast_seconds: float
    warm_seconds: float
    bit_identical: bool

    @property
    def engine_speedup(self) -> float:
        return self.reference_seconds / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def warm_speedup(self) -> float:
        return self.reference_seconds / self.warm_seconds if self.warm_seconds else 0.0

    def to_json(self) -> dict:
        data = asdict(self)
        data["engine_speedup"] = round(self.engine_speedup, 3)
        data["warm_speedup"] = round(self.warm_speedup, 3)
        data["uops_per_sec_reference"] = (
            round(self.uops / self.reference_seconds) if self.reference_seconds else 0
        )
        data["uops_per_sec_fast"] = (
            round(self.uops / self.fast_seconds) if self.fast_seconds else 0
        )
        return data


@dataclass
class BenchReport:
    """The full bench-sim run: rows plus aggregate totals."""

    instructions: int
    scale: int
    rows: list[BenchRow] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def totals(self) -> dict:
        ref = sum(row.reference_seconds for row in self.rows)
        fast = sum(row.fast_seconds for row in self.rows)
        warm = sum(row.warm_seconds for row in self.rows)
        uops = sum(row.uops for row in self.rows)
        probes = self.cache_hits + self.cache_misses
        return {
            "workloads": len(self.rows),
            "uops": uops,
            "reference_seconds": round(ref, 4),
            "fast_seconds": round(fast, 4),
            "warm_seconds": round(warm, 4),
            "engine_speedup_cold": round(ref / fast, 3) if fast else 0.0,
            "fastpath_speedup_warm": round(ref / warm, 3) if warm else 0.0,
            "uops_per_sec_reference": round(uops / ref) if ref else 0,
            "uops_per_sec_fast": round(uops / fast) if fast else 0,
            "cache_hit_rate": round(self.cache_hits / probes, 4) if probes else 0.0,
            "bit_identical": all(row.bit_identical for row in self.rows),
        }

    def to_json(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "generated_unix": int(time.time()),
            "code_version": code_version(),
            "instructions": self.instructions,
            "scale": self.scale,
            "totals": self.totals(),
            "workloads": [row.to_json() for row in self.rows],
        }


def run_bench(
    instructions: int = DEFAULT_BENCH_INSTRUCTIONS,
    scale: int = 8,
    workloads: list[str] | None = None,
    machine: MachineConfig | None = None,
    cache_root: str | None = None,
) -> BenchReport:
    """Time reference vs fast vs warm-cache for each suite workload.

    ``cache_root=None`` uses a throwaway temp directory so benchmarking
    never interferes with (or benefits from) the working tree's cache.
    """
    suite = DCBench.default()
    entries = (
        [suite.entry(name) for name in workloads] if workloads else list(suite)
    )
    if machine is None:
        machine = scaled_machine(scale)
    report = BenchReport(instructions=instructions, scale=scale)

    def measure(entry, root: str) -> BenchRow:
        spec = entry.trace_spec(instructions).scaled(scale)
        t0 = time.perf_counter()
        ref = Core(machine).run(SyntheticTrace(spec))
        t1 = time.perf_counter()
        fast = run_fast(Core(machine), SyntheticTrace(spec))
        t2 = time.perf_counter()
        cache = SimCache(root=root, enabled=True)
        cache.simulate(spec, machine)  # populate (miss)
        t3 = time.perf_counter()
        warm = cache.simulate(spec, machine)  # timed hit
        t4 = time.perf_counter()
        report.cache_hits += cache.hits
        report.cache_misses += cache.misses
        return BenchRow(
            name=entry.name,
            group=entry.group,
            uops=instructions,
            reference_seconds=t1 - t0,
            fast_seconds=t2 - t1,
            warm_seconds=t4 - t3,
            bit_identical=(asdict(ref) == asdict(fast) == asdict(warm)),
        )

    if cache_root is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            for entry in entries:
                report.rows.append(measure(entry, tmp))
    else:
        for entry in entries:
            report.rows.append(measure(entry, cache_root))
    return report


def write_report(report: BenchReport, path: str = "BENCH_uarch.json") -> str:
    """Serialize *report* to *path*; return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
