"""Ablation: branch-predictor complexity.

The paper's §IV-E implication: "the branch predictor of modern processor
is good enough for the data analysis workloads.  A simpler branch
predictor may be preferred so as to save power and die area."  This
ablation runs bimodal / gshare / tournament predictors: for the
data-analysis workloads the simple bimodal gives up little accuracy,
while the service workloads benefit more from the hybrid.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine

DA = ["WordCount", "K-means", "Grep"]
SERVICES = ["Data Serving", "SPECWeb"]
PREDICTORS = ("bimodal", "gshare", "tournament")


def test_branch_predictors(benchmark):
    suite = DCBench.default()
    base = scaled_machine(8)

    def harness():
        results: dict[str, dict[str, float]] = {}
        for name in DA + SERVICES:
            entry = suite.entry(name)
            per_pred = {}
            for predictor in PREDICTORS:
                machine = replace(base, core=replace(base.core, predictor=predictor))
                c = characterize(entry, instructions=120_000, machine=machine)
                per_pred[predictor] = c.metrics.branch_misprediction_ratio
            results[name] = per_pred
        return results

    results = run_once(benchmark, harness)
    print()
    print("Ablation: branch misprediction ratio by predictor")
    print(f"{'workload':<14s}" + "".join(f"{p:>12s}" for p in PREDICTORS))
    for name, per_pred in results.items():
        print(f"{name:<14s}" + "".join(f"{per_pred[p]:>12.2%}" for p in PREDICTORS))

    # DA workloads lose little going from tournament to plain bimodal
    # (simple, regular branch patterns) — the paper's implication.
    for name in DA:
        penalty = results[name]["bimodal"] - results[name]["tournament"]
        assert penalty < 0.05, f"{name}: simple predictor costs too much"
    # Whatever the predictor, the services mispredict more than the DA
    # workloads — the Figure 12 ordering is robust to predictor choice.
    for predictor in PREDICTORS:
        da_avg = sum(results[n][predictor] for n in DA) / len(DA)
        svc_avg = sum(results[n][predictor] for n in SERVICES) / len(SERVICES)
        assert svc_avg > da_avg, predictor
