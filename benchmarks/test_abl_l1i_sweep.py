"""Ablation: L1 instruction-cache capacity.

The paper's §IV-C implication: "Improving the L1 instruction cache and
instruction TLB hit ratios can improve the performance of data analysis
workloads, especially the service workloads" — their framework-inflated
code footprints are exactly what a bigger L1I absorbs, while HPCC's tiny
kernels are insensitive.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine

WORKLOADS = ["Hive-bench", "Media Streaming", "HPCC-DGEMM"]

#: L1I capacity multiples of the scaled Table III 32 KB.
FACTORS = (0.5, 1.0, 4.0)


def test_l1i_sweep(benchmark):
    suite = DCBench.default()
    base = scaled_machine(8)

    def harness():
        results: dict[str, dict[float, tuple[float, float]]] = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            per_size = {}
            for factor in FACTORS:
                l1i = replace(base.l1i, size_bytes=int(base.l1i.size_bytes * factor))
                machine = replace(base, l1i=l1i)
                c = characterize(entry, instructions=120_000, machine=machine)
                per_size[factor] = (c.metrics.l1i_mpki, c.metrics.ipc)
            results[name] = per_size
        return results

    results = run_once(benchmark, harness)
    print()
    print("Ablation: L1I capacity sweep (multiples of Table III 32 KB)")
    print(f"{'workload':<16s}" + "".join(f"{f:>18.1f}x" for f in FACTORS))
    for name, per_size in results.items():
        print(
            f"{name:<16s}"
            + "".join(
                f"  mpki={per_size[f][0]:>5.1f} ipc={per_size[f][1]:.2f}" for f in FACTORS
            )
        )

    # Bigger L1I monotonically reduces misses for the code-heavy pair and
    # the reduction is material across the sweep (the services' multi-MB
    # hot code means even 4x doesn't capture everything — consistent with
    # the paper's "pay more attention to the code size" framing).
    for name in ("Hive-bench", "Media Streaming"):
        mpki = [results[name][f][0] for f in FACTORS]
        assert mpki[0] > mpki[1] > mpki[2]
        assert (mpki[0] - mpki[2]) / mpki[0] > 0.15
    # HPCC kernels do not care.
    dgemm = [results["HPCC-DGEMM"][f][0] for f in FACTORS]
    assert max(dgemm) < 1.0
