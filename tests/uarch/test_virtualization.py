"""Tests for the virtualized-execution model."""

from dataclasses import replace

import pytest

from repro.uarch.config import scaled_machine, virtualized_machine, XEON_E5645
from repro.uarch.pipeline import Core
from repro.uarch.trace import MemoryRegion, SyntheticTrace, TraceSpec

NATIVE = scaled_machine(8)
VIRTUAL = virtualized_machine(NATIVE)


def run(spec: TraceSpec, machine):
    return Core(machine).run(SyntheticTrace(spec))


def kernel_heavy(n=40_000):
    return TraceSpec("svc-like", n, kernel_fraction=0.45, kernel_episode_len=200)


def user_only(n=40_000):
    return TraceSpec("compute", n, kernel_fraction=0.0)


class TestConfig:
    def test_virtualized_machine_flag(self):
        assert not XEON_E5645.virtualized
        assert virtualized_machine().virtualized
        assert "virtualized" in virtualized_machine().name

    def test_base_config_untouched(self):
        vm = virtualized_machine(NATIVE)
        assert vm.l3.size_bytes == NATIVE.l3.size_bytes
        assert not NATIVE.virtualized


class TestVmOverheads:
    def test_vm_exits_counted_for_kernel_heavy_trace(self):
        result = run(kernel_heavy(), VIRTUAL)
        assert result.extra["vm_exits"] > 0
        assert result.extra["vm_exit_cycles"] == (
            result.extra["vm_exits"] * VIRTUAL.vm_transition_cycles
        )

    def test_no_vm_counters_on_native(self):
        result = run(kernel_heavy(), NATIVE)
        assert "vm_exits" not in result.extra

    def test_user_only_trace_never_exits(self):
        result = run(user_only(), VIRTUAL)
        assert result.extra["vm_exits"] == 0

    def test_virtualization_slows_kernel_heavy_more_than_compute(self):
        svc_native = run(kernel_heavy(), NATIVE)
        svc_virtual = run(kernel_heavy(), VIRTUAL)
        cpu_native = run(user_only(), NATIVE)
        cpu_virtual = run(user_only(), VIRTUAL)
        svc_slowdown = svc_native.ipc() / svc_virtual.ipc()
        cpu_slowdown = cpu_native.ipc() / cpu_virtual.ipc()
        assert svc_slowdown > cpu_slowdown
        assert svc_slowdown > 1.1
        assert cpu_slowdown < 1.3

    def test_nested_paging_amplifies_tlb_miss_cost(self):
        spec = TraceSpec(
            "tlb-heavy",
            40_000,
            kernel_fraction=0.0,
            regions=(MemoryRegion("sprawl", 64 << 20, 1.0, "random", burst=1),),
        )
        native = run(spec, NATIVE)
        virtual = run(spec, VIRTUAL)
        # Same walk *count*, much higher walk cost.
        assert virtual.dtlb_walks == native.dtlb_walks
        assert virtual.ipc() < native.ipc() * 0.9

    def test_transition_cycles_configurable(self):
        cheap = replace(VIRTUAL, vm_transition_cycles=50)
        costly = replace(VIRTUAL, vm_transition_cycles=5000)
        fast = run(kernel_heavy(), cheap)
        slow = run(kernel_heavy(), costly)
        assert slow.cycles > fast.cycles
