"""Ablation: native vs virtualized execution (the paper's §V "VM
executions" factor).

Runs representative workloads from each group on the native Table III
machine and on its virtualized twin (nested paging + VM exits on kernel
entry).  Expected shape — well established in the virtualization
literature and implied by Figure 4 — the kernel-heavy service workloads
pay far more for virtualization than the mostly-user-mode data-analysis
workloads; Sort, the DA kernel-mode outlier, sits in between.
"""

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine, virtualized_machine

WORKLOADS = ["WordCount", "K-means", "Sort", "Data Serving", "SPECWeb", "HPCC-HPL"]


def test_virtualization(benchmark):
    suite = DCBench.default()
    native = scaled_machine(8)
    virtual = virtualized_machine(native)

    def harness():
        rows = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            n = characterize(entry, instructions=120_000, machine=native)
            v = characterize(entry, instructions=120_000, machine=virtual)
            rows[name] = (
                n.metrics.ipc,
                v.metrics.ipc,
                n.metrics.kernel_instruction_fraction,
                v.result.extra.get("vm_exits", 0),
            )
        return rows

    rows = run_once(benchmark, harness)
    print()
    print("Ablation: native vs virtualized IPC")
    print(f"{'workload':<14s}{'native':>8s}{'VM':>8s}{'slowdown':>10s}"
          f"{'kernel%':>9s}{'VM exits':>10s}")
    slowdowns = {}
    for name, (n_ipc, v_ipc, kern, exits) in rows.items():
        slowdowns[name] = n_ipc / v_ipc
        print(f"{name:<14s}{n_ipc:>8.2f}{v_ipc:>8.2f}{slowdowns[name]:>9.2f}x"
              f"{kern:>9.1%}{exits:>10d}")

    # Services suffer the most; compute-only HPCC barely notices.
    service_slowdown = (slowdowns["Data Serving"] + slowdowns["SPECWeb"]) / 2
    da_light = (slowdowns["WordCount"] + slowdowns["K-means"]) / 2
    assert service_slowdown > da_light
    assert slowdowns["HPCC-HPL"] < 1.15
    # Sort (24 % kernel) pays more than the light DA workloads.
    assert slowdowns["Sort"] > da_light
    # Everyone pays *something* ≥ 1 (virtualization never helps here).
    assert all(s > 0.97 for s in slowdowns.values())
