"""Figure 4: user and kernel instruction breakdown.

Paper shape: services execute > 40 % kernel-mode instructions; the
data-analysis workloads ~4 % on average with Sort the exception at ~24 %;
HPCC-RandomAccess ~31 %.
"""

import pytest

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig04(benchmark, suite_chars, chars_by_name, da_chars, service_chars):
    series = run_once(benchmark, lambda: render_figure_series(4, suite_chars))
    print()
    print(render_metric_table(4, suite_chars))

    # Services > 40 % kernel.
    for c in service_chars:
        assert c.metrics.kernel_instruction_fraction > 0.38, c.name
    # Sort ≈ 24 %, the DA outlier.
    sort = chars_by_name["Sort"].metrics.kernel_instruction_fraction
    assert sort == pytest.approx(0.24, abs=0.04)
    others = [
        c.metrics.kernel_instruction_fraction for c in da_chars if c.name != "Sort"
    ]
    assert all(v < 0.10 for v in others)
    assert sort > 3 * max(others)
    # DA average ≈ 4 % excluding Sort's contribution dominating.
    assert sum(others) / len(others) < 0.08
    # RandomAccess ≈ 31 %.
    ra = chars_by_name["HPCC-RandomAccess"].metrics.kernel_instruction_fraction
    assert ra == pytest.approx(0.31, abs=0.04)
    # The avg bar exists and reflects the DA block.
    assert 0.0 < series["avg"] < 0.12
