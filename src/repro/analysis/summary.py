"""Programmatic checks of the paper's key findings (Section I).

``evaluate_findings`` takes a full suite characterization and evaluates
each of the five findings as a boolean plus the numbers behind it, so the
reproduction's headline claims are testable artefacts rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterize import Characterization
from repro.core.metrics import average_metrics


@dataclass
class Findings:
    """The five findings, with supporting values."""

    # 1: DA IPC sits between services and compute-bound HPCC.
    ipc_ordering: bool
    da_avg_ipc: float
    service_max_ipc: float
    hpl_ipc: float

    # 2: stall split — DA stalls in the OoO part, services before it.
    stall_split: bool
    da_backend_share: float
    service_frontend_share: float

    # 3: DA front-end pressure well above SPEC/HPCC (code footprints).
    frontend_pressure: bool
    da_avg_l1i_mpki: float
    hpcc_avg_l1i_mpki: float

    # 4: L2 effective for DA (DA ≪ services), L3 catches most L2 misses.
    cache_effectiveness: bool
    da_avg_l2_mpki: float
    service_avg_l2_mpki: float
    da_avg_l3_hit_ratio: float
    service_avg_l3_hit_ratio: float

    # 5: DA branch misprediction below services.
    branch_prediction: bool
    da_avg_mispredict: float
    service_avg_mispredict: float

    def all_hold(self) -> bool:
        return all(
            (
                self.ipc_ordering,
                self.stall_split,
                self.frontend_pressure,
                self.cache_effectiveness,
                self.branch_prediction,
            )
        )


def evaluate_findings(chars: list[Characterization]) -> Findings:
    """Evaluate the five findings over a full-suite characterization."""
    by_name = {c.name: c for c in chars}
    da = [c.metrics for c in chars if c.group == "data-analysis"]
    services = [c.metrics for c in chars if c.group == "service"]
    hpcc = [c.metrics for c in chars if c.group == "hpc"]
    if not (da and services and hpcc):
        raise ValueError("findings need data-analysis, service and HPC entries")
    da_avg = average_metrics(da)
    service_avg = average_metrics(services)
    hpcc_avg = average_metrics(hpcc)
    hpl_ipc = by_name["HPCC-HPL"].metrics.ipc if "HPCC-HPL" in by_name else max(
        m.ipc for m in hpcc
    )
    service_max_ipc = max(m.ipc for m in services)

    ipc_ordering = service_max_ipc < da_avg.ipc < hpl_ipc
    da_backend = da_avg.backend_stall_share()
    service_frontend = service_avg.frontend_stall_share()
    stall_split = da_backend > 0.5 and service_frontend > 0.5
    frontend_pressure = da_avg.l1i_mpki > 4 * max(hpcc_avg.l1i_mpki, 0.1)
    cache_effectiveness = (
        da_avg.l2_mpki < 0.5 * service_avg.l2_mpki
        and da_avg.l3_hit_ratio_of_l2_misses > 0.6
        and service_avg.l3_hit_ratio_of_l2_misses > 0.6
    )
    branch_prediction = (
        da_avg.branch_misprediction_ratio < service_avg.branch_misprediction_ratio
    )
    return Findings(
        ipc_ordering=ipc_ordering,
        da_avg_ipc=da_avg.ipc,
        service_max_ipc=service_max_ipc,
        hpl_ipc=hpl_ipc,
        stall_split=stall_split,
        da_backend_share=da_backend,
        service_frontend_share=service_frontend,
        frontend_pressure=frontend_pressure,
        da_avg_l1i_mpki=da_avg.l1i_mpki,
        hpcc_avg_l1i_mpki=hpcc_avg.l1i_mpki,
        cache_effectiveness=cache_effectiveness,
        da_avg_l2_mpki=da_avg.l2_mpki,
        service_avg_l2_mpki=service_avg.l2_mpki,
        da_avg_l3_hit_ratio=da_avg.l3_hit_ratio_of_l2_misses,
        service_avg_l3_hit_ratio=service_avg.l3_hit_ratio_of_l2_misses,
        branch_prediction=branch_prediction,
        da_avg_mispredict=da_avg.branch_misprediction_ratio,
        service_avg_mispredict=service_avg.branch_misprediction_ratio,
    )
